//! Exactly-once RMI under chaos: a non-idempotent counter workload at
//! ~20% mixed fault incidence — including the duplicate-generating
//! `drop_reply` fault, where the server executes but the reply is lost —
//! must complete every logical call with **effects == calls**. The
//! client retries with the same call ID; the server's reply cache
//! detects redelivery and replays the stored reply instead of executing
//! again.

use std::time::Duration;

use jpie::Value;
use live_rmi::cde::{ClientEnvironment, ResiliencePolicy};
use live_rmi::sde::{PublicationStrategy, SdeConfig, SdeManager, SdeServerGateway, TransportKind};

/// The fault injector is process-global: tests that install plans take
/// this guard so they cannot clobber each other's rules.
fn injector_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

fn manager() -> SdeManager {
    SdeManager::new(SdeConfig {
        transport: TransportKind::Mem,
        strategy: PublicationStrategy::StableTimeout(Duration::from_millis(10)),
        wal_dir: None,
    })
    .expect("manager")
}

/// A class whose one distributed method is observably non-idempotent:
/// every *execution* moves the counter, so duplicated executions are
/// visible as `field > calls`.
fn counter_class(name: &str) -> jpie::ClassHandle {
    jpie::parse::parse_class(&format!(
        "class {name} {{ field int n; distributed int bump() {{ \
         this.n = this.n + 1; return this.n; }} }}"
    ))
    .expect("counter class")
}

fn chaos_policy() -> ResiliencePolicy {
    ResiliencePolicy::seeded(17)
        .with_request_timeout(Duration::from_millis(250))
        .with_max_attempts(6)
        .with_breaker(64, Duration::from_millis(500))
}

/// ~20% aggregate incidence across the client-visible fault shapes plus
/// the server-side reply drop. `corrupt` garbles the response after the
/// server executed (a Protocol-level duplicate source); `drop_reply`
/// loses it entirely.
fn install_plan(seed: u64, authority: &str) {
    httpd::FaultPlan::seeded(seed)
        .rule(httpd::FaultRule::refuse(authority, 0.06))
        .rule(httpd::FaultRule::delay(
            authority,
            0.03,
            Duration::from_millis(1),
            Duration::from_millis(1),
        ))
        .rule(httpd::FaultRule::corrupt(authority, 0.03, 2))
        .rule(httpd::FaultRule::disconnect(authority, 0.03, 10))
        .rule(httpd::FaultRule::drop_reply(authority, 0.08).on_accept())
        .install();
}

fn suppressed(class: &str) -> u64 {
    obs::registry().snapshot().counter(&obs::metrics::key(
        "duplicate_calls_suppressed_total",
        &[("class", class)],
    ))
}

const CALLS: u64 = 500;

/// Drives `CALLS` sequential non-idempotent calls and asserts the
/// exactly-once contract: every call succeeds, the final counter equals
/// the number of logical calls, and at least one duplicate was actually
/// suppressed (the chaos produced redeliveries).
fn run_workload(
    env: &ClientEnvironment,
    stub: &std::sync::Arc<cde::DynamicStub>,
    class: &str,
    plan_seed: u64,
    counter_value: impl Fn() -> i64,
) {
    // Prime once before the chaos: the first reply advertises the reply
    // cache, which is what licenses retrying non-idempotent calls.
    let first = env.call(stub, "bump", &[]).expect("prime call");
    assert_eq!(first, Value::Int(1));
    assert!(
        stub.server_caches(),
        "server must advertise its reply cache"
    );

    let before = suppressed(class);
    install_plan(plan_seed, &stub.authority());
    // The prime call parked a healthy pre-chaos connection; drop it so
    // the workload's connections are established under the plan.
    stub.drop_pooled_connections();
    for i in 1..CALLS {
        // Faults are rolled at connection establishment, so a parked
        // connection that survived one call would never roll again;
        // churn every few calls the way real long-running clients do.
        if i % 4 == 0 {
            stub.drop_pooled_connections();
        }
        let v = env
            .call(stub, "bump", &[])
            .unwrap_or_else(|e| panic!("call {i} failed under chaos: {e}"));
        assert_eq!(v, Value::Int(i as i32 + 1), "call {i} saw a stale reply");
    }
    httpd::fault::clear();

    assert_eq!(
        counter_value(),
        CALLS as i64,
        "exactly-once violated: executions != logical calls"
    );
    assert!(
        suppressed(class) > before,
        "chaos produced no duplicate deliveries — the plan never bit"
    );
}

#[test]
fn soap_non_idempotent_workload_is_exactly_once() {
    let _guard = injector_guard();
    let manager = manager();
    let server = manager
        .deploy_soap(counter_class("OnceSoap"))
        .expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();

    let env = ClientEnvironment::with_policy(chaos_policy());
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");
    let instance = server.instance().expect("live instance");
    run_workload(&env, &stub, "OnceSoap", 9001, || {
        match instance
            .fields_snapshot()
            .iter()
            .find(|(n, _)| n == "n")
            .map(|(_, v)| v.clone())
        {
            Some(Value::Int(n)) => n as i64,
            other => panic!("counter field missing: {other:?}"),
        }
    });
    let stats = server.reply_cache_stats();
    assert!(stats.hits > 0, "reply cache never replayed: {stats:?}");
    manager.shutdown();
}

#[test]
fn corba_non_idempotent_workload_is_exactly_once() {
    let _guard = injector_guard();
    let manager = manager();
    let server = manager
        .deploy_corba(counter_class("OnceCorba"))
        .expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().force_publish();
    server.publisher().ensure_current();

    let env = ClientEnvironment::with_policy(chaos_policy());
    let stub = env
        .connect_corba(server.idl_url(), server.ior_url())
        .expect("stub");
    let instance = server.instance().expect("live instance");
    run_workload(&env, &stub, "OnceCorba", 9002, || {
        match instance
            .fields_snapshot()
            .iter()
            .find(|(n, _)| n == "n")
            .map(|(_, v)| v.clone())
        {
            Some(Value::Int(n)) => n as i64,
            other => panic!("counter field missing: {other:?}"),
        }
    });
    let stats = server.reply_cache_stats();
    assert!(stats.hits > 0, "reply cache never replayed: {stats:?}");
    manager.shutdown();
}
