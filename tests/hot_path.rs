//! Hot-path behaviour under live edits: conditional interface-document
//! fetching (ETag / 304) and the epoch-cached dispatch tables.
//!
//! These are the end-to-end counterparts of the unit tests in
//! `jpie::instance`, `sde::gateway`, and `sde::docs`: a real manager, a
//! real Interface Server, and a watching client.

use std::time::Duration;

use jpie::expr::Expr;
use jpie::{ClassHandle, MethodBuilder, TypeDesc, Value};
use live_rmi::cde::ClientEnvironment;
use live_rmi::httpd::{HttpClient, Request};
use live_rmi::sde::{PublicationStrategy, SdeConfig, SdeManager, SdeServerGateway, TransportKind};

fn manager() -> SdeManager {
    SdeManager::new(SdeConfig {
        transport: TransportKind::Mem,
        strategy: PublicationStrategy::StableTimeout(Duration::from_millis(10)),
        wal_dir: None,
    })
    .expect("manager")
}

fn calc() -> ClassHandle {
    let class = ClassHandle::new("Calc");
    class
        .add_method(
            MethodBuilder::new("add", TypeDesc::Int)
                .param("a", TypeDesc::Int)
                .param("b", TypeDesc::Int)
                .distributed(true)
                .body_expr(Expr::param("a") + Expr::param("b")),
        )
        .expect("add");
    class
}

/// A counter's total across all label sets, from the obs registry.
fn counter_total(name: &str) -> u64 {
    obs::registry().snapshot().counter_total(name)
}

#[test]
fn interface_edit_changes_etag_and_conditional_get_redownloads() {
    let manager = manager();
    let class = calc();
    let server = manager.deploy_soap(class.clone()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();

    let wsdl_url = server.wsdl_url().to_string();
    let client = HttpClient::new();

    let first = client.get(&wsdl_url).expect("wsdl");
    assert_eq!(first.status(), 200);
    let etag = first
        .headers()
        .get("ETag")
        .expect("interface documents carry an ETag")
        .to_string();

    // Unchanged interface: the validator answers 304 with no body.
    let path = format!("/{}", wsdl_url.rsplit('/').next().unwrap());
    let mut req = Request::get(path);
    req.headers_mut().set("If-None-Match", &etag);
    let mut conn = client.connect(&wsdl_url).expect("connect");
    let unchanged = conn.send(&req).expect("conditional GET");
    assert_eq!(unchanged.status(), 304);
    assert!(unchanged.body().is_empty());

    // Live edit: rename the distributed method and force publication.
    let add = class.find_method("add").expect("add");
    class.rename_method(add, "sum").expect("rename");
    server.publisher().ensure_current();

    // The same conditional GET now re-downloads the full document under
    // a fresh validator.
    let refreshed = conn.send(&req).expect("conditional GET after edit");
    assert_eq!(refreshed.status(), 200);
    let new_etag = refreshed.headers().get("ETag").expect("fresh ETag");
    assert_ne!(new_etag, etag, "ETag must change with the interface");
    let body = refreshed.body_str();
    assert!(body.contains("sum"), "new signature published: {body}");
    assert!(!body.contains("\"add\""), "old method gone");
    manager.shutdown();
}

#[test]
fn watch_polls_cost_304s_while_interface_is_unchanged() {
    let manager = manager();
    let class = calc();
    let server = manager.deploy_soap(class.clone()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();

    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");
    let full_before = counter_total("cde_fetch_full_total");
    let nm_before = counter_total("cde_fetch_not_modified_total");

    let watcher = env.watch(stub.clone(), Duration::from_millis(5), None);

    // Let several polls happen against the unchanged interface.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while counter_total("cde_fetch_not_modified_total") < nm_before + 5 {
        assert!(
            std::time::Instant::now() < deadline,
            "watcher polls never became 304s"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // Steady state: revalidations, no re-downloads.
    assert_eq!(
        counter_total("cde_fetch_full_total"),
        full_before,
        "unchanged interface must not be re-downloaded"
    );

    // An edit breaks the validator: the next poll re-downloads and the
    // watcher reports the new version.
    let v_before = stub.interface_version();
    let add = class.find_method("add").expect("add");
    class.rename_method(add, "plus").expect("rename");
    server.publisher().ensure_current();
    let updated = watcher.wait_for_update(Duration::from_secs(10));
    assert!(updated.is_some(), "watcher missed the interface update");
    assert!(stub.interface_version() > v_before);
    assert!(stub.operation("plus").is_some());
    assert!(stub.operation("add").is_none());
    assert!(
        counter_total("cde_fetch_full_total") > full_before,
        "the edit must force a full re-download"
    );

    watcher.stop();
    manager.shutdown();
}

#[test]
fn steady_state_calls_share_one_method_table_snapshot() {
    // End-to-end flavour of the zero-clone guarantee: many calls through
    // the live SOAP server advance no table rebuilds once warm.
    let manager = manager();
    let class = calc();
    let server = manager.deploy_soap(class.clone()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();

    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");
    env.call(&stub, "add", &[Value::Int(1), Value::Int(2)])
        .expect("warm the caches");

    let rebuilds_before = counter_total("jpie_table_rebuilds_total");
    for i in 0..50 {
        let v = env
            .call(&stub, "add", &[Value::Int(i), Value::Int(1)])
            .expect("steady-state call");
        assert_eq!(v, Value::Int(i + 1));
    }
    assert_eq!(
        counter_total("jpie_table_rebuilds_total"),
        rebuilds_before,
        "steady-state invocations must not rebuild method tables"
    );

    // A live edit rebuilds exactly once (lazily, on the next call).
    let add = class.find_method("add").expect("add");
    class
        .set_body_expr(add, Expr::param("a") * Expr::param("b"))
        .expect("edit body");
    let v = env
        .call(&stub, "add", &[Value::Int(6), Value::Int(7)])
        .expect("call after edit");
    assert_eq!(v, Value::Int(42), "edit takes effect immediately");
    assert!(counter_total("jpie_table_rebuilds_total") > rebuilds_before);
    manager.shutdown();
}
