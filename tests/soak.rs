//! Soak test: a long, fully concurrent live-development session — one
//! editor thread continuously mutating the server (renames, body edits,
//! parameter changes, undo), several SOAP and CORBA clients calling
//! non-stop with stale-recovery, and a watcher keeping a bound class in
//! sync. The §6 recency invariant is asserted on every stale return.
//!
//! Runs ~3 seconds in the default configuration; a longer soak is
//! available with `cargo test --test soak -- --ignored`.
//!
//! Setting `LIVE_RMI_CHAOS=1` additionally installs a fixed-seed fault
//! plan ([`httpd::FaultPlan`]) over every endpoint and switches the
//! clients to the resilient policy: connects get refused, responses get
//! truncated and corrupted — and the session must still make progress
//! without ever violating recency. CI runs the suite both ways.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use jpie::{ClassHandle, MethodBuilder, TypeDesc, Value};
use live_rmi::cde::{CallError, ClientEnvironment};
use live_rmi::sde::{PublicationStrategy, SdeConfig, SdeManager, SdeServerGateway, TransportKind};

fn run_soak(duration: Duration) {
    // Chaos mode: same soak, but every connection may be refused,
    // delayed, truncated, corrupted, or dropped mid-response.
    let chaos = std::env::var("LIVE_RMI_CHAOS").is_ok_and(|v| !v.is_empty() && v != "0");
    if chaos {
        httpd::FaultPlan::seeded(0xC4A05)
            .rule(httpd::FaultRule::refuse("", 0.05))
            .rule(httpd::FaultRule::delay(
                "",
                0.03,
                Duration::from_millis(1),
                Duration::from_millis(1),
            ))
            .rule(httpd::FaultRule::truncate("", 0.03, 40))
            .rule(httpd::FaultRule::corrupt("", 0.02, 2))
            .rule(httpd::FaultRule::disconnect("", 0.02, 10))
            .install();
    }
    let manager = Arc::new(
        SdeManager::new(SdeConfig {
            transport: TransportKind::Mem,
            strategy: PublicationStrategy::StableTimeout(Duration::from_millis(4)),
            wal_dir: None,
        })
        .expect("manager"),
    );
    let class = ClassHandle::new("Soak");
    class.add_field("hits", TypeDesc::Long).expect("field");
    class
        .add_method(
            MethodBuilder::new("work", TypeDesc::Int)
                .param("x", TypeDesc::Int)
                .distributed(true)
                .body_source("this.hits = this.hits + 1L; return x + 1;")
                .expect("body"),
        )
        .expect("work");

    let soap = manager.deploy_soap(class.clone()).expect("deploy soap");
    soap.create_instance().expect("instance");
    soap.publisher().ensure_current();

    let stop = Arc::new(AtomicBool::new(false));
    let stale_total = Arc::new(AtomicU64::new(0));
    let ok_total = Arc::new(AtomicU64::new(0));
    let unknown_total = Arc::new(AtomicU64::new(0));

    // Editor: oscillating renames plus body churn and occasional undo.
    let editor_class = class.clone();
    let editor_stop = stop.clone();
    let editor = std::thread::spawn(move || {
        let mut i: u64 = 0;
        while !editor_stop.load(Ordering::SeqCst) {
            let current = if i.is_multiple_of(2) { "work" } else { "labor" };
            let next = if i.is_multiple_of(2) { "labor" } else { "work" };
            if let Some(id) = editor_class.find_method(current) {
                match i % 5 {
                    0..=2 => {
                        let _ = editor_class.rename_method(id, next);
                    }
                    3 => {
                        let _ = editor_class
                            .set_body_source(id, "this.hits = this.hits + 1L; return x + 1;");
                    }
                    _ => {
                        let _ = editor_class.undo();
                    }
                }
            } else {
                let _ = editor_class.undo();
            }
            i += 1;
            std::thread::sleep(Duration::from_millis(2));
        }
    });

    let deadline = Instant::now() + duration;
    let mut clients = Vec::new();
    for t in 0..3 {
        let url = soap.wsdl_url().to_string();
        let class = class.clone();
        let stop = stop.clone();
        let stale_total = stale_total.clone();
        let ok_total = ok_total.clone();
        let unknown_total = unknown_total.clone();
        clients.push(std::thread::spawn(move || {
            let env = if chaos {
                ClientEnvironment::with_policy(
                    live_rmi::cde::ResiliencePolicy::seeded(0xC4A05 + t)
                        .with_request_timeout(Duration::from_millis(250)),
                )
            } else {
                ClientEnvironment::new()
            };
            let stub = env.connect_soap(&url).expect("stub");
            let mut step = 0;
            while !stop.load(Ordering::SeqCst) {
                let known = stub
                    .operations()
                    .first()
                    .map(|o| o.name.clone())
                    .unwrap_or_else(|| "work".into());
                let version_at_call = class.interface_version();
                // `work` mutates a counter, so it is deliberately NOT
                // marked idempotent: in chaos mode the retries come from
                // the negotiated server reply cache instead, which
                // deduplicates redelivered call ids (at-most-once
                // execution even under retry).
                let result = env.call(&stub, &known, &[Value::Int(step)]);
                match result {
                    Ok(v) => {
                        assert_eq!(v, Value::Int(step + 1), "client {t} step {step}");
                        ok_total.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(CallError::StaleMethod { .. }) => {
                        stale_total.fetch_add(1, Ordering::Relaxed);
                        assert!(
                            stub.interface_version() >= version_at_call,
                            "client {t}: recency violated"
                        );
                    }
                    // Under chaos, a call can exhaust its retry budget
                    // with its outcome unknown (the server may or may
                    // not have executed it); that is a survivable
                    // outcome, not a bug — but it must be accounted for
                    // in the hits bound below.
                    Err(CallError::Transport(_) | CallError::DeadlineExceeded { .. }) if chaos => {
                        unknown_total.fetch_add(1, Ordering::Relaxed);
                    }
                    // Shed or fast-failed before reaching the engine:
                    // definitely not executed.
                    Err(CallError::Overloaded { .. } | CallError::CircuitOpen { .. }) if chaos => {}
                    Err(other) => panic!("client {t}: unexpected {other:?}"),
                }
                step += 1;
            }
            step
        }));
    }

    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    stop.store(true, Ordering::SeqCst);
    let mut total_calls = 0;
    for c in clients {
        total_calls += c.join().expect("client");
    }
    editor.join().expect("editor");

    let ok = ok_total.load(Ordering::Relaxed);
    let stale = stale_total.load(Ordering::Relaxed);
    assert!(total_calls > 0);
    assert!(ok > 0, "no successful calls in the whole soak");
    assert!(stale > 0, "the churn never produced a stale call");
    // The instance survived everything and kept counting. Note: the
    // handlers are multithreaded (§5.4) and the interpreted
    // `this.hits = this.hits + 1L` is a read-modify-write that is NOT
    // atomic across concurrent calls — exactly like unsynchronized Java
    // servlet code — so a few lost updates are expected under contention.
    let Value::Long(hits) = soap
        .instance()
        .expect("instance")
        .field("hits")
        .expect("hits")
    else {
        panic!("hits should be a long");
    };
    assert!(hits > 0, "field state survived");
    if chaos {
        httpd::fault::clear();
        let metrics = obs::registry().snapshot().render_prometheus();
        assert!(
            metrics.contains("faults_injected_total{"),
            "chaos soak injected no faults:\n{metrics}"
        );
        // At-most-once execution under retry: every retry redelivered
        // its call id and the server's reply cache suppressed the
        // duplicates, so each logical call bumped `hits` at most once.
        // Calls that gave up with an unknown outcome may still have
        // executed once each — they bound the slack.
        let unknown = unknown_total.load(Ordering::Relaxed);
        assert!(
            hits as u64 <= ok + unknown,
            "hits {hits} exceed ok {ok} + unknown-outcome {unknown}: \
             a duplicate delivery must have re-executed"
        );
    } else {
        assert!(
            hits as u64 <= ok,
            "hits {hits} cannot exceed successful calls {ok}"
        );
    }
    manager.shutdown();
}

#[test]
fn soak_short() {
    run_soak(Duration::from_secs(3));
}

#[test]
#[ignore = "long soak; run explicitly with --ignored"]
fn soak_long() {
    run_soak(Duration::from_secs(30));
}
