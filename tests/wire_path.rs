//! End-to-end wire-path tests for PR 4: steady-state RMI traffic must
//! reuse connections (per-authority pooling in the CDE), and a server
//! restart must stay transparent — the stale pooled socket is dropped
//! and the call retried on a fresh one without surfacing an error.
//!
//! The SOAP endpoint is hosted on a raw [`httpd::HttpServer`] at a
//! *fixed* mem authority (SDE-managed deployments get a fresh address
//! per deployment), so the restarted server comes back where the pooled
//! connections point.

use std::sync::Mutex;

use httpd::{Handler, HttpServer, Request, Response, Status};
use jpie::{TypeDesc, Value};
use live_rmi::cde::ClientEnvironment;
use soap::{WsdlDocument, WsdlOperation};

/// Counter windows below read process-global metrics; serialize the
/// tests in this binary so the windows never overlap.
static SERIAL: Mutex<()> = Mutex::new(());

/// Serves `GET /Calc.wsdl` (the interface document) and `POST /Calc`
/// (an `add(a, b)` SOAP operation) from one fixed-authority server.
struct CalcEndpoint {
    wsdl_xml: String,
}

impl Handler for CalcEndpoint {
    fn handle(&self, req: &Request) -> Response {
        if req.path().ends_with(".wsdl") {
            return Response::ok(self.wsdl_xml.clone().into_bytes(), "text/xml");
        }
        let soap_req = match soap::decode_request(&req.body_str()) {
            Ok(r) => r,
            Err(e) => {
                let mut body = Vec::new();
                soap::encode_fault_into(
                    &soap::SoapFault::malformed_request(e.to_string()),
                    &mut body,
                );
                return Response::new(Status::INTERNAL_SERVER_ERROR, body, "text/xml");
            }
        };
        let sum = soap_req
            .args()
            .iter()
            .map(|(_, v)| match v {
                Value::Int(i) => i64::from(*i),
                _ => 0,
            })
            .sum::<i64>();
        let mut body = Vec::new();
        soap::encode_ok_into(
            soap_req.method(),
            soap_req.namespace(),
            &Value::Int(sum as i32),
            &mut body,
        );
        Response::ok(body, "text/xml")
    }
}

fn calc_wsdl(base_url: &str) -> String {
    WsdlDocument {
        service_name: "Calc".to_string(),
        endpoint: format!("{base_url}/Calc"),
        operations: vec![WsdlOperation {
            name: "add".to_string(),
            params: vec![
                ("a".to_string(), TypeDesc::Int),
                ("b".to_string(), TypeDesc::Int),
            ],
            return_ty: TypeDesc::Int,
        }],
        version: 1,
    }
    .to_xml()
}

fn bind_calc(addr: &str) -> HttpServer {
    // The WSDL needs the server's base URL, which needs the server —
    // bind once to learn the URL shape (mem URLs are the address
    // verbatim), then build the document.
    let server = HttpServer::bind(
        addr,
        CalcEndpoint {
            wsdl_xml: calc_wsdl(addr),
        },
    )
    .expect("bind");
    assert_eq!(server.base_url(), addr, "mem base url is the address");
    server
}

fn counter(name: &str) -> u64 {
    obs::registry().snapshot().counter(name)
}

#[test]
fn sequential_calls_reuse_one_pooled_connection() {
    let _serial = SERIAL.lock().unwrap();
    let addr = "mem://wire-path-reuse";
    let server = bind_calc(addr);

    let env = ClientEnvironment::new();
    let stub = env
        .connect_soap(&format!("{addr}/Calc.wsdl"))
        .expect("stub");

    let (h0, m0) = (
        counter("wire_pool_hits_total"),
        counter("wire_pool_misses_total"),
    );
    const N: i32 = 20;
    for i in 0..N {
        let v = env
            .call(&stub, "add", &[Value::Int(i), Value::Int(1)])
            .expect("call");
        assert_eq!(v, Value::Int(i + 1));
    }
    let hits = counter("wire_pool_hits_total") - h0;
    let misses = counter("wire_pool_misses_total") - m0;
    // First call connects; every subsequent call must ride the same
    // pooled connection.
    assert!(
        hits >= (N - 1) as u64,
        "expected >= {} pool hits, got {hits} (misses {misses})",
        N - 1
    );
    assert!(
        misses <= 1,
        "steady-state calls must not open fresh connections (misses {misses})"
    );
    server.shutdown();
}

#[test]
fn server_restart_is_transparent_to_the_stub() {
    let _serial = SERIAL.lock().unwrap();
    let addr = "mem://wire-path-restart";
    let server = bind_calc(addr);

    let env = ClientEnvironment::new();
    let stub = env
        .connect_soap(&format!("{addr}/Calc.wsdl"))
        .expect("stub");
    for i in 0..3 {
        env.call(&stub, "add", &[Value::Int(i), Value::Int(2)])
            .expect("warm-up call");
    }

    // Restart: the stub's pooled connection now points at a dead
    // socket. The next call must drop it and retry on a fresh
    // connection without the caller noticing.
    server.shutdown();
    let server = bind_calc(addr);
    let v = env
        .call(&stub, "add", &[Value::Int(40), Value::Int(2)])
        .expect("call across restart");
    assert_eq!(v, Value::Int(42));
    server.shutdown();
}
