//! Cross-process distributed tracing, end to end: one logical RMI call
//! must yield one trace whose server-side spans (admission, dispatch,
//! marshal) parent under the client's attempt span via the wire-carried
//! trace context — on both protocols — and a chaos run must keep a
//! tail-sampled trace showing every retry attempt with its injected
//! fault. The span store is process-global and strictly bounded, so a
//! long soak must not grow it past its caps.

use std::time::Duration;

use jpie::Value;
use live_rmi::cde::{ClientEnvironment, ResiliencePolicy};
use live_rmi::sde::{PublicationStrategy, SdeConfig, SdeManager, SdeServerGateway, TransportKind};
use obs::tracectx::{self, AnnValue, RetainedTrace, SpanRecord};

/// The span store (and the fault injector, in the chaos test) are
/// process-global: serialize every test in this binary so they cannot
/// clobber each other's retained traces or sampling knobs.
fn store_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

fn manager() -> SdeManager {
    SdeManager::new(SdeConfig {
        transport: TransportKind::Mem,
        strategy: PublicationStrategy::StableTimeout(Duration::from_millis(10)),
        wal_dir: None,
    })
    .expect("manager")
}

fn echo_class(name: &str) -> jpie::ClassHandle {
    jpie::parse::parse_class(&format!(
        "class {name} {{ distributed string echo(string s) {{ return s; }} }}"
    ))
    .expect("echo class")
}

fn counter_class(name: &str) -> jpie::ClassHandle {
    jpie::parse::parse_class(&format!(
        "class {name} {{ field int n; distributed int bump() {{ \
         this.n = this.n + 1; return this.n; }} }}"
    ))
    .expect("counter class")
}

fn span<'a>(t: &'a RetainedTrace, name: &str) -> &'a SpanRecord {
    t.spans.iter().find(|s| s.name == name).unwrap_or_else(|| {
        panic!(
            "no {name:?} span in trace {}; spans: {:?}",
            t.trace,
            t.spans.iter().map(|s| s.name).collect::<Vec<_>>()
        )
    })
}

fn has_annotation(s: &SpanRecord, key: &str) -> bool {
    s.annotations.iter().any(|(k, _)| *k == key)
}

/// Asserts the cross-process parent chain of a single clean call:
/// client.call -> client.attempt -> server.<proto> -> dispatch, with
/// the reply-cache admission span beside dispatch under the server span.
fn assert_parented(t: &RetainedTrace, server_span_name: &str) {
    let root = t.root().expect("trace has a root span");
    assert_eq!(root.name, "client.call");
    assert!(root.error.is_none(), "clean call must not fail: {root:?}");
    assert!(
        has_annotation(root, "method"),
        "root carries the method name"
    );

    let attempt = span(t, "client.attempt");
    assert_eq!(
        attempt.parent,
        Some(root.id),
        "attempt parents under the call root"
    );

    let server = span(t, server_span_name);
    assert_eq!(
        server.parent,
        Some(attempt.id),
        "server span must join the wire context, parenting under the \
         client attempt"
    );
    assert_eq!(
        server.call_id, root.call_id,
        "server span carries the propagated call id"
    );

    let dispatch = span(t, "dispatch");
    assert_eq!(
        dispatch.parent,
        Some(server.id),
        "dispatch is a child of the server span"
    );
    let admit = span(t, "replycache.admit");
    assert_eq!(admit.parent, Some(server.id));
}

/// One clean SOAP call: a single retained trace whose server spans
/// parent under the client attempt via the `urn:live-rmi:trace` header.
#[test]
fn soap_call_produces_one_parented_trace() {
    let _guard = store_guard();
    let store = tracectx::store();
    store.clear();
    store.set_random_sample(1.0);
    tracectx::set_tracing(true);

    let manager = manager();
    let server = manager
        .deploy_soap(echo_class("TraceSoap"))
        .expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();

    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");
    let v = env
        .call(&stub, "echo", &[Value::Str("ping".into())])
        .expect("call");
    assert_eq!(v, Value::Str("ping".into()));
    manager.shutdown();

    let retained = store.retained();
    assert_eq!(
        retained.len(),
        1,
        "one call, one trace: {:?}",
        retained.iter().map(|t| t.trace).collect::<Vec<_>>()
    );
    let t = &retained[0];
    assert_parented(t, "server.soap");
    // The SOAP path also wraps reply encoding.
    let marshal = span(t, "marshal");
    assert_eq!(marshal.parent, Some(span(t, "server.soap").id));
    store.set_random_sample(0.01);
}

/// The same single-call contract over GIOP: the trace context rides the
/// `0x53444503` service context instead of a SOAP header.
#[test]
fn corba_call_produces_one_parented_trace() {
    let _guard = store_guard();
    let store = tracectx::store();
    store.clear();
    store.set_random_sample(1.0);
    tracectx::set_tracing(true);

    let manager = manager();
    let server = manager
        .deploy_corba(echo_class("TraceCorba"))
        .expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().force_publish();
    server.publisher().ensure_current();

    let env = ClientEnvironment::new();
    let stub = env
        .connect_corba(server.idl_url(), server.ior_url())
        .expect("stub");
    let v = env
        .call(&stub, "echo", &[Value::Str("ping".into())])
        .expect("call");
    assert_eq!(v, Value::Str("ping".into()));
    manager.shutdown();

    let retained = store.retained();
    assert_eq!(
        retained.len(),
        1,
        "one call, one trace: {:?}",
        retained.iter().map(|t| t.trace).collect::<Vec<_>>()
    );
    assert_parented(&retained[0], "server.corba");
    store.set_random_sample(0.01);
}

/// Chaos run: under a ~20% client-side fault plan with retries, the tail
/// sampler must keep at least one trace that (a) records more than one
/// attempt span, (b) carries the injected-fault annotation on a failed
/// attempt, and (c) still shows correctly-parented server child spans
/// for the attempt that finally succeeded.
#[test]
fn faulted_retry_run_keeps_a_multi_attempt_trace() {
    let _guard = store_guard();
    let store = tracectx::store();
    store.clear();
    // No random keep: everything retained below earned it (retried /
    // errored), which is exactly what tail sampling is for.
    store.set_random_sample(0.0);
    tracectx::set_tracing(true);

    let manager = manager();
    let server = manager
        .deploy_soap(counter_class("TraceChaos"))
        .expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();

    let policy = ResiliencePolicy::seeded(17)
        .with_request_timeout(Duration::from_millis(250))
        .with_max_attempts(6)
        .with_breaker(64, Duration::from_millis(500));
    let env = ClientEnvironment::with_policy(policy);
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");

    // Prime fault-free so the reply cache is negotiated, then fault
    // every fresh connection 20% of the time at establishment.
    env.call(&stub, "bump", &[]).expect("prime call");
    assert!(stub.server_caches(), "server must advertise reply cache");
    httpd::FaultPlan::seeded(4242)
        .rule(httpd::FaultRule::refuse(&stub.authority(), 0.12))
        .rule(httpd::FaultRule::disconnect(&stub.authority(), 0.08, 10))
        .install();
    stub.drop_pooled_connections();
    for i in 0..80u32 {
        if i % 2 == 0 {
            stub.drop_pooled_connections();
        }
        env.call(&stub, "bump", &[])
            .unwrap_or_else(|e| panic!("call {i} failed under chaos: {e}"));
    }
    httpd::fault::clear();
    manager.shutdown();

    let retained = store.retained();
    assert!(
        !retained.is_empty(),
        "the tail sampler kept nothing from a 20%-fault run"
    );
    // Every kept trace earned retention (no random keeps above).
    assert!(retained.iter().all(|t| t.reason != "random"));

    let t = retained
        .iter()
        .find(|t| {
            t.spans
                .iter()
                .filter(|s| s.name == "client.attempt")
                .count()
                > 1
                && t.spans.iter().any(|s| has_annotation(s, "fault_injected"))
        })
        .expect("at least one retained trace shows a faulted retry");
    let root = t.root().expect("root");
    assert_eq!(root.name, "client.call");
    assert!(
        root.annotations
            .iter()
            .any(|(k, v)| *k == "attempts" && matches!(v, AnnValue::U64(n) if *n > 1)),
        "root records the attempt count: {:?}",
        root.annotations
    );
    // The failed attempt records why it failed.
    assert!(
        t.spans
            .iter()
            .any(|s| s.name == "client.attempt" && s.error.is_some()),
        "a faulted attempt must carry its error kind"
    );
    // The attempt that went through still has a correctly-parented
    // server-side subtree.
    let attempt_ids: Vec<_> = t
        .spans
        .iter()
        .filter(|s| s.name == "client.attempt")
        .map(|s| s.id)
        .collect();
    let server = span(t, "server.soap");
    assert!(
        server.parent.is_some_and(|p| attempt_ids.contains(&p)),
        "server span parents under one of the client attempts"
    );
    assert_eq!(span(t, "dispatch").parent, Some(server.id));
    store.set_random_sample(0.01);
}

/// A 1k-call soak with full random sampling: the store must stay inside
/// its hard caps (pending/retained/span counts) and its approximate
/// heap footprint must stay bounded.
#[test]
fn span_store_stays_bounded_over_a_soak() {
    let _guard = store_guard();
    let store = tracectx::store();
    store.clear();
    store.set_random_sample(1.0);
    tracectx::set_tracing(true);

    let manager = manager();
    let server = manager
        .deploy_soap(echo_class("TraceSoak"))
        .expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();

    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");
    let arg = [Value::Str("x".into())];
    for i in 0..1000u32 {
        env.call(&stub, "echo", &arg)
            .unwrap_or_else(|e| panic!("soak call {i} failed: {e}"));
    }
    manager.shutdown();

    let stats = store.stats();
    assert_eq!(stats.completions, 1000, "every root completed: {stats:?}");
    assert!(
        stats.retained_traces <= 64,
        "retained cap violated: {stats:?}"
    );
    assert!(
        stats.pending_traces <= 512,
        "pending cap violated: {stats:?}"
    );
    let bytes = store.approx_bytes();
    assert!(
        bytes < 1_572_864,
        "span store grew past its budget: {bytes} bytes ({stats:?})"
    );
    store.set_random_sample(0.01);
}
