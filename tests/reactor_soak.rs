//! Connection-scaling soak for the event-driven transport core.
//!
//! Thread-per-connection pays one OS thread per open socket; the
//! reactor engine pays a slab entry. These tests hold thousands of
//! idle keep-alive connections against one `tcp://` server and assert
//! the process-level consequences: the OS thread count does not move,
//! RSS grows by no more than a few KiB per connection, parked sockets
//! never appear in `http_queue_depth` or trigger 503 shedding, and
//! interleaved calls on parked connections still complete.
//!
//! The 10k-connection variant needs two client subprocesses (each side
//! of a loopback socket costs an fd, and `ulimit -n` caps the test
//! process); it is gated behind `REACTOR_SOAK=1`. The 1k and 5k
//! variants run everywhere, including CI.

#![cfg(target_os = "linux")]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use httpd::{HttpClient, HttpServer, Request, Response};

/// Thread-count assertions only make sense while no other test in this
/// binary is spinning servers up or down.
fn soak_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn status_field(field: &str) -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find(|l| l.starts_with(field))
        .and_then(|l| l[field.len()..].split_whitespace().next())
        .and_then(|v| v.parse().ok())
        .expect("parse /proc/self/status field")
}

fn threads_now() -> u64 {
    status_field("Threads:")
}

fn rss_bytes() -> u64 {
    status_field("VmRSS:") * 1024
}

/// Scales a desired connection count down to what the fd soft limit
/// allows: each loopback connection costs two fds in this process
/// (client end + accepted end), plus slack for everything else.
fn fd_capped(want: usize) -> usize {
    let limits = std::fs::read_to_string("/proc/self/limits").unwrap_or_default();
    let soft: usize = limits
        .lines()
        .find(|l| l.starts_with("Max open files"))
        .and_then(|l| l.split_whitespace().nth(3)?.parse().ok())
        .unwrap_or(1024);
    want.min(soft.saturating_sub(200) / 2)
}

fn echo_handler(req: &Request) -> Response {
    Response::ok(format!("GET {}", req.path()).into_bytes(), "text/plain")
}

fn hostport(base_url: &str) -> String {
    base_url
        .strip_prefix("tcp://")
        .unwrap_or(base_url)
        .trim_end_matches('/')
        .to_string()
}

/// One keep-alive request/response on a raw socket: the connection ends
/// up parked on the reactor afterwards, exactly like a real idle
/// keep-alive client.
fn roundtrip(s: &mut TcpStream, path: &str) {
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(s, "GET {path} HTTP/1.1\r\nHost: soak\r\n\r\n").unwrap();
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(p) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break p;
        }
        let n = s.read(&mut chunk).expect("read response head");
        assert!(n > 0, "connection closed mid-response");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).to_string();
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (k, v) = l.split_once(':')?;
            k.eq_ignore_ascii_case("content-length")
                .then(|| v.trim().parse().ok())?
        })
        .unwrap_or(0);
    let total = header_end + 4 + content_length;
    while buf.len() < total {
        let n = s.read(&mut chunk).expect("read response body");
        assert!(n > 0, "connection closed mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Opens `n` connections; every `request_every`-th one performs a full
/// request first (entering the served→parked keep-alive cycle), the
/// rest park straight from accept.
fn open_parked(addr: &str, n: usize, request_every: usize) -> Vec<TcpStream> {
    (0..n)
        .map(|i| {
            let mut s = TcpStream::connect(addr).expect("connect parked conn");
            s.set_nodelay(true).ok();
            if i % request_every == 0 {
                roundtrip(&mut s, &format!("/park{i}"));
            }
            s
        })
        .collect()
}

#[test]
fn idle_keepalive_1k_flat_threads_and_rss() {
    let _g = soak_lock();
    let server = HttpServer::bind("tcp://127.0.0.1:0", echo_handler).unwrap();
    let addr = hostport(&server.base_url());

    // Baseline after the first slice so one-time costs (reactor shards,
    // accept thread, dispatch pool, lazily-grown slabs) are excluded
    // from the per-connection marginal measurement.
    let total = fd_capped(1000);
    let first = (total / 10).max(1);
    let rest = total - first;
    let mut parked = open_parked(&addr, first, 4);
    let threads_before = threads_now();
    let rss_before = rss_bytes();

    parked.extend(open_parked(&addr, rest, 4));

    let threads_after = threads_now();
    assert_eq!(
        threads_before, threads_after,
        "idle connections must not spawn threads"
    );
    let grown = rss_bytes().saturating_sub(rss_before);
    let per_conn = grown / rest.max(1) as u64;
    assert!(
        per_conn < 16 * 1024,
        "RSS grew {per_conn} bytes per parked connection (total {grown})"
    );

    // Interleaved calls: parked connections wake, serve, and re-park.
    for (i, s) in parked.iter_mut().enumerate().step_by(50) {
        roundtrip(s, &format!("/again{i}"));
    }
    // And a second call on the same conns proves they re-parked cleanly.
    for (i, s) in parked.iter_mut().enumerate().step_by(50) {
        roundtrip(s, &format!("/thrice{i}"));
    }
    drop(parked);
    server.shutdown();
}

#[test]
fn five_k_idle_conns_never_queue_or_shed() {
    let _g = soak_lock();
    let server = HttpServer::bind("tcp://127.0.0.1:0", echo_handler).unwrap();
    let base = server.base_url();
    let addr = hostport(&base);
    let depth = obs::registry().gauge_with("http_queue_depth", &[("server", &base)]);

    let parked = open_parked(&addr, fd_capped(5000), 16);

    // Parked sockets are not queued work: the shedding gauge reads zero
    // with 5000 connections held.
    assert_eq!(depth.get(), 0, "idle connections leaked into the queue");

    // A fresh connection is admitted and served instantly — no 503, no
    // waiting behind the parked mass.
    let start = Instant::now();
    let resp = HttpClient::new().get(&format!("{base}/fresh")).unwrap();
    assert_eq!(resp.status(), 200, "fresh request was shed");
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "fresh request took {:?} behind 5k idle conns",
        start.elapsed()
    );
    drop(parked);
    server.shutdown();
}

/// Client half of the 10k soak: runs in a subprocess (spawned by
/// `ten_k_connections_across_subprocess_clients`) so each side of the
/// loopback pair draws on a separate fd budget. A no-op unless the
/// parent set the address in the environment.
#[test]
fn soak_client_child() {
    let Ok(addr) = std::env::var("REACTOR_SOAK_CHILD_ADDR") else {
        return;
    };
    let conns: usize = std::env::var("REACTOR_SOAK_CHILD_CONNS")
        .expect("REACTOR_SOAK_CHILD_CONNS")
        .parse()
        .expect("parse conn count");
    let held = open_parked(&addr, conns, 16);
    println!("READY {}", held.len());
    // Hold everything until the parent finishes measuring.
    let mut line = String::new();
    let _ = std::io::stdin().read_line(&mut line);
    drop(held);
}

#[test]
fn ten_k_connections_across_subprocess_clients() {
    if std::env::var_os("REACTOR_SOAK").is_none() {
        eprintln!("skipping 10k soak (set REACTOR_SOAK=1 to run)");
        return;
    }
    let _g = soak_lock();
    let server = HttpServer::bind("tcp://127.0.0.1:0", echo_handler).unwrap();
    let base = server.base_url();
    let addr = hostport(&base);
    let fds = obs::registry().gauge("reactor_fds_registered");
    let threads_before = threads_now();
    let rss_before = rss_bytes();

    let exe = std::env::current_exe().unwrap();
    let mut children: Vec<std::process::Child> = (0..2)
        .map(|_| {
            std::process::Command::new(&exe)
                .args(["soak_client_child", "--exact", "--nocapture"])
                .env("REACTOR_SOAK_CHILD_ADDR", &addr)
                .env("REACTOR_SOAK_CHILD_CONNS", "5000")
                .env_remove("REACTOR_SOAK")
                .stdin(std::process::Stdio::piped())
                .stdout(std::process::Stdio::piped())
                .spawn()
                .expect("spawn soak client")
        })
        .collect();
    let mut readers: Vec<BufReader<std::process::ChildStdout>> = children
        .iter_mut()
        .map(|c| BufReader::new(c.stdout.take().unwrap()))
        .collect();
    for r in &mut readers {
        loop {
            let mut line = String::new();
            assert!(
                r.read_line(&mut line).unwrap() > 0,
                "soak client exited before READY"
            );
            // `--nocapture` interleaves with libtest's own "test ... "
            // prefix, so READY may not start the line.
            if line.contains("READY") {
                break;
            }
        }
    }

    // 10 000 concurrent connections registered on the reactor (the
    // last few accepts can trail the clients' connect() returns).
    let deadline = Instant::now() + Duration::from_secs(10);
    while fds.get() < 10_000 {
        assert!(
            Instant::now() < deadline,
            "expected >= 10000 registered fds, gauge reads {}",
            fds.get()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // ...on exactly the thread set we started with...
    assert_eq!(
        threads_before,
        threads_now(),
        "10k connections must not change the thread count"
    );
    // ...for a few KiB of memory each.
    let grown = rss_bytes().saturating_sub(rss_before);
    let per_conn = grown / 10_000;
    assert!(
        per_conn < 16 * 1024,
        "RSS grew {per_conn} bytes per parked connection (total {grown})"
    );

    // The server still answers fresh traffic promptly underneath.
    let start = Instant::now();
    let resp = HttpClient::new().get(&format!("{base}/fresh")).unwrap();
    assert_eq!(resp.status(), 200);
    assert!(start.elapsed() < Duration::from_secs(2));

    for c in &mut children {
        c.stdin.take().unwrap().write_all(b"done\n").ok();
    }
    for mut c in children {
        assert!(c.wait().unwrap().success());
    }
    server.shutdown();
}
