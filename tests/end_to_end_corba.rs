//! End-to-end CORBA flows: jpie class → SDE deployment → published IDL +
//! IOR → CDE stub → GIOP wire → live instance, plus the DSI property that
//! the ORB survives arbitrary interface changes.

use std::time::Duration;

use jpie::expr::{Expr, Stmt};
use jpie::{ClassHandle, MethodBuilder, StructValue, TypeDesc, Value};
use live_rmi::cde::{CallError, ClientEnvironment};
use live_rmi::corba::Ior;
use live_rmi::sde::{PublicationStrategy, SdeConfig, SdeManager, SdeServerGateway, TransportKind};

fn manager() -> SdeManager {
    SdeManager::new(SdeConfig {
        transport: TransportKind::Mem,
        strategy: PublicationStrategy::StableTimeout(Duration::from_millis(15)),
        wal_dir: None,
    })
    .expect("manager")
}

fn greeter_class() -> ClassHandle {
    let class = ClassHandle::new("Greeter");
    class
        .add_method(
            MethodBuilder::new("greet", TypeDesc::Str)
                .param("who", TypeDesc::Str)
                .distributed(true)
                .body_expr(Expr::lit("hi ") + Expr::param("who")),
        )
        .expect("greet");
    class
}

#[test]
fn full_deploy_connect_call_cycle() {
    let manager = manager();
    let server = manager.deploy_corba(greeter_class()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().force_publish();
    server.publisher().ensure_current();

    let env = ClientEnvironment::new();
    let stub = env
        .connect_corba(server.idl_url(), server.ior_url())
        .expect("stub");
    assert_eq!(stub.operations().len(), 1);
    let v = env
        .call(&stub, "greet", &[Value::Str("orb".into())])
        .expect("call");
    assert_eq!(v, Value::Str("hi orb".into()));
    manager.shutdown();
}

#[test]
fn published_ior_parses_and_matches_server() {
    let manager = manager();
    let server = manager.deploy_corba(greeter_class()).expect("deploy");
    let doc = manager.store().get("/Greeter.ior").expect("ior doc");
    let ior = Ior::parse(doc.content()).expect("parse");
    assert_eq!(ior, server.ior());
    assert_eq!(ior.type_id, "IDL:Greeter:1.0");
    manager.shutdown();
}

#[test]
fn uninitialized_corba_server_raises() {
    let manager = manager();
    let server = manager.deploy_corba(greeter_class()).expect("deploy");
    server.publisher().force_publish();
    server.publisher().ensure_current();
    let env = ClientEnvironment::new();
    let stub = env
        .connect_corba(server.idl_url(), server.ior_url())
        .expect("stub");
    let err = env
        .call(&stub, "greet", &[Value::Str("x".into())])
        .expect_err("no instance");
    assert_eq!(err, CallError::ServerNotInitialized);
    manager.shutdown();
}

#[test]
fn dsi_keeps_ior_stable_across_live_edits() {
    // §5.2.2: DSI avoids reinitializing the server ORB when methods
    // change — the published IOR stays valid across many edits.
    let manager = manager();
    let class = greeter_class();
    let server = manager.deploy_corba(class.clone()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().force_publish();
    server.publisher().ensure_current();
    let env = ClientEnvironment::new();
    let stub = env
        .connect_corba(server.idl_url(), server.ior_url())
        .expect("stub");
    let original_ior = server.ior();

    for i in 0..5 {
        class
            .add_method(
                MethodBuilder::new(format!("v{i}"), TypeDesc::Int)
                    .distributed(true)
                    .body_expr(Expr::lit(i * 10)),
            )
            .expect("edit");
        server.publisher().ensure_current();
        stub.refresh().expect("refresh");
        let v = env
            .call(&stub, &format!("v{i}"), &[])
            .expect("call new method");
        assert_eq!(v, Value::Int(i * 10));
    }
    assert_eq!(server.ior(), original_ior, "ORB never reinitialized");
    manager.shutdown();
}

#[test]
fn corba_user_exception_maps_to_application_error() {
    let manager = manager();
    let class = greeter_class();
    class
        .add_method(
            MethodBuilder::new("fail", TypeDesc::Void)
                .distributed(true)
                .body_block(vec![Stmt::Throw(Expr::lit("corba boom"))]),
        )
        .expect("fail");
    let server = manager.deploy_corba(class).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().force_publish();
    server.publisher().ensure_current();
    let env = ClientEnvironment::new();
    let stub = env
        .connect_corba(server.idl_url(), server.ior_url())
        .expect("stub");
    match env.call(&stub, "fail", &[]) {
        Err(CallError::Application(m)) => assert!(m.contains("corba boom"), "{m}"),
        other => panic!("unexpected {other:?}"),
    }
    manager.shutdown();
}

#[test]
fn structured_values_over_giop() {
    let manager = manager();
    let class = ClassHandle::new("Warehouse");
    class
        .add_method(
            MethodBuilder::new("first_sku", TypeDesc::Str)
                .param(
                    "items",
                    TypeDesc::Seq(Box::new(TypeDesc::Named("Item".into()))),
                )
                .distributed(true)
                .body_native(|_f, args| {
                    let Value::Seq(_, items) = &args[0] else {
                        return Err(jpie::JpieError::TypeError("seq".into()));
                    };
                    let Some(Value::Struct(s)) = items.first() else {
                        return Ok(Value::Str(String::new()));
                    };
                    Ok(s.field("sku").cloned().unwrap_or(Value::Str(String::new())))
                }),
        )
        .expect("method");
    let server = manager.deploy_corba(class).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().force_publish();
    server.publisher().ensure_current();
    let env = ClientEnvironment::new();
    let stub = env
        .connect_corba(server.idl_url(), server.ior_url())
        .expect("stub");
    let items = Value::Seq(
        TypeDesc::Named("Item".into()),
        vec![Value::Struct(
            StructValue::new("Item").with("sku", Value::Str("SKU-1".into())),
        )],
    );
    let v = env.call(&stub, "first_sku", &[items]).expect("call");
    assert_eq!(v, Value::Str("SKU-1".into()));
    manager.shutdown();
}

#[test]
fn corba_works_over_tcp_loopback() {
    let manager = SdeManager::new(SdeConfig {
        transport: TransportKind::Tcp,
        strategy: PublicationStrategy::StableTimeout(Duration::from_millis(15)),
        wal_dir: None,
    })
    .expect("manager");
    let server = manager.deploy_corba(greeter_class()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().force_publish();
    server.publisher().ensure_current();
    assert!(server.ior().address.starts_with("tcp://127.0.0.1:"));

    let env = ClientEnvironment::new();
    let stub = env
        .connect_corba(server.idl_url(), server.ior_url())
        .expect("stub");
    let v = env
        .call(&stub, "greet", &[Value::Str("tcp".into())])
        .expect("call");
    assert_eq!(v, Value::Str("hi tcp".into()));
    manager.shutdown();
}
