//! End-to-end SOAP flows across the full stack: jpie class → SDE
//! deployment → published WSDL → CDE stub → HTTP/SOAP wire → live
//! instance, exercising the §5.1 fault matrix and live edits.

use std::time::Duration;

use jpie::expr::{Expr, Stmt};
use jpie::{ClassHandle, MethodBuilder, StructValue, TypeDesc, Value};
use live_rmi::cde::{CallError, ClientEnvironment};
use live_rmi::sde::{PublicationStrategy, SdeConfig, SdeManager, SdeServerGateway, TransportKind};

fn manager() -> SdeManager {
    SdeManager::new(SdeConfig {
        transport: TransportKind::Mem,
        strategy: PublicationStrategy::StableTimeout(Duration::from_millis(15)),
        wal_dir: None,
    })
    .expect("manager")
}

fn calc_class() -> ClassHandle {
    let class = ClassHandle::new("Calc");
    class
        .add_method(
            MethodBuilder::new("add", TypeDesc::Int)
                .param("a", TypeDesc::Int)
                .param("b", TypeDesc::Int)
                .distributed(true)
                .body_expr(Expr::param("a") + Expr::param("b")),
        )
        .expect("add");
    class
}

#[test]
fn full_deploy_connect_call_cycle() {
    let manager = manager();
    let server = manager.deploy_soap(calc_class()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().force_publish();
    server.publisher().ensure_current();

    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");
    assert_eq!(stub.operations().len(), 1);
    let v = env
        .call(&stub, "add", &[Value::Int(19), Value::Int(23)])
        .expect("call");
    assert_eq!(v, Value::Int(42));
    manager.shutdown();
}

#[test]
fn minimal_wsdl_before_instance_exists() {
    // §5.1.1: the minimal WSDL (endpoint, no need for an instance) is
    // published immediately on deployment; the handler answers faults
    // until an instance exists.
    let manager = manager();
    let class = ClassHandle::new("Nascent");
    let server = manager.deploy_soap(class).expect("deploy");
    let wsdl = manager
        .interface_document("Nascent")
        .expect("minimal wsdl published at deploy time");
    assert!(wsdl.contains("soap:address"));

    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");
    let err = env.call(&stub, "anything", &[]).expect_err("no instance");
    assert_eq!(err, CallError::ServerNotInitialized);
    manager.shutdown();
}

#[test]
fn complex_types_cross_the_wire() {
    let manager = manager();
    let class = ClassHandle::new("Shapes");
    class
        .add_method(
            MethodBuilder::new("mirror", TypeDesc::Named("Point".into()))
                .param("p", TypeDesc::Named("Point".into()))
                .distributed(true)
                .body_native(|_fields, args| {
                    let Value::Struct(s) = &args[0] else {
                        return Err(jpie::JpieError::TypeError("want struct".into()));
                    };
                    let mut out = StructValue::new("Point");
                    for (name, value) in &s.fields {
                        let flipped = match value {
                            Value::Int(i) => Value::Int(-i),
                            other => other.clone(),
                        };
                        out.fields.push((name.clone(), flipped));
                    }
                    Ok(Value::Struct(out))
                }),
        )
        .expect("mirror");
    class
        .add_method(
            MethodBuilder::new("total", TypeDesc::Int)
                .param("xs", TypeDesc::Seq(Box::new(TypeDesc::Int)))
                .distributed(true)
                .body_native(|_fields, args| {
                    let Value::Seq(_, items) = &args[0] else {
                        return Err(jpie::JpieError::TypeError("want seq".into()));
                    };
                    let mut sum = 0;
                    for item in items {
                        if let Value::Int(i) = item {
                            sum += i;
                        }
                    }
                    Ok(Value::Int(sum))
                }),
        )
        .expect("total");
    let server = manager.deploy_soap(class).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().force_publish();
    server.publisher().ensure_current();

    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");

    let point = Value::Struct(
        StructValue::new("Point")
            .with("x", Value::Int(3))
            .with("y", Value::Int(-4)),
    );
    let mirrored = env.call(&stub, "mirror", &[point]).expect("mirror");
    assert_eq!(
        mirrored,
        Value::Struct(
            StructValue::new("Point")
                .with("x", Value::Int(-3))
                .with("y", Value::Int(4))
        )
    );

    let xs = Value::Seq(
        TypeDesc::Int,
        vec![Value::Int(1), Value::Int(2), Value::Int(3)],
    );
    assert_eq!(
        env.call(&stub, "total", &[xs]).expect("total"),
        Value::Int(6)
    );
    manager.shutdown();
}

#[test]
fn application_exception_surfaces_as_call_error() {
    let manager = manager();
    let class = calc_class();
    class
        .add_method(
            MethodBuilder::new("explode", TypeDesc::Void)
                .distributed(true)
                .body_block(vec![Stmt::Throw(Expr::lit("server-side bug"))]),
        )
        .expect("explode");
    let server = manager.deploy_soap(class).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().force_publish();
    server.publisher().ensure_current();

    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");
    match env.call(&stub, "explode", &[]) {
        Err(CallError::Application(m)) => assert!(m.contains("server-side bug"), "{m}"),
        other => panic!("unexpected {other:?}"),
    }
    manager.shutdown();
}

#[test]
fn interface_server_serves_versions() {
    let manager = manager();
    let class = calc_class();
    let server = manager.deploy_soap(class.clone()).expect("deploy");
    server.publisher().force_publish();
    server.publisher().ensure_current();
    let v1 = server.publisher().published_version();

    class
        .add_method(MethodBuilder::new("sub", TypeDesc::Int).distributed(true))
        .expect("sub");
    server.publisher().ensure_current();
    let v2 = server.publisher().published_version();
    assert!(v2 > v1);

    let doc = manager.store().get("/Calc.wsdl").expect("published");
    assert_eq!(doc.version, v2);
    assert!(doc.content().contains("sub"));
    manager.shutdown();
}

#[test]
fn publication_history_is_monotonic_through_the_stack() {
    let manager = manager();
    let class = calc_class();
    let server = manager.deploy_soap(class.clone()).expect("deploy");
    server.publisher().ensure_current();
    for i in 0..4 {
        class
            .add_method(MethodBuilder::new(format!("gen{i}"), TypeDesc::Void).distributed(true))
            .expect("edit");
        server.publisher().ensure_current();
    }
    let history = manager.store().history("/Calc.wsdl");
    assert!(history.len() >= 2, "{history:?}");
    assert!(
        history.windows(2).all(|w| w[0] < w[1]),
        "strictly increasing published versions: {history:?}"
    );
    assert_eq!(*history.last().unwrap(), class.interface_version());
    manager.shutdown();
}

#[test]
fn soap_works_over_tcp_loopback() {
    let manager = SdeManager::new(SdeConfig {
        transport: TransportKind::Tcp,
        strategy: PublicationStrategy::StableTimeout(Duration::from_millis(15)),
        wal_dir: None,
    })
    .expect("manager");
    let server = manager.deploy_soap(calc_class()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().force_publish();
    server.publisher().ensure_current();
    assert!(server.wsdl_url().starts_with("tcp://127.0.0.1:"));

    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");
    let v = env
        .call(&stub, "add", &[Value::Int(1), Value::Int(2)])
        .expect("call");
    assert_eq!(v, Value::Int(3));
    manager.shutdown();
}

#[test]
fn concurrent_clients_during_live_edits() {
    use std::sync::Arc;
    let manager = Arc::new(manager());
    let class = calc_class();
    let server = manager.deploy_soap(class.clone()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().force_publish();
    server.publisher().ensure_current();
    let wsdl_url = server.wsdl_url().to_string();

    let mut clients = Vec::new();
    for _ in 0..4 {
        let url = wsdl_url.clone();
        clients.push(std::thread::spawn(move || {
            let env = ClientEnvironment::new();
            let stub = env.connect_soap(&url).expect("stub");
            let mut successes = 0;
            let mut stales = 0;
            for i in 0..30 {
                match env.call(&stub, "add", &[Value::Int(i), Value::Int(1)]) {
                    Ok(v) => {
                        assert_eq!(v, Value::Int(i + 1));
                        successes += 1;
                    }
                    Err(CallError::StaleMethod { .. }) => stales += 1,
                    Err(other) => panic!("unexpected error {other:?}"),
                }
            }
            (successes, stales)
        }));
    }
    // Concurrent body edits (no interface change): calls must keep
    // succeeding throughout.
    let add = class.find_method("add").expect("add");
    for _ in 0..10 {
        class
            .set_body_expr(add, Expr::param("a") + Expr::param("b"))
            .expect("edit");
        std::thread::sleep(Duration::from_millis(2));
    }
    for c in clients {
        let (successes, stales) = c.join().expect("client thread");
        assert_eq!(stales, 0, "body edits never produce stale methods");
        assert_eq!(successes, 30);
    }
    manager.shutdown();
}
