//! The §6 recency guarantee under adversarial schedules.
//!
//! Paper statement: *"the method signature observable at the client upon
//! return from an RMI call is always consistent with a published server
//! interface that is at least as recent as the interface used by the
//! server to process the call."*
//!
//! The consistency-matrix experiment checks the figure's slot grid; these
//! tests go further and hammer the joint SDE/CDE algorithm with
//! randomized concurrent schedules of live edits and client calls,
//! asserting the invariant on every single stale return.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use jpie::expr::Expr;
use jpie::{ClassHandle, MethodBuilder, TypeDesc, Value};
use live_rmi::cde::{CallError, ClientEnvironment};
use live_rmi::sde::{PublicationStrategy, SdeConfig, SdeManager, SdeServerGateway, TransportKind};
use obs::rng::XorShift64;

fn deploy(strategy: PublicationStrategy) -> (SdeManager, ClassHandle, String) {
    let manager = SdeManager::new(SdeConfig {
        transport: TransportKind::Mem,
        strategy,
        wal_dir: None,
    })
    .expect("manager");
    let class = ClassHandle::new("Evolving");
    class
        .add_method(
            MethodBuilder::new("target", TypeDesc::Int)
                .param("x", TypeDesc::Int)
                .distributed(true)
                .body_expr(Expr::param("x") + Expr::lit(1)),
        )
        .expect("target");
    let server = manager.deploy_soap(class.clone()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().force_publish();
    server.publisher().ensure_current();
    let url = server.wsdl_url().to_string();
    (manager, class, url)
}

/// On every stale return, the client's refreshed view version must be at
/// least the interface version that made the call stale.
#[test]
fn randomized_edit_call_schedules_preserve_recency() {
    for seed in 0..8u64 {
        let mut rng = XorShift64::seed_from_u64(seed);
        let (manager, class, wsdl_url) =
            deploy(PublicationStrategy::StableTimeout(Duration::from_millis(3)));
        let env = ClientEnvironment::new();
        let stub = env.connect_soap(&wsdl_url).expect("stub");

        let mut current_name = "target".to_string();
        let mut rename_count = 0u32;
        for step in 0..40 {
            if rng.gen_bool(0.3) {
                // Live edit: rename the method.
                rename_count += 1;
                let id = class.find_method(&current_name).expect("current method");
                let new_name = format!("target_{rename_count}");
                class.rename_method(id, &new_name).expect("rename");
                current_name = new_name;
            }
            // The client calls whatever name its view shows (it may be
            // stale — that is the point).
            let known = stub
                .operations()
                .first()
                .map(|o| o.name.clone())
                .unwrap_or_else(|| current_name.clone());
            // The version that will make this call stale is the class
            // version at call time.
            let server_version_at_call = class.interface_version();
            match env.call(&stub, &known, &[Value::Int(step)]) {
                Ok(v) => assert_eq!(v, Value::Int(step + 1), "seed {seed} step {step}"),
                Err(CallError::StaleMethod { .. }) => {
                    // THE GUARANTEE: the view available when the error
                    // surfaces is at least as recent as the interface the
                    // server processed the call under.
                    assert!(
                        stub.interface_version() >= server_version_at_call,
                        "seed {seed} step {step}: view v{} < server v{}",
                        stub.interface_version(),
                        server_version_at_call
                    );
                }
                Err(other) => panic!("seed {seed} step {step}: unexpected {other:?}"),
            }
        }
        manager.shutdown();
    }
}

/// Concurrent editor and caller threads: the invariant holds under real
/// parallelism, not just alternation.
#[test]
fn concurrent_editor_and_clients_preserve_recency() {
    let (manager, class, wsdl_url) =
        deploy(PublicationStrategy::StableTimeout(Duration::from_millis(2)));
    let stop = Arc::new(AtomicBool::new(false));

    // Editor thread: keeps renaming the distributed method.
    let editor_class = class.clone();
    let editor_stop = stop.clone();
    let editor = std::thread::spawn(move || {
        let mut i = 0u32;
        while !editor_stop.load(Ordering::SeqCst) {
            let name = if i.is_multiple_of(2) {
                "target"
            } else {
                "renamed"
            };
            let next = if i.is_multiple_of(2) {
                "renamed"
            } else {
                "target"
            };
            if let Some(id) = editor_class.find_method(name) {
                let _ = editor_class.rename_method(id, next);
            }
            i += 1;
            std::thread::sleep(Duration::from_millis(3));
        }
    });

    let mut clients = Vec::new();
    for t in 0..3 {
        let url = wsdl_url.clone();
        let class = class.clone();
        clients.push(std::thread::spawn(move || {
            let env = ClientEnvironment::new();
            let stub = env.connect_soap(&url).expect("stub");
            let mut stale_seen = 0;
            for step in 0..40 {
                let known = stub
                    .operations()
                    .first()
                    .map(|o| o.name.clone())
                    .unwrap_or_else(|| "target".into());
                let version_before = class.interface_version();
                match env.call(&stub, &known, &[Value::Int(step)]) {
                    Ok(v) => assert_eq!(v, Value::Int(step + 1), "client {t} step {step}"),
                    Err(CallError::StaleMethod { .. }) => {
                        stale_seen += 1;
                        assert!(
                            stub.interface_version() >= version_before,
                            "client {t} step {step}"
                        );
                    }
                    Err(other) => panic!("client {t} step {step}: {other:?}"),
                }
            }
            stale_seen
        }));
    }

    let mut total_stale = 0;
    for c in clients {
        total_stale += c.join().expect("client");
    }
    stop.store(true, Ordering::SeqCst);
    editor.join().expect("editor");
    // With a rename every ~3ms and 120 calls, some must have gone stale —
    // otherwise this test exercised nothing.
    assert!(total_stale > 0, "schedule produced no stale calls");
    manager.shutdown();
}

/// The guarantee also holds on the CORBA side.
#[test]
fn corba_stale_calls_preserve_recency() {
    let manager = SdeManager::new(SdeConfig {
        transport: TransportKind::Mem,
        strategy: PublicationStrategy::StableTimeout(Duration::from_secs(3600)),
        wal_dir: None,
    })
    .expect("manager");
    let class = ClassHandle::new("CorbaEvolving");
    class
        .add_method(
            MethodBuilder::new("f", TypeDesc::Int)
                .distributed(true)
                .body_expr(Expr::lit(1)),
        )
        .expect("f");
    let server = manager.deploy_corba(class.clone()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().force_publish();
    server.publisher().ensure_current();

    let env = ClientEnvironment::new();
    let stub = env
        .connect_corba(server.idl_url(), server.ior_url())
        .expect("stub");

    let f = class.find_method("f").expect("f");
    class.rename_method(f, "g").expect("rename");
    let server_version = class.interface_version();

    let err = env.call(&stub, "f", &[]).expect_err("stale");
    assert!(matches!(err, CallError::StaleMethod { .. }));
    assert!(stub.interface_version() >= server_version);
    assert!(stub.operation("g").is_some());
    manager.shutdown();
}

/// Recovery after a full server restart: when the SDE process dies, the
/// client's circuit breaker opens and the stub keeps serving its cached
/// (stale) interface view. Once a replacement server comes back at the
/// *same* published URL, the half-open probe reconverges the stub onto
/// the new interface — recency is restored without ever re-connecting.
#[test]
fn client_reconverges_after_server_restart_at_same_url() {
    let addr = "mem://sde-ifc-restart";
    let config = || SdeConfig {
        transport: TransportKind::Mem,
        strategy: PublicationStrategy::ChangeDriven,
        wal_dir: None,
    };
    let class = ClassHandle::new("Phoenix");
    class
        .add_method(
            MethodBuilder::new("target", TypeDesc::Int)
                .param("x", TypeDesc::Int)
                .distributed(true)
                .body_expr(Expr::param("x") + Expr::lit(1)),
        )
        .expect("target");

    let manager = SdeManager::with_interface_addr(config(), addr).expect("manager");
    let server = manager.deploy_soap(class.clone()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().force_publish();
    server.publisher().ensure_current();
    let wsdl_url = server.wsdl_url().to_string();
    let old_version = class.interface_version();

    // One failed refresh per attempt, breaker opens after three of them.
    let policy = live_rmi::cde::ResiliencePolicy::seeded(21)
        .with_request_timeout(Duration::from_millis(200))
        .with_max_attempts(1)
        .with_breaker(3, Duration::from_millis(150));
    let env = ClientEnvironment::with_policy(policy);
    let stub = env.connect_soap(&wsdl_url).expect("stub");
    assert!(stub.operation("target").is_some());
    // Interface refreshes flow through the WSDL URL's authority — the
    // interface server address — not the SOAP endpoint's.
    let breaker = live_rmi::cde::breaker_for(addr, env.policy());

    // Kill the server. Refreshes now fail until the breaker opens...
    manager.shutdown();
    let mut failures = 0;
    while breaker.state() != live_rmi::cde::BreakerState::Open {
        if stub.refresh().is_err() {
            failures += 1;
        }
        assert!(failures <= 8, "breaker never opened");
    }
    // ...after which the stub serves its cached view instead of erroring.
    stub.refresh()
        .expect("stale view served while breaker is open");
    assert!(
        stub.operation("target").is_some(),
        "cached interface survives the outage"
    );

    // Redeploy at the same published URL, with an evolved interface whose
    // version (and thus ETag) is strictly newer than the cached one.
    let reborn = ClassHandle::new("Phoenix");
    reborn
        .add_method(
            MethodBuilder::new("target", TypeDesc::Int)
                .param("x", TypeDesc::Int)
                .distributed(true)
                .body_expr(Expr::param("x") + Expr::lit(1)),
        )
        .expect("target");
    while reborn.interface_version() <= old_version {
        let id = reborn.find_method("target").expect("target");
        reborn.rename_method(id, "reborn").expect("rename");
        let id = reborn.find_method("reborn").expect("reborn");
        reborn.rename_method(id, "target").expect("rename back");
    }
    let manager2 = SdeManager::with_interface_addr(config(), addr).expect("manager2");
    let server2 = manager2.deploy_soap(reborn.clone()).expect("redeploy");
    server2.create_instance().expect("instance");
    server2.publisher().force_publish();
    server2.publisher().ensure_current();
    assert_eq!(server2.wsdl_url(), wsdl_url, "same published URL");

    // Wait out the cooldown: the half-open probe succeeds, the breaker
    // closes, and the stub converges on the reborn server's interface.
    std::thread::sleep(Duration::from_millis(200));
    stub.refresh().expect("half-open probe reconverges");
    assert_eq!(breaker.state(), live_rmi::cde::BreakerState::Closed);
    assert!(stub.interface_version() > old_version);
    let v = env
        .call(&stub, "target", &[Value::Int(41)])
        .expect("call against the reborn server");
    assert_eq!(v, Value::Int(42));
    manager2.shutdown();
}

/// Crash durability: with a WAL configured, a manager killed and
/// restarted at the same authority replays the log during redeploy, so
/// even a class rebuilt *from scratch* (version restarts at its natural
/// low value — the real post-crash situation) resumes publication at
/// `version >= pre-crash`. Without the WAL, the reborn server would
/// publish an older version and break the §6 recency guarantee for
/// clients holding the pre-crash document. Contrast with
/// [`client_reconverges_after_server_restart_at_same_url`], which has to
/// hand-evolve the reborn class past the old version.
#[test]
fn wal_replay_restores_version_floor_across_kill_and_restart() {
    let addr = "mem://sde-ifc-wal-restart";
    let wal_dir = std::env::temp_dir().join(format!("live-rmi-wal-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let config = || SdeConfig {
        transport: TransportKind::Mem,
        strategy: PublicationStrategy::ChangeDriven,
        wal_dir: Some(wal_dir.clone()),
    };
    let make_class = || {
        let class = ClassHandle::new("Durable");
        class
            .add_method(
                MethodBuilder::new("target", TypeDesc::Int)
                    .param("x", TypeDesc::Int)
                    .distributed(true)
                    .body_expr(Expr::param("x") + Expr::lit(1)),
            )
            .expect("target");
        class
    };

    // First life: deploy and drive the version well past the fresh-class
    // baseline with live edits; every publication lands in the WAL.
    let class = make_class();
    let manager = SdeManager::with_interface_addr(config(), addr).expect("manager");
    let server = manager.deploy_soap(class.clone()).expect("deploy");
    server.create_instance().expect("instance");
    for i in 0..5 {
        class
            .add_method(
                MethodBuilder::new(format!("gen{i}"), TypeDesc::Int)
                    .distributed(true)
                    .body_expr(Expr::lit(i)),
            )
            .expect("edit");
        server.publisher().force_publish();
        server.publisher().ensure_current();
    }
    let pre_crash = manager
        .store()
        .get("/Durable.wsdl")
        .expect("published")
        .version;
    assert!(pre_crash > 0);
    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");
    assert_eq!(stub.interface_version(), pre_crash);

    // Kill the process state. Only the WAL survives.
    drop(manager);

    // Second life: a FRESH class (its version has no memory of the five
    // edits) redeployed at the same authority. WAL replay must floor it.
    let reborn = make_class();
    assert!(
        reborn.interface_version() < pre_crash,
        "test needs a genuinely lower fresh version"
    );
    let manager2 = SdeManager::with_interface_addr(config(), addr).expect("manager2");
    let server2 = manager2.deploy_soap(reborn.clone()).expect("redeploy");
    server2.create_instance().expect("instance");
    server2.publisher().force_publish();
    server2.publisher().ensure_current();

    assert!(
        reborn.interface_version() >= pre_crash,
        "WAL replay must floor the class version: {} < {pre_crash}",
        reborn.interface_version()
    );
    let republished = manager2
        .store()
        .get("/Durable.wsdl")
        .expect("republished")
        .version;
    assert!(
        republished >= pre_crash,
        "published version went backwards across the crash: {republished} < {pre_crash}"
    );

    // Development resumes: the first post-restart edit lands strictly
    // above the floor, so every client-observable version is monotonic
    // across the crash. (The mem transport mints a fresh service endpoint
    // per deploy, so the pre-crash client needs this version bump to know
    // its cached document is stale; a real restart reuses host:port.)
    reborn
        .add_method(
            MethodBuilder::new("post_crash", TypeDesc::Int)
                .distributed(true)
                .body_expr(Expr::lit(7)),
        )
        .expect("post-crash edit");
    server2.publisher().force_publish();
    server2.publisher().ensure_current();
    assert!(reborn.interface_version() > pre_crash);

    // The pre-crash client reconverges: its next refresh never observes a
    // version older than what it already saw.
    stub.refresh().expect("refresh against reborn server");
    assert!(stub.interface_version() > pre_crash);
    let v = env
        .call(&stub, "target", &[Value::Int(41)])
        .expect("call against reborn server");
    assert_eq!(v, Value::Int(42));

    manager2.shutdown();
    let _ = std::fs::remove_dir_all(&wal_dir);
}

/// Regression: the stale path must also fire for *signature* changes of a
/// method that keeps its name — the subtle case where the method "exists"
/// but does not match.
#[test]
fn signature_change_same_name_still_guaranteed() {
    let (manager, class, wsdl_url) = deploy(PublicationStrategy::StableTimeout(
        Duration::from_secs(3600),
    ));
    let env = ClientEnvironment::new();
    let stub = env.connect_soap(&wsdl_url).expect("stub");

    let id = class.find_method("target").expect("target");
    class
        .add_param(id, "y", TypeDesc::Int)
        .expect("widen signature");
    let server_version = class.interface_version();

    let err = env
        .call(&stub, "target", &[Value::Int(1)])
        .expect_err("old shape is stale");
    assert!(matches!(err, CallError::StaleMethod { .. }));
    assert!(stub.interface_version() >= server_version);
    assert_eq!(
        stub.operation("target").expect("still there").params.len(),
        2
    );
    manager.shutdown();
}
