//! Live shard failover through the sharded authority router.
//!
//! The §5.7/§6 recency machinery makes shard death survivable without
//! touching clients: the router detects the dead backend, promotes its
//! WAL-replicating follower (version floors `>= pre-crash` via
//! [`jpie`]'s `restore_version_floor`), republishes every class, and
//! answers in-flight refetches at the same front addresses. These tests
//! kill a shard mid-workload on both wires and assert the acceptance
//! bar: 100 % client success, exactly-once accounting across the
//! failover, and post-failover document versions at least the pre-crash
//! versions.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use live_rmi::cde::{ClientEnvironment, ResiliencePolicy};
use live_rmi::router::{ClassSpec, HashRing, Router, RouterConfig};
use live_rmi::sde::TransportKind;

fn counter_source(name: &str) -> String {
    format!(
        "class {name} {{ field int n; distributed int bump() {{ \
         this.n = this.n + 1; return this.n; }} }}"
    )
}

/// Class names covering every shard at least twice, mirroring the
/// router's ring so the test knows each class's home shard.
fn pick_classes(shards: usize, vnodes: usize, prefix: &str) -> Vec<(String, usize)> {
    let ring = HashRing::new(shards, vnodes);
    let mut per_shard = vec![0usize; shards];
    let mut picked = Vec::new();
    for i in 0.. {
        let name = format!("{prefix}{i}");
        let shard = ring.shard_for(&name);
        if per_shard[shard] < 2 {
            per_shard[shard] += 1;
            picked.push((name, shard));
        }
        if per_shard.iter().all(|&c| c >= 2) {
            break;
        }
    }
    picked
}

fn authority_of(url: &str) -> String {
    match url.find("://").map(|i| i + 3) {
        Some(rest) => match url[rest..].find('/') {
            Some(slash) => url[..rest + slash].to_string(),
            None => url.to_string(),
        },
        None => url.to_string(),
    }
}

fn resilient_env(seed: u64) -> ClientEnvironment {
    ClientEnvironment::with_policy(
        ResiliencePolicy::seeded(seed)
            .with_request_timeout(Duration::from_millis(250))
            .with_max_attempts(10)
            .with_deadline(Duration::from_secs(8))
            // Shard failure detection is the router's job; the client
            // breaker must keep retrying through the failover window.
            .with_breaker(256, Duration::from_millis(500)),
    )
}

fn temp_root(tag: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("live-rmi-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// SOAP workload at a 20 % injected fault rate with one shard killed
/// mid-sweep: every call succeeds, fleet-wide executions equal calls,
/// and every promoted document republishes at `version >= pre-crash`.
#[test]
fn soap_shard_failover_under_faults_preserves_exactly_once_and_recency() {
    const SHARDS: usize = 3;
    const KILL: usize = 1;
    const CALLS: usize = 60;
    const FAULT_RATE: f64 = 0.2;

    let wal_root = temp_root("sf-soap");
    let cfg = RouterConfig::new(SHARDS, TransportKind::Mem, &wal_root, "sf-soap");
    let classes = pick_classes(SHARDS, cfg.vnodes, "FoCounter");
    let specs = classes
        .iter()
        .map(|(name, _)| ClassSpec::soap(name.clone(), counter_source(name)))
        .collect();
    let router = Router::start(cfg, specs).expect("router start");
    assert!(
        router.wait_converged(Duration::from_secs(10)),
        "followers must be caught up before the kill"
    );

    let env = resilient_env(7);
    let stubs: Vec<(String, usize, std::sync::Arc<live_rmi::cde::DynamicStub>)> = classes
        .iter()
        .map(|(name, shard)| {
            let stub = env
                .connect_soap(&router.wsdl_url(name))
                .expect("front WSDL must resolve to a working stub");
            (name.clone(), *shard, stub)
        })
        .collect();

    // One clean call per class latches the server's reply-cache
    // advertisement, licensing non-idempotent retries.
    for (_, _, stub) in &stubs {
        env.call(stub, "bump", &[]).expect("prime call");
        assert!(stub.server_caches());
    }

    let front = authority_of(&router.front_url());
    httpd::FaultPlan::seeded(7)
        .rule(httpd::FaultRule::delay(
            &front,
            FAULT_RATE * 0.20,
            Duration::from_millis(1),
            Duration::from_millis(1),
        ))
        .rule(httpd::FaultRule::truncate(&front, FAULT_RATE * 0.15, 40))
        .rule(httpd::FaultRule::corrupt(&front, FAULT_RATE * 0.15, 2))
        .rule(httpd::FaultRule::disconnect(&front, FAULT_RATE * 0.10, 10))
        .rule(httpd::FaultRule::refuse(&front, FAULT_RATE * 0.15))
        .rule(httpd::FaultRule::drop_reply(&front, FAULT_RATE * 0.25).on_accept())
        .install();

    let kill_at = stubs.len() + CALLS / 3;
    let mut pre_kill: HashMap<String, i64> = HashMap::new();
    let mut pre_versions: HashMap<String, u64> = HashMap::new();
    let mut ok = stubs.len();
    let mut attempted = stubs.len();
    for i in stubs.len()..CALLS {
        if i == kill_at {
            for (name, shard, _) in &stubs {
                if *shard == KILL {
                    pre_kill.insert(name.clone(), router.field_value(name, "n").expect("field"));
                    pre_versions.insert(name.clone(), router.doc_version(name).expect("version"));
                }
            }
            router.kill_shard(KILL);
        }
        let (_, _, stub) = &stubs[i % stubs.len()];
        if i % 4 == 0 {
            stub.drop_pooled_connections();
        }
        attempted += 1;
        if env.call(stub, "bump", &[]).is_ok() {
            ok += 1;
        }
    }
    httpd::fault::clear();

    assert_eq!(ok, attempted, "100% client success across the failover");

    assert!(
        router.wait_converged(Duration::from_secs(10)),
        "fleet must reconverge after the failover"
    );
    let failover = router.last_failover().expect("failover must have run");
    assert_eq!(failover.shard, KILL);

    // Exactly-once accounting, fleet-wide: live shards count every call
    // since start; the killed shard's effects are its exact pre-kill
    // snapshot (the client is sequential, so the kill lands between
    // calls) plus whatever the promoted follower executed after.
    let mut effects: i64 = 0;
    for (name, shard, _) in &stubs {
        let current = router.field_value(name, "n").expect("field");
        let pre = if *shard == KILL { pre_kill[name] } else { 0 };
        effects += pre + current;
    }
    assert_eq!(
        effects as usize, ok,
        "every acknowledged call executed exactly once"
    );

    for (name, _) in classes.iter().filter(|(_, s)| *s == KILL) {
        let post = router.doc_version(name).expect("version");
        assert!(
            post >= pre_versions[name],
            "{name}: post-failover version {post} must be >= pre-crash {}",
            pre_versions[name]
        );
    }

    router.shutdown();
    let _ = std::fs::remove_dir_all(&wal_root);
}

/// CORBA calls flow through the router's per-class GIOP proxy, whose
/// address is stable across failover: after the kill, the proxy's
/// backend swaps to the promoted follower and the same stub — same IOR,
/// no reconnect-by-hand — succeeds again, at a document version at
/// least the pre-crash one.
#[test]
fn corba_calls_reconverge_through_giop_proxy_after_failover() {
    const SHARDS: usize = 2;
    let wal_root = temp_root("sf-corba");
    let cfg = RouterConfig::new(SHARDS, TransportKind::Mem, &wal_root, "sf-corba");
    let classes = pick_classes(SHARDS, cfg.vnodes, "FoOrb");
    let specs = classes
        .iter()
        .map(|(name, _)| ClassSpec::corba(name.clone(), counter_source(name)))
        .collect();
    let router = Router::start(cfg, specs).expect("router start");
    assert!(router.wait_converged(Duration::from_secs(10)));

    // Work against one class on the shard we will kill.
    let kill = classes[0].1;
    let victim = classes[0].0.clone();
    let env = resilient_env(11);
    let stub = env
        .connect_corba(&router.idl_url(&victim), &router.ior_url(&victim))
        .expect("front IDL/IOR must resolve to a working stub");

    for _ in 0..5 {
        env.call(&stub, "bump", &[]).expect("pre-kill call");
    }
    assert!(stub.server_caches());
    let pre_value = router.field_value(&victim, "n").expect("field");
    let pre_version = router.doc_version(&victim).expect("version");
    assert_eq!(pre_value, 5);

    router.kill_shard(kill);

    // The same stub must succeed again once the proxy swings to the
    // promoted follower — retry until the failover completes.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut recovered = false;
    let mut post_kill_ok = 0i64;
    while Instant::now() < deadline {
        if env.call(&stub, "bump", &[]).is_ok() {
            recovered = true;
            post_kill_ok += 1;
            if post_kill_ok >= 3 {
                break;
            }
        }
    }
    assert!(recovered, "CORBA calls must succeed again after failover");

    let failover = router.last_failover().expect("failover event");
    assert_eq!(failover.shard, kill);
    assert!(
        failover.classes.contains(&victim),
        "failover must republish the victim class"
    );

    // Promoted instance restarts counting from zero; acknowledged
    // post-kill calls all executed exactly once on it.
    let post_value = router.field_value(&victim, "n").expect("field");
    assert_eq!(
        post_value, post_kill_ok,
        "exactly-once on the promoted backend"
    );

    let post_version = router.doc_version(&victim).expect("version");
    assert!(
        post_version >= pre_version,
        "post-failover IDL version {post_version} must be >= pre-crash {pre_version}"
    );

    router.shutdown();
    let _ = std::fs::remove_dir_all(&wal_root);
}
