//! Planned operations through the sharded authority router: live class
//! migration, cancellation, failover fallback, and rolling restarts.
//!
//! Where `shard_failover.rs` proves the *unplanned* path (a kill mid-
//! workload loses nothing), these tests prove the same machinery run as
//! a *scheduled* event is strictly better: zero failed calls, instance
//! state and the exactly-once reply cache carried to the new shard (no
//! counter reset — the state survives, unlike a crash), document
//! versions monotonic across the move, and a bounded drain pause. A
//! migration interrupted by a real source death must degrade into the
//! existing failover path; a cancelled one must leave the source
//! byte-identical.

use std::time::Duration;

use live_rmi::cde::{ClientEnvironment, ResiliencePolicy};
use live_rmi::router::{ClassSpec, HashRing, MoveOpts, Router, RouterConfig};
use live_rmi::sde::TransportKind;

fn counter_source(name: &str) -> String {
    format!(
        "class {name} {{ field int n; distributed int bump() {{ \
         this.n = this.n + 1; return this.n; }} }}"
    )
}

/// Class names covering every shard at least twice, mirroring the
/// router's ring so the test knows each class's home shard.
fn pick_classes(shards: usize, vnodes: usize, prefix: &str) -> Vec<(String, usize)> {
    let ring = HashRing::new(shards, vnodes);
    let mut per_shard = vec![0usize; shards];
    let mut picked = Vec::new();
    for i in 0.. {
        let name = format!("{prefix}{i}");
        let shard = ring.shard_for(&name);
        if per_shard[shard] < 2 {
            per_shard[shard] += 1;
            picked.push((name, shard));
        }
        if per_shard.iter().all(|&c| c >= 2) {
            break;
        }
    }
    picked
}

fn authority_of(url: &str) -> String {
    match url.find("://").map(|i| i + 3) {
        Some(rest) => match url[rest..].find('/') {
            Some(slash) => url[..rest + slash].to_string(),
            None => url.to_string(),
        },
        None => url.to_string(),
    }
}

fn resilient_env(seed: u64) -> ClientEnvironment {
    ClientEnvironment::with_policy(
        ResiliencePolicy::seeded(seed)
            .with_request_timeout(Duration::from_millis(250))
            .with_max_attempts(10)
            .with_deadline(Duration::from_secs(8))
            .with_breaker(256, Duration::from_millis(500)),
    )
}

fn temp_root(tag: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("live-rmi-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// Every file under `dir`, concatenated in name order — the
/// byte-identity probe for "the source WAL was not touched".
fn dir_bytes(dir: &std::path::Path) -> Vec<u8> {
    let mut names: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map(|rd| rd.filter_map(|e| e.ok().map(|e| e.path())).collect())
        .unwrap_or_default();
    names.sort();
    let mut bytes = Vec::new();
    for path in names {
        if path.is_file() {
            bytes.extend(std::fs::read(&path).unwrap_or_default());
        }
    }
    bytes
}

/// SOAP workload at a 40 % injected fault rate with one class migrated
/// between shards mid-sweep: every call succeeds, fleet-wide effects
/// equal calls exactly (the live instance and reply cache move with
/// the class — no counter reset), the document version is monotonic
/// across the move, and the drain pause stays under the 2 s deadline.
#[test]
fn soap_migration_under_faults_is_loss_free_and_carries_state() {
    const SHARDS: usize = 3;
    const CALLS: usize = 60;
    const FAULT_RATE: f64 = 0.4;

    let wal_root = temp_root("rb-soap");
    let cfg = RouterConfig::new(SHARDS, TransportKind::Mem, &wal_root, "rb-soap");
    let classes = pick_classes(SHARDS, cfg.vnodes, "RbCounter");
    let specs = classes
        .iter()
        .map(|(name, _)| ClassSpec::soap(name.clone(), counter_source(name)))
        .collect();
    let router = Router::start(cfg, specs).expect("router start");
    assert!(router.wait_converged(Duration::from_secs(10)));

    let (victim, home) = classes[0].clone();
    let target = (home + 1) % SHARDS;

    let env = resilient_env(13);
    let stubs: Vec<(String, std::sync::Arc<live_rmi::cde::DynamicStub>)> = classes
        .iter()
        .map(|(name, _)| {
            let stub = env.connect_soap(&router.wsdl_url(name)).expect("stub");
            (name.clone(), stub)
        })
        .collect();
    for (_, stub) in &stubs {
        env.call(stub, "bump", &[]).expect("prime call");
        assert!(stub.server_caches());
    }
    let pre_version = router.doc_version(&victim).expect("version");

    let front = authority_of(&router.front_url());
    httpd::FaultPlan::seeded(13)
        .rule(httpd::FaultRule::delay(
            &front,
            FAULT_RATE * 0.20,
            Duration::from_millis(1),
            Duration::from_millis(1),
        ))
        .rule(httpd::FaultRule::truncate(&front, FAULT_RATE * 0.15, 40))
        .rule(httpd::FaultRule::corrupt(&front, FAULT_RATE * 0.15, 2))
        .rule(httpd::FaultRule::disconnect(&front, FAULT_RATE * 0.10, 10))
        .rule(httpd::FaultRule::refuse(&front, FAULT_RATE * 0.15))
        .rule(httpd::FaultRule::drop_reply(&front, FAULT_RATE * 0.25).on_accept())
        .install();

    let move_at = stubs.len() + CALLS / 3;
    let mut handle = None;
    let mut ok = stubs.len();
    let mut attempted = stubs.len();
    for i in stubs.len()..CALLS {
        if i == move_at {
            handle = Some(router.begin_move(&victim, target, MoveOpts::default()));
        }
        let (_, stub) = &stubs[i % stubs.len()];
        if i % 4 == 0 {
            stub.drop_pooled_connections();
        }
        attempted += 1;
        if env.call(stub, "bump", &[]).is_ok() {
            ok += 1;
        }
    }
    let event = handle
        .expect("move started")
        .join()
        .expect("migration must complete");
    httpd::fault::clear();

    assert_eq!(ok, attempted, "100% client success across the migration");
    assert_eq!(router.shard_of(&victim), target, "class re-homed");
    assert_eq!(event.from_shard, home);
    assert!(
        event.drain_ms < 2_000.0,
        "drain pause {:.1}ms must stay under the 2s deadline",
        event.drain_ms
    );

    // Exactly-once, fleet-wide, with *no* resets: unlike a crash
    // failover, a planned move carries the live instance, so every
    // counter keeps its full history.
    let effects: i64 = stubs
        .iter()
        .map(|(name, _)| router.field_value(name, "n").expect("field"))
        .sum();
    assert_eq!(
        effects as usize, ok,
        "every acknowledged call executed exactly once, state carried"
    );

    let post_version = router.doc_version(&victim).expect("version");
    assert!(
        post_version >= pre_version,
        "post-move version {post_version} must be >= pre-move {pre_version}"
    );

    router.shutdown();
    let _ = std::fs::remove_dir_all(&wal_root);
}

/// CORBA calls keep flowing through the class's stable GIOP proxy
/// while the class migrates: the same stub (same IOR, no reconnect)
/// succeeds before, during, and after the move, and the counter never
/// resets because the instance moves with the class.
#[test]
fn corba_migration_through_stable_proxy_keeps_the_same_stub_working() {
    const SHARDS: usize = 2;
    let wal_root = temp_root("rb-corba");
    let cfg = RouterConfig::new(SHARDS, TransportKind::Mem, &wal_root, "rb-corba");
    let classes = pick_classes(SHARDS, cfg.vnodes, "RbOrb");
    let specs = classes
        .iter()
        .map(|(name, _)| ClassSpec::corba(name.clone(), counter_source(name)))
        .collect();
    let router = Router::start(cfg, specs).expect("router start");
    assert!(router.wait_converged(Duration::from_secs(10)));

    let (victim, home) = classes[0].clone();
    let target = (home + 1) % SHARDS;
    let env = resilient_env(17);
    let stub = env
        .connect_corba(&router.idl_url(&victim), &router.ior_url(&victim))
        .expect("stub");

    for _ in 0..5 {
        env.call(&stub, "bump", &[]).expect("pre-move call");
    }
    assert!(stub.server_caches());
    let pre_version = router.doc_version(&victim).expect("version");

    // Call through the whole migration window: drained calls surface as
    // TRANSIENT with a pacing hint, which the client retries — so every
    // call here must succeed.
    let handle = router.begin_move(&victim, target, MoveOpts::default());
    for i in 0..40 {
        env.call(&stub, "bump", &[])
            .unwrap_or_else(|e| panic!("call {i} during migration failed: {e}"));
    }
    let event = handle.join().expect("migration must complete");
    assert_eq!(event.to_shard, target);
    assert_eq!(router.shard_of(&victim), target);

    // 5 pre-move + 40 through-move calls, every one exactly once, on an
    // instance whose state crossed shards intact.
    assert_eq!(router.field_value(&victim, "n"), Some(45));
    let post_version = router.doc_version(&victim).expect("version");
    assert!(post_version >= pre_version);

    router.shutdown();
    let _ = std::fs::remove_dir_all(&wal_root);
}

/// Killing the source mid-migration degrades into the unplanned
/// failover path: the move aborts (failover won), the promoted
/// follower serves the class, and clients keep succeeding.
#[test]
fn source_death_mid_migration_degrades_into_failover() {
    const SHARDS: usize = 2;
    let wal_root = temp_root("rb-kill");
    let cfg = RouterConfig::new(SHARDS, TransportKind::Mem, &wal_root, "rb-kill");
    let classes = pick_classes(SHARDS, cfg.vnodes, "RbKill");
    let specs = classes
        .iter()
        .map(|(name, _)| ClassSpec::soap(name.clone(), counter_source(name)))
        .collect();
    let router = Router::start(cfg, specs).expect("router start");
    assert!(router.wait_converged(Duration::from_secs(10)));

    let (victim, home) = classes[0].clone();
    let target = (home + 1) % SHARDS;
    let env = resilient_env(19);
    let stub = env.connect_soap(&router.wsdl_url(&victim)).expect("stub");
    for _ in 0..3 {
        env.call(&stub, "bump", &[]).expect("pre-kill call");
    }

    // A long settle dwell holds the migration between catch-up and
    // drain; the kill lands inside that window, so the migration must
    // observe the failover and stand down.
    let handle = router.begin_move(
        &victim,
        target,
        MoveOpts {
            settle: Duration::from_secs(5),
        },
    );
    std::thread::sleep(Duration::from_millis(50));
    router.kill_shard(home);
    let err = handle.join().expect_err("failover must win over the move");
    assert!(
        err.to_string().contains("failover won") || err.to_string().contains("failed over"),
        "unexpected migration error: {err}"
    );

    assert!(
        router.wait_converged(Duration::from_secs(10)),
        "fleet must reconverge via failover"
    );
    let failover = router.last_failover().expect("failover event");
    assert_eq!(failover.shard, home);
    assert_eq!(
        router.shard_of(&victim),
        home,
        "class stays on its (promoted) home shard"
    );

    // Clients keep succeeding against the promoted backend.
    for _ in 0..3 {
        env.call(&stub, "bump", &[]).expect("post-failover call");
    }

    router.shutdown();
    let _ = std::fs::remove_dir_all(&wal_root);
}

/// A cancelled migration is a perfect no-op: routes identical, the
/// source shard's WAL byte-identical, document versions unchanged, and
/// calls flow as if nothing happened.
#[test]
fn cancelled_migration_leaves_source_wal_and_routes_byte_identical() {
    const SHARDS: usize = 2;
    let wal_root = temp_root("rb-cancel");
    let cfg = RouterConfig::new(SHARDS, TransportKind::Mem, &wal_root, "rb-cancel");
    let classes = pick_classes(SHARDS, cfg.vnodes, "RbCancel");
    let specs = classes
        .iter()
        .map(|(name, _)| ClassSpec::soap(name.clone(), counter_source(name)))
        .collect();
    let router = Router::start(cfg, specs).expect("router start");
    assert!(router.wait_converged(Duration::from_secs(10)));

    let (victim, home) = classes[0].clone();
    let target = (home + 1) % SHARDS;
    let env = resilient_env(23);
    let stub = env.connect_soap(&router.wsdl_url(&victim)).expect("stub");
    for _ in 0..4 {
        env.call(&stub, "bump", &[]).expect("pre-cancel call");
    }

    let leader_dir = wal_root.join(format!("s{home}-leader"));
    let pre_wal = dir_bytes(&leader_dir);
    assert!(!pre_wal.is_empty(), "source WAL must have content");
    let pre_routes = router.assignments();
    let pre_version = router.doc_version(&victim).expect("version");

    let handle = router.begin_move(
        &victim,
        target,
        MoveOpts {
            settle: Duration::from_secs(30),
        },
    );
    std::thread::sleep(Duration::from_millis(50));
    handle.cancel();
    let err = handle.join().expect_err("cancel must abort the move");
    assert!(err.to_string().contains("cancelled"), "got: {err}");

    assert_eq!(router.assignments(), pre_routes, "routes untouched");
    assert_eq!(
        dir_bytes(&leader_dir),
        pre_wal,
        "source WAL byte-identical after cancel"
    );
    assert_eq!(router.doc_version(&victim), Some(pre_version));
    assert_eq!(router.shard_of(&victim), home);
    env.call(&stub, "bump", &[]).expect("post-cancel call");
    assert_eq!(router.field_value(&victim, "n"), Some(5));

    router.shutdown();
    let _ = std::fs::remove_dir_all(&wal_root);
}

/// A rolling restart bounces every shard to a fresh generation with
/// zero failed calls: classes drain to neighbor shards, the empty
/// shard restarts, and the displaced classes move home — instance
/// state surviving *two* migrations per class.
#[test]
fn rolling_restart_bumps_every_generation_and_loses_nothing() {
    const SHARDS: usize = 3;
    let wal_root = temp_root("rb-roll");
    let cfg = RouterConfig::new(SHARDS, TransportKind::Mem, &wal_root, "rb-roll");
    let classes = pick_classes(SHARDS, cfg.vnodes, "RbRoll");
    let specs = classes
        .iter()
        .map(|(name, _)| ClassSpec::soap(name.clone(), counter_source(name)))
        .collect();
    let router = Router::start(cfg, specs).expect("router start");
    assert!(router.wait_converged(Duration::from_secs(10)));

    let env = resilient_env(29);
    let stubs: Vec<(String, std::sync::Arc<live_rmi::cde::DynamicStub>)> = classes
        .iter()
        .map(|(name, _)| {
            let stub = env.connect_soap(&router.wsdl_url(name)).expect("stub");
            (name.clone(), stub)
        })
        .collect();
    for (_, stub) in &stubs {
        for _ in 0..3 {
            env.call(stub, "bump", &[]).expect("pre-restart call");
        }
    }

    let events = router.rolling_restart().expect("rolling restart");
    assert!(
        events.len() >= classes.len() * 2,
        "every class moves away and back: {} events",
        events.len()
    );
    for status in router.status() {
        assert!(status.alive);
        assert_eq!(
            status.generation, 1,
            "shard {} must be on a fresh generation",
            status.id
        );
    }
    // Every class is back at its ring home, with its state intact
    // after two migrations.
    for (name, home) in &classes {
        assert_eq!(router.shard_of(name), *home, "{name} back home");
        assert_eq!(router.field_value(name, "n"), Some(3), "{name} state kept");
    }
    // And the restarted fleet still serves.
    for (_, stub) in &stubs {
        env.call(stub, "bump", &[]).expect("post-restart call");
    }

    router.shutdown();
    let _ = std::fs::remove_dir_all(&wal_root);
}
