//! Failure injection at the wire level: malformed HTTP, malformed SOAP,
//! corrupt GIOP frames, truncated messages and abrupt disconnects must
//! produce the paper's fault responses (or clean connection closure) and
//! must never wedge the server — subsequent well-formed calls succeed.
//!
//! The second half drives the programmable chaos layer
//! ([`httpd::FaultPlan`]) against the resilient client
//! ([`cde::ResiliencePolicy`]): seeded mixed faults, blackholes,
//! breaker trip/recovery, and `Retry-After` honoring.

use std::io::{Read, Write};
use std::time::{Duration, Instant};

use httpd::transport::connect;
use jpie::expr::Expr;
use jpie::{ClassHandle, MethodBuilder, TypeDesc, Value};
use live_rmi::cde::ClientEnvironment;
use live_rmi::sde::{PublicationStrategy, SdeConfig, SdeManager, SdeServerGateway, TransportKind};

/// The fault injector is process-global: tests that install plans take
/// this guard so they cannot clobber each other's rules.
fn injector_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

fn manager() -> SdeManager {
    SdeManager::new(SdeConfig {
        transport: TransportKind::Mem,
        strategy: PublicationStrategy::StableTimeout(Duration::from_millis(10)),
        wal_dir: None,
    })
    .expect("manager")
}

fn echo_class() -> ClassHandle {
    let class = ClassHandle::new("Robust");
    class
        .add_method(
            MethodBuilder::new("echo", TypeDesc::Str)
                .param("s", TypeDesc::Str)
                .distributed(true)
                .body_expr(Expr::param("s")),
        )
        .expect("echo");
    class
}

/// Utility: assert a healthy call still works through the full stack.
fn assert_soap_alive(env: &ClientEnvironment, stub: &std::sync::Arc<cde::DynamicStub>) {
    let v = env
        .call(stub, "echo", &[Value::Str("still alive".into())])
        .expect("healthy call after injection");
    assert_eq!(v, Value::Str("still alive".into()));
}

#[test]
fn soap_endpoint_survives_http_garbage() {
    let manager = manager();
    let server = manager.deploy_soap(echo_class()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();
    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");

    let endpoint = server.endpoint_url();
    let authority = endpoint
        .rsplit_once('/')
        .map(|(a, _)| a.to_string())
        .unwrap_or(endpoint.clone());

    for garbage in [
        &b"\x00\x01\x02\x03 total nonsense\r\n\r\n"[..],
        &b"BREW /coffee HTCPCP/1.0\r\n\r\n"[..],
        &b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"[..],
        &b"GET"[..], // truncated request line then close
    ] {
        let mut conn = connect(&authority).expect("connect");
        let _ = conn.write_all(garbage);
        conn.shutdown();
    }
    assert_soap_alive(&env, &stub);
    manager.shutdown();
}

#[test]
fn soap_endpoint_answers_malformed_soap_fault() {
    let manager = manager();
    let server = manager.deploy_soap(echo_class()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();

    // Well-formed HTTP, broken SOAP payloads (§5.1.3 "Malformed SOAP
    // Request" path).
    for payload in [
        "not xml at all",
        "<unclosed>",
        "<notsoap/>",
        "<soapenv:Envelope><soapenv:Body/></soapenv:Envelope>", // empty body
        "<soapenv:Envelope><soapenv:Body><m><arg>no type</arg></m></soapenv:Body></soapenv:Envelope>",
    ] {
        let resp = httpd::HttpClient::new()
            .post(&server.endpoint_url(), payload.as_bytes().to_vec(), "text/xml")
            .expect("http ok");
        assert_eq!(resp.status(), 500, "{payload}");
        match soap::decode_response(&resp.body_str()).expect("fault envelope") {
            soap::SoapResponse::Fault(f) => {
                assert_eq!(f.fault_string, "Malformed SOAP Request", "{payload}")
            }
            other => panic!("expected fault for {payload}: {other:?}"),
        }
    }

    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");
    assert_soap_alive(&env, &stub);
    manager.shutdown();
}

#[test]
fn orb_survives_giop_garbage() {
    let manager = manager();
    let server = manager.deploy_corba(echo_class()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().force_publish();
    server.publisher().ensure_current();
    let ior = server.ior();

    // 1. Non-GIOP bytes.
    {
        let mut conn = connect(&ior.address).expect("connect");
        let _ = conn.write_all(b"GET / HTTP/1.1\r\n\r\n");
        // Server should drop the connection (bad magic): read yields EOF.
        let mut buf = [0u8; 16];
        conn.set_read_timeout(Some(Duration::from_millis(200))).ok();
        let n = conn.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "connection closed on bad magic");
    }

    // 2. Valid header claiming a huge body.
    {
        let mut frame = b"GIOP".to_vec();
        frame.extend_from_slice(&[1, 0, 0, 0]);
        frame.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut conn = connect(&ior.address).expect("connect");
        let _ = conn.write_all(&frame);
        let mut buf = [0u8; 16];
        conn.set_read_timeout(Some(Duration::from_millis(200))).ok();
        let n = conn.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "connection closed on hostile size");
    }

    // 3. Truncated request: header promising more bytes than sent, then
    //    disconnect.
    {
        let mut frame = b"GIOP".to_vec();
        frame.extend_from_slice(&[1, 0, 0, 0]);
        frame.extend_from_slice(&64u32.to_be_bytes());
        frame.extend_from_slice(&[0u8; 10]); // only 10 of 64 bytes
        let mut conn = connect(&ior.address).expect("connect");
        let _ = conn.write_all(&frame);
        conn.shutdown();
    }

    // 4. Malformed body (valid frame, garbage CDR): the server answers
    //    with a MARSHAL system exception rather than dying.
    {
        let body = vec![0xFFu8; 16];
        let mut frame = b"GIOP".to_vec();
        frame.extend_from_slice(&[1, 0, 0, 0]); // big-endian, Request
        frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
        frame.extend_from_slice(&body);
        let mut conn = connect(&ior.address).expect("connect");
        conn.write_all(&frame).expect("write");
        let mut reader = conn;
        let reply = corba::giop::read_message(&mut reader)
            .expect("reply readable")
            .expect("reply present");
        assert_eq!(reply.0, corba::giop::MsgType::Reply);
        let decoded = corba::giop::decode_reply(&reply.1, reply.2).expect("decode");
        assert!(matches!(
            decoded.body,
            corba::giop::ReplyBody::SystemException { .. }
        ));
    }

    // Server is still healthy.
    let env = ClientEnvironment::new();
    let stub = env
        .connect_corba(server.idl_url(), server.ior_url())
        .expect("stub");
    let v = env
        .call(&stub, "echo", &[Value::Str("post-chaos".into())])
        .expect("healthy call");
    assert_eq!(v, Value::Str("post-chaos".into()));
    manager.shutdown();
}

#[test]
fn client_surfaces_transport_failure_cleanly() {
    let manager = manager();
    let server = manager.deploy_soap(echo_class()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();
    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");
    assert_soap_alive(&env, &stub);

    // Kill the whole deployment; the client gets a transport/interface
    // error, not a panic or a hang.
    manager.shutdown();
    let err = env
        .call(&stub, "echo", &[Value::Str("x".into())])
        .expect_err("server gone");
    assert!(matches!(
        err,
        cde::CallError::Transport(_) | cde::CallError::Interface(_)
    ));
}

#[test]
fn watcher_survives_interface_fetch_failures() {
    // The CDE interface watcher must tolerate transient failures of the
    // Interface Server and pick up changes once it is reachable again.
    let manager = manager();
    let server = manager.deploy_soap(echo_class()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();

    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");
    let watcher = env.watch(stub.clone(), Duration::from_millis(5), None);

    // Retract the WSDL: every poll now fails (404), which must not kill
    // the watcher thread.
    manager.store().retract("/Robust.wsdl");
    std::thread::sleep(Duration::from_millis(40));

    // Republish with a change: the watcher must report it.
    server
        .class()
        .add_method(MethodBuilder::new("extra", TypeDesc::Void).distributed(true))
        .expect("edit");
    server.publisher().ensure_current();
    let version = watcher
        .wait_for_update(Duration::from_secs(5))
        .expect("watcher recovered and saw the change");
    assert_eq!(version, server.class().interface_version());
    watcher.stop();
    manager.shutdown();
}

/// The PR's acceptance criterion: under a seeded fault plan injecting
/// ~20% mixed faults on the SOAP endpoint, the resilience-enabled
/// client completes 100% of its idempotent calls within the deadline
/// budget — and the new metrics are visible on `/metrics`.
#[test]
fn resilient_client_completes_all_calls_under_mixed_faults() {
    let _guard = injector_guard();
    let manager = manager();
    let server = manager.deploy_soap(echo_class()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();

    let policy = cde::ResiliencePolicy::seeded(7)
        .with_request_timeout(Duration::from_millis(250))
        .with_max_attempts(6)
        .with_breaker(8, Duration::from_millis(500));
    let env = ClientEnvironment::with_policy(policy);
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");
    let authority = stub.authority();

    // ~20% aggregate incidence, all six client-visible shapes: refused
    // connects, slow connects, truncated responses, corrupted status
    // lines, mid-request disconnects.
    httpd::FaultPlan::seeded(2024)
        .rule(httpd::FaultRule::refuse(&authority, 0.08))
        .rule(httpd::FaultRule::delay(
            &authority,
            0.04,
            Duration::from_millis(1),
            Duration::from_millis(1),
        ))
        .rule(httpd::FaultRule::truncate(&authority, 0.03, 40))
        .rule(httpd::FaultRule::corrupt(&authority, 0.03, 2))
        .rule(httpd::FaultRule::disconnect(&authority, 0.03, 10))
        .install();

    let deadline_budget = env.policy().deadline;
    for i in 0..50 {
        let started = Instant::now();
        let v = env
            .call_idempotent(&stub, "echo", &[Value::Str(format!("msg-{i}"))])
            .unwrap_or_else(|e| panic!("call {i} failed under chaos: {e}"));
        assert_eq!(v, Value::Str(format!("msg-{i}")));
        assert!(
            started.elapsed() < deadline_budget,
            "call {i} blew its budget"
        );
    }
    httpd::fault::clear();

    // The chaos actually bit, and every new series is on /metrics.
    let metrics_base = server
        .endpoint_url()
        .trim_end_matches("/Robust")
        .to_string();
    let text = httpd::HttpClient::new()
        .get(&format!("{metrics_base}/metrics"))
        .expect("GET /metrics")
        .body_str()
        .to_string();
    assert!(
        text.contains("faults_injected_total{"),
        "no faults fired:\n{text}"
    );
    assert!(text.contains("rmi_retries_total"), "{text}");
    assert!(text.contains("rmi_deadline_exceeded_total"), "{text}");
    assert!(text.contains("breaker_state{"), "{text}");
    manager.shutdown();
}

/// Satellite bugfix: a server that accepts and never responds must
/// surface as a timeout, not block the client forever.
#[test]
fn blackholed_endpoint_times_out_instead_of_hanging() {
    let _guard = injector_guard();
    let manager = manager();
    let server = manager.deploy_soap(echo_class()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();

    let policy = cde::ResiliencePolicy::seeded(3)
        .with_request_timeout(Duration::from_millis(120))
        .with_max_attempts(2);
    let env = ClientEnvironment::with_policy(policy);
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");

    httpd::FaultPlan::seeded(1)
        .rule(httpd::FaultRule::blackhole(&stub.authority(), 1.0))
        .install();
    let started = Instant::now();
    let err = env
        .call_idempotent(&stub, "echo", &[Value::Str("void".into())])
        .expect_err("blackholed");
    httpd::fault::clear();
    assert!(
        matches!(&err, cde::CallError::Transport(m) if m.contains("timed out")),
        "{err}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "timed out promptly, not wedged"
    );

    // With the chaos gone the same stub works again.
    assert_soap_alive(&env, &stub);
    manager.shutdown();
}

/// The circuit breaker trips after the configured number of consecutive
/// transport failures, fails fast while open, and recovers through a
/// half-open probe once the endpoint is healthy again.
#[test]
fn breaker_trips_and_recovers_deterministically() {
    let _guard = injector_guard();
    let manager = manager();
    let server = manager.deploy_soap(echo_class()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();

    let policy = cde::ResiliencePolicy::seeded(11)
        .with_max_attempts(1)
        .with_breaker(3, Duration::from_millis(200));
    let env = ClientEnvironment::with_policy(policy);
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");
    let authority = stub.authority();
    let breaker = cde::breaker_for(&authority, env.policy());

    httpd::FaultPlan::seeded(5)
        .rule(httpd::FaultRule::refuse(&authority, 1.0))
        .install();

    // Three consecutive transport failures trip the breaker...
    for i in 0..3 {
        let err = env
            .call_idempotent(&stub, "echo", &[Value::Str("x".into())])
            .expect_err("refused");
        assert!(
            matches!(err, cde::CallError::Transport(_)),
            "call {i}: {err}"
        );
    }
    assert_eq!(breaker.state(), cde::BreakerState::Open);

    // ...after which calls fail fast without touching the network.
    let before = obs::registry().snapshot().counter(&obs::metrics::key(
        "faults_injected_total",
        &[("kind", "refuse")],
    ));
    let err = env
        .call(&stub, "echo", &[Value::Str("x".into())])
        .expect_err("open breaker");
    assert!(matches!(err, cde::CallError::CircuitOpen { .. }), "{err}");
    assert_eq!(
        obs::registry().snapshot().counter(&obs::metrics::key(
            "faults_injected_total",
            &[("kind", "refuse")]
        )),
        before,
        "fail-fast call must not reach the transport"
    );

    // Heal the endpoint, wait out the cooldown: the half-open probe
    // succeeds and closes the breaker.
    httpd::fault::clear();
    std::thread::sleep(Duration::from_millis(250));
    let v = env
        .call(&stub, "echo", &[Value::Str("back".into())])
        .expect("half-open probe");
    assert_eq!(v, Value::Str("back".into()));
    assert_eq!(breaker.state(), cde::BreakerState::Closed);
    manager.shutdown();
}

/// Satellite bugfix: a 503 shed by the HTTP layer is retried — even for
/// non-idempotent calls — and the server's `Retry-After` hint overrides
/// the default backoff schedule.
#[test]
fn overloaded_call_waits_for_retry_after_hint() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let class = echo_class();
    let endpoint = "mem://shed-call-test";
    let wsdl = soap::WsdlDocument::from_signatures(
        "Robust",
        format!("{endpoint}/Robust"),
        &class.distributed_signatures(),
        1,
    )
    .to_xml();
    let hits = Arc::new(AtomicU64::new(0));
    let server_hits = hits.clone();
    let http = httpd::HttpServer::bind(endpoint, move |req: &httpd::Request| {
        if req.path().ends_with(".wsdl") {
            return httpd::Response::ok(wsdl.clone().into_bytes(), "text/xml");
        }
        if server_hits.fetch_add(1, Ordering::SeqCst) == 0 {
            // First call: shed with an explicit hint.
            return httpd::Response::unavailable("busy", Duration::from_millis(40));
        }
        let body = soap::SoapResponse::encode_ok("echo", "urn:Robust", &Value::Str("pong".into()));
        httpd::Response::ok(body.into_bytes(), "text/xml")
    })
    .expect("bind");

    let env = ClientEnvironment::new();
    let stub = env
        .connect_soap(&format!("{endpoint}/Robust.wsdl"))
        .expect("stub");
    let started = Instant::now();
    let v = env
        .call(&stub, "echo", &[Value::Str("ignored".into())])
        .expect("retried after shed");
    assert_eq!(v, Value::Str("pong".into()));
    assert_eq!(hits.load(Ordering::SeqCst), 2, "one shed + one retry");
    assert!(
        started.elapsed() >= Duration::from_millis(35),
        "the Retry-After hint paced the retry ({:?})",
        started.elapsed()
    );
    http.shutdown();
}

#[test]
fn interface_server_survives_garbage_requests() {
    let manager = manager();
    let server = manager.deploy_soap(echo_class()).expect("deploy");
    server.publisher().ensure_current();

    let base = manager.interface_server().base_url();
    for garbage in [&b"\x01\x02\x03"[..], &b"OPTIONS * HTTP/9.9\r\n\r\n"[..]] {
        let mut conn = connect(&base).expect("connect");
        let _ = conn.write_all(garbage);
        conn.shutdown();
    }
    // Still serving documents.
    let resp = httpd::HttpClient::new()
        .get(server.wsdl_url())
        .expect("wsdl fetch");
    assert_eq!(resp.status(), 200);
    manager.shutdown();
}
