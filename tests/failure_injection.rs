//! Failure injection at the wire level: malformed HTTP, malformed SOAP,
//! corrupt GIOP frames, truncated messages and abrupt disconnects must
//! produce the paper's fault responses (or clean connection closure) and
//! must never wedge the server — subsequent well-formed calls succeed.

use std::io::{Read, Write};
use std::time::Duration;

use httpd::transport::connect;
use jpie::expr::Expr;
use jpie::{ClassHandle, MethodBuilder, TypeDesc, Value};
use live_rmi::cde::ClientEnvironment;
use live_rmi::sde::{PublicationStrategy, SdeConfig, SdeManager, SdeServerGateway, TransportKind};

fn manager() -> SdeManager {
    SdeManager::new(SdeConfig {
        transport: TransportKind::Mem,
        strategy: PublicationStrategy::StableTimeout(Duration::from_millis(10)),
    })
    .expect("manager")
}

fn echo_class() -> ClassHandle {
    let class = ClassHandle::new("Robust");
    class
        .add_method(
            MethodBuilder::new("echo", TypeDesc::Str)
                .param("s", TypeDesc::Str)
                .distributed(true)
                .body_expr(Expr::param("s")),
        )
        .expect("echo");
    class
}

/// Utility: assert a healthy call still works through the full stack.
fn assert_soap_alive(env: &ClientEnvironment, stub: &std::sync::Arc<cde::DynamicStub>) {
    let v = env
        .call(stub, "echo", &[Value::Str("still alive".into())])
        .expect("healthy call after injection");
    assert_eq!(v, Value::Str("still alive".into()));
}

#[test]
fn soap_endpoint_survives_http_garbage() {
    let manager = manager();
    let server = manager.deploy_soap(echo_class()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();
    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");

    let endpoint = server.endpoint_url();
    let authority = endpoint
        .rsplit_once('/')
        .map(|(a, _)| a.to_string())
        .unwrap_or(endpoint.clone());

    for garbage in [
        &b"\x00\x01\x02\x03 total nonsense\r\n\r\n"[..],
        &b"BREW /coffee HTCPCP/1.0\r\n\r\n"[..],
        &b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"[..],
        &b"GET"[..], // truncated request line then close
    ] {
        let mut conn = connect(&authority).expect("connect");
        let _ = conn.write_all(garbage);
        conn.shutdown();
    }
    assert_soap_alive(&env, &stub);
    manager.shutdown();
}

#[test]
fn soap_endpoint_answers_malformed_soap_fault() {
    let manager = manager();
    let server = manager.deploy_soap(echo_class()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();

    // Well-formed HTTP, broken SOAP payloads (§5.1.3 "Malformed SOAP
    // Request" path).
    for payload in [
        "not xml at all",
        "<unclosed>",
        "<notsoap/>",
        "<soapenv:Envelope><soapenv:Body/></soapenv:Envelope>", // empty body
        "<soapenv:Envelope><soapenv:Body><m><arg>no type</arg></m></soapenv:Body></soapenv:Envelope>",
    ] {
        let resp = httpd::HttpClient::new()
            .post(&server.endpoint_url(), payload.as_bytes().to_vec(), "text/xml")
            .expect("http ok");
        assert_eq!(resp.status(), 500, "{payload}");
        match soap::decode_response(&resp.body_str()).expect("fault envelope") {
            soap::SoapResponse::Fault(f) => {
                assert_eq!(f.fault_string, "Malformed SOAP Request", "{payload}")
            }
            other => panic!("expected fault for {payload}: {other:?}"),
        }
    }

    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");
    assert_soap_alive(&env, &stub);
    manager.shutdown();
}

#[test]
fn orb_survives_giop_garbage() {
    let manager = manager();
    let server = manager.deploy_corba(echo_class()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().force_publish();
    server.publisher().ensure_current();
    let ior = server.ior();

    // 1. Non-GIOP bytes.
    {
        let mut conn = connect(&ior.address).expect("connect");
        let _ = conn.write_all(b"GET / HTTP/1.1\r\n\r\n");
        // Server should drop the connection (bad magic): read yields EOF.
        let mut buf = [0u8; 16];
        conn.set_read_timeout(Some(Duration::from_millis(200))).ok();
        let n = conn.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "connection closed on bad magic");
    }

    // 2. Valid header claiming a huge body.
    {
        let mut frame = b"GIOP".to_vec();
        frame.extend_from_slice(&[1, 0, 0, 0]);
        frame.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut conn = connect(&ior.address).expect("connect");
        let _ = conn.write_all(&frame);
        let mut buf = [0u8; 16];
        conn.set_read_timeout(Some(Duration::from_millis(200))).ok();
        let n = conn.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "connection closed on hostile size");
    }

    // 3. Truncated request: header promising more bytes than sent, then
    //    disconnect.
    {
        let mut frame = b"GIOP".to_vec();
        frame.extend_from_slice(&[1, 0, 0, 0]);
        frame.extend_from_slice(&64u32.to_be_bytes());
        frame.extend_from_slice(&[0u8; 10]); // only 10 of 64 bytes
        let mut conn = connect(&ior.address).expect("connect");
        let _ = conn.write_all(&frame);
        conn.shutdown();
    }

    // 4. Malformed body (valid frame, garbage CDR): the server answers
    //    with a MARSHAL system exception rather than dying.
    {
        let body = vec![0xFFu8; 16];
        let mut frame = b"GIOP".to_vec();
        frame.extend_from_slice(&[1, 0, 0, 0]); // big-endian, Request
        frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
        frame.extend_from_slice(&body);
        let mut conn = connect(&ior.address).expect("connect");
        conn.write_all(&frame).expect("write");
        let mut reader = conn;
        let reply = corba::giop::read_message(&mut reader)
            .expect("reply readable")
            .expect("reply present");
        assert_eq!(reply.0, corba::giop::MsgType::Reply);
        let decoded = corba::giop::decode_reply(&reply.1, reply.2).expect("decode");
        assert!(matches!(
            decoded.body,
            corba::giop::ReplyBody::SystemException { .. }
        ));
    }

    // Server is still healthy.
    let env = ClientEnvironment::new();
    let stub = env
        .connect_corba(server.idl_url(), server.ior_url())
        .expect("stub");
    let v = env
        .call(&stub, "echo", &[Value::Str("post-chaos".into())])
        .expect("healthy call");
    assert_eq!(v, Value::Str("post-chaos".into()));
    manager.shutdown();
}

#[test]
fn client_surfaces_transport_failure_cleanly() {
    let manager = manager();
    let server = manager.deploy_soap(echo_class()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();
    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");
    assert_soap_alive(&env, &stub);

    // Kill the whole deployment; the client gets a transport/interface
    // error, not a panic or a hang.
    manager.shutdown();
    let err = env
        .call(&stub, "echo", &[Value::Str("x".into())])
        .expect_err("server gone");
    assert!(matches!(
        err,
        cde::CallError::Transport(_) | cde::CallError::Interface(_)
    ));
}

#[test]
fn watcher_survives_interface_fetch_failures() {
    // The CDE interface watcher must tolerate transient failures of the
    // Interface Server and pick up changes once it is reachable again.
    let manager = manager();
    let server = manager.deploy_soap(echo_class()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();

    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");
    let watcher = env.watch(stub.clone(), Duration::from_millis(5), None);

    // Retract the WSDL: every poll now fails (404), which must not kill
    // the watcher thread.
    manager.store().retract("/Robust.wsdl");
    std::thread::sleep(Duration::from_millis(40));

    // Republish with a change: the watcher must report it.
    server
        .class()
        .add_method(MethodBuilder::new("extra", TypeDesc::Void).distributed(true))
        .expect("edit");
    server.publisher().ensure_current();
    let version = watcher
        .wait_for_update(Duration::from_secs(5))
        .expect("watcher recovered and saw the change");
    assert_eq!(version, server.class().interface_version());
    watcher.stop();
    manager.shutdown();
}

#[test]
fn interface_server_survives_garbage_requests() {
    let manager = manager();
    let server = manager.deploy_soap(echo_class()).expect("deploy");
    server.publisher().ensure_current();

    let base = manager.interface_server().base_url();
    for garbage in [&b"\x01\x02\x03"[..], &b"OPTIONS * HTTP/9.9\r\n\r\n"[..]] {
        let mut conn = connect(&base).expect("connect");
        let _ = conn.write_all(garbage);
        conn.shutdown();
    }
    // Still serving documents.
    let resp = httpd::HttpClient::new()
        .get(server.wsdl_url())
        .expect("wsdl fetch");
    assert_eq!(resp.status(), 200);
    manager.shutdown();
}
