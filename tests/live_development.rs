//! Live, simultaneous client-server development scenarios (paper §6):
//! signature changes under a connected client, the debugger's try-again,
//! undo/redo at the middleware level, bound stub classes, and the SDE
//! Manager Interface operations of §4.

use std::time::Duration;

use jpie::expr::Expr;
use jpie::{ClassHandle, MethodBuilder, TypeDesc, Value};
use live_rmi::cde::{CallError, ClientEnvironment};
use live_rmi::sde::{
    PublicationStrategy, SdeConfig, SdeManager, SdeServerGateway, Technology, TransportKind,
};

fn manager() -> SdeManager {
    SdeManager::new(SdeConfig {
        transport: TransportKind::Mem,
        strategy: PublicationStrategy::StableTimeout(Duration::from_millis(10)),
        wal_dir: None,
    })
    .expect("manager")
}

fn calc() -> ClassHandle {
    let class = ClassHandle::new("Calc");
    class
        .add_method(
            MethodBuilder::new("add", TypeDesc::Int)
                .param("a", TypeDesc::Int)
                .param("b", TypeDesc::Int)
                .distributed(true)
                .body_expr(Expr::param("a") + Expr::param("b")),
        )
        .expect("add");
    class
}

#[test]
fn rename_surfaces_in_debugger_with_updated_interface() {
    let manager = manager();
    let class = calc();
    let server = manager.deploy_soap(class.clone()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();

    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");
    env.call(&stub, "add", &[Value::Int(1), Value::Int(1)])
        .expect("works before rename");

    let add = class.find_method("add").expect("add");
    class.rename_method(add, "sum").expect("rename");

    let err = env
        .call(&stub, "add", &[Value::Int(1), Value::Int(1)])
        .expect_err("stale after rename");
    assert!(matches!(err, CallError::StaleMethod { .. }));

    // §6: the change is visible when the developer inspects the error.
    assert!(stub.operation("sum").is_some());
    assert!(stub.operation("add").is_none());
    let entry = env.debugger().latest().expect("debugger entry");
    assert_eq!(entry.method, "add");
    assert_eq!(entry.message, "Non existent Method");
    manager.shutdown();
}

#[test]
fn try_again_succeeds_after_server_restores_signature() {
    // The paper's §6 tail case: the server developer changes the method
    // back during the forced publication; the client may see no signature
    // difference and uses try-again to resume.
    let manager = manager();
    let class = calc();
    let server = manager.deploy_soap(class.clone()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();

    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");

    let add = class.find_method("add").expect("add");
    class.rename_method(add, "sum").expect("rename");
    let err = env
        .call(&stub, "add", &[Value::Int(20), Value::Int(22)])
        .expect_err("stale");
    assert!(matches!(err, CallError::StaleMethod { .. }));

    // Server developer undoes the rename (method is `add` again).
    class.undo().expect("undo");
    server.publisher().ensure_current();

    // Try again re-executes the original failed call.
    let v = env.debugger().try_again(0).expect("retry");
    assert_eq!(v, Value::Int(42));
    manager.shutdown();
}

#[test]
fn parameter_addition_invalidates_old_call_shape() {
    let manager = manager();
    let class = calc();
    let server = manager.deploy_soap(class.clone()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();

    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");

    let add = class.find_method("add").expect("add");
    class.add_param(add, "c", TypeDesc::Int).expect("add param");
    class
        .set_body_expr(add, Expr::param("a") + Expr::param("b") + Expr::param("c"))
        .expect("new body");

    // Old 2-argument call: stale.
    let err = env
        .call(&stub, "add", &[Value::Int(1), Value::Int(2)])
        .expect_err("old arity is stale");
    assert!(matches!(err, CallError::StaleMethod { .. }));

    // The refreshed view shows three parameters; the corrected call works.
    let op = stub.operation("add").expect("add still present");
    assert_eq!(op.params.len(), 3);
    let v = env
        .call(&stub, "add", &[Value::Int(1), Value::Int(2), Value::Int(3)])
        .expect("new arity works");
    assert_eq!(v, Value::Int(6));
    manager.shutdown();
}

#[test]
fn bound_stub_class_mirrors_interface_changes() {
    let manager = manager();
    let class = calc();
    let server = manager.deploy_soap(class.clone()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();

    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");

    // CDE materializes the remote interface as a local dynamic class.
    let local = env.bind_to_class(&stub);
    assert!(local.find_method("add").is_some());

    // Calls through the local class go over the wire.
    let instance = local.instantiate().expect("local instance");
    let v = instance
        .invoke("add", &[Value::Int(3), Value::Int(4)])
        .expect("forwarded call");
    assert_eq!(v, Value::Int(7));

    // The server grows an operation and loses another; syncing the bound
    // class automates "addition, mutation, and deletion of dynamic server
    // methods within dynamic clients".
    class
        .add_method(
            MethodBuilder::new("neg", TypeDesc::Int)
                .param("x", TypeDesc::Int)
                .distributed(true)
                .body_expr(-Expr::param("x")),
        )
        .expect("neg");
    let add = class.find_method("add").expect("add");
    class.remove_method(add).expect("remove add");
    server.publisher().ensure_current();
    stub.refresh().expect("refresh");

    let (added, removed, mutated) = env.sync_bound_class(&local, &stub);
    assert_eq!((added, removed, mutated), (1, 1, 0));
    assert!(local.find_method("add").is_none());
    let v = instance.invoke("neg", &[Value::Int(9)]).expect("neg call");
    assert_eq!(v, Value::Int(-9));
    manager.shutdown();
}

#[test]
fn bound_class_sync_replaces_mutated_signatures() {
    let manager = manager();
    let class = calc();
    let server = manager.deploy_soap(class.clone()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();

    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");
    let local = env.bind_to_class(&stub);
    assert_eq!(
        local
            .signature(local.find_method("add").unwrap())
            .unwrap()
            .params
            .len(),
        2
    );

    // The server's signature mutates (third parameter).
    let add = class.find_method("add").expect("add");
    class.add_param(add, "c", TypeDesc::Int).expect("param");
    class
        .set_body_expr(add, Expr::param("a") + Expr::param("b") + Expr::param("c"))
        .expect("body");
    server.publisher().ensure_current();
    stub.refresh().expect("refresh");

    let (added, removed, mutated) = env.sync_bound_class(&local, &stub);
    assert_eq!((added, removed, mutated), (0, 0, 1));
    let sig = local.signature(local.find_method("add").unwrap()).unwrap();
    assert_eq!(sig.params.len(), 3);

    // The replaced forwarding method calls through with the new shape.
    let instance = local.instantiate().expect("instance");
    assert_eq!(
        instance
            .invoke("add", &[Value::Int(1), Value::Int(2), Value::Int(3)])
            .expect("call"),
        Value::Int(6)
    );
    manager.shutdown();
}

#[test]
fn manager_interface_operations() {
    // §4: the SDE Manager Interface lets the user view documents, tune
    // the timeout, and force publication.
    let manager = manager();
    let class = calc();
    let server = manager.deploy_soap(class.clone()).expect("deploy");
    assert_eq!(manager.managed(), vec![("Calc".into(), Technology::Soap)]);

    let wsdl = manager.interface_document("Calc").expect("viewable");
    assert!(wsdl.contains("wsdl:definitions"));
    assert!(manager.interface_document("Nope").is_none());

    manager
        .set_timeout("Calc", Duration::from_millis(1))
        .expect("set timeout");
    assert!(manager
        .set_timeout("Nope", Duration::from_millis(1))
        .is_err());

    class
        .add_method(MethodBuilder::new("extra", TypeDesc::Void).distributed(true))
        .expect("edit");
    manager.force_publish("Calc").expect("force");
    server.publisher().ensure_current();
    assert!(manager
        .interface_document("Calc")
        .expect("updated")
        .contains("extra"));

    manager.undeploy("Calc").expect("undeploy");
    assert!(manager.interface_document("Calc").is_none());
    assert!(manager.undeploy("Calc").is_err());
    manager.shutdown();
}

#[test]
fn registry_triggers_automatic_deployment() {
    use std::sync::Arc;
    // §5.1.1/§5.2.1: extending a gateway class and loading it is all the
    // developer does; SDE detects it and deploys automatically.
    let manager = Arc::new(manager());
    let registry = jpie::ClassRegistry::new();
    let _watcher = manager.attach_registry(&registry);

    let soap_class = ClassHandle::with_superclass("AutoSoap", "SOAPServer");
    soap_class
        .add_method(
            MethodBuilder::new("ping", TypeDesc::Bool)
                .distributed(true)
                .body_expr(Expr::lit(true)),
        )
        .expect("ping");
    registry.register(soap_class).expect("load");

    let corba_class = ClassHandle::with_superclass("AutoCorba", "CORBAServer");
    registry.register(corba_class).expect("load");

    // Unrelated classes are ignored.
    registry
        .register(ClassHandle::with_superclass("NotAServer", "Object"))
        .expect("load");
    registry.register(ClassHandle::new("Plain")).expect("load");

    // The watcher thread deploys asynchronously; wait briefly.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while manager.managed().len() < 2 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut managed = manager.managed();
    managed.sort();
    assert_eq!(
        managed,
        vec![
            ("AutoCorba".to_string(), Technology::Corba),
            ("AutoSoap".to_string(), Technology::Soap),
        ]
    );
    // The minimal documents were published as part of auto-deployment.
    assert!(manager.store().get("/AutoSoap.wsdl").is_some());
    assert!(manager.store().get("/AutoCorba.idl").is_some());
    assert!(manager.store().get("/AutoCorba.ior").is_some());

    // The auto-deployed SOAP server works end to end.
    let server = manager.soap_server("AutoSoap").expect("deployed");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();
    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");
    assert_eq!(
        env.call(&stub, "ping", &[]).expect("call"),
        Value::Bool(true)
    );
    manager.shutdown();
}

#[test]
fn duplicate_deployment_rejected() {
    let manager = manager();
    manager.deploy_soap(calc()).expect("first");
    let second = ClassHandle::new("Calc");
    assert!(manager.deploy_soap(second.clone()).is_err());
    assert!(manager.deploy_corba(second).is_err());
    manager.shutdown();
}

#[test]
fn technology_interchange_preserves_state() {
    let manager = manager();
    let class = ClassHandle::new("Counter");
    class.add_field("n", TypeDesc::Int).expect("field");
    class
        .add_method(
            MethodBuilder::new("bump", TypeDesc::Int)
                .distributed(true)
                .body_block(vec![
                    jpie::expr::Stmt::SetField("n".into(), Expr::field("n") + Expr::lit(1)),
                    jpie::expr::Stmt::Return(Some(Expr::field("n"))),
                ]),
        )
        .expect("bump");
    let soap = manager.deploy_soap(class).expect("deploy");
    soap.create_instance().expect("instance");
    soap.publisher().ensure_current();

    let env = ClientEnvironment::new();
    let stub = env.connect_soap(soap.wsdl_url()).expect("stub");
    assert_eq!(env.call(&stub, "bump", &[]).expect("1"), Value::Int(1));
    assert_eq!(env.call(&stub, "bump", &[]).expect("2"), Value::Int(2));

    // Live switch to CORBA: the same instance keeps counting.
    assert_eq!(
        manager.switch_technology("Counter").expect("switch"),
        Technology::Corba
    );
    let corba = manager.corba_server("Counter").expect("corba side");
    corba.publisher().force_publish();
    corba.publisher().ensure_current();
    let corba_stub = env
        .connect_corba(corba.idl_url(), corba.ior_url())
        .expect("corba stub");
    assert_eq!(
        env.call(&corba_stub, "bump", &[]).expect("3"),
        Value::Int(3)
    );

    // The old SOAP document was retracted.
    assert!(manager.store().get("/Counter.wsdl").is_none());
    assert!(manager.store().get("/Counter.idl").is_some());
    manager.shutdown();
}

#[test]
fn interface_watcher_propagates_changes_between_calls() {
    let manager = manager();
    let class = calc();
    let server = manager.deploy_soap(class.clone()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();

    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");
    let local = env.bind_to_class(&stub);
    let watcher = env.watch(stub.clone(), Duration::from_millis(5), Some(local.clone()));

    // Server grows an operation; the client makes NO call — the watcher
    // alone must propagate the change.
    class
        .add_method(
            MethodBuilder::new("triple", TypeDesc::Int)
                .param("x", TypeDesc::Int)
                .distributed(true)
                .body_expr(Expr::param("x") * Expr::lit(3)),
        )
        .expect("triple");
    server.publisher().ensure_current();

    let version = watcher
        .wait_for_update(Duration::from_secs(5))
        .expect("watcher saw the change");
    assert_eq!(version, class.interface_version());
    assert!(stub.operation("triple").is_some());
    assert!(local.find_method("triple").is_some(), "bound class synced");

    // And the propagated stub method actually calls through.
    let instance = local.instantiate().expect("instance");
    assert_eq!(
        instance.invoke("triple", &[Value::Int(7)]).expect("call"),
        Value::Int(21)
    );
    watcher.stop();
    manager.shutdown();
}

#[test]
fn jpie_script_bodies_drive_live_servers() {
    // Server logic written as JPie-script text, live-edited as text.
    let manager = manager();
    let class = ClassHandle::new("Scripted");
    class.add_field("hits", TypeDesc::Int).expect("field");
    let id = class
        .add_method(
            MethodBuilder::new("classify", TypeDesc::Str)
                .param("n", TypeDesc::Int)
                .distributed(true)
                .body_source(
                    "this.hits = this.hits + 1; \
                     if (n < 0) { return \"negative\"; } \
                     if (n == 0) { return \"zero\"; } \
                     return \"positive\";",
                )
                .expect("parse body"),
        )
        .expect("method");
    let server = manager.deploy_soap(class.clone()).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().ensure_current();

    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");
    assert_eq!(
        env.call(&stub, "classify", &[Value::Int(-5)])
            .expect("call"),
        Value::Str("negative".into())
    );

    // The developer views the source of the running method...
    let source = class
        .method_source(id)
        .expect("id ok")
        .expect("interpreted");
    assert!(source.contains("return \"positive\";"), "{source}");

    // ...and live-replaces it with new text.
    class
        .set_body_source(
            id,
            "this.hits = this.hits + 1; \
             if (n % 2 == 0) { return \"even\"; } return \"odd\";",
        )
        .expect("reparse");
    assert_eq!(
        env.call(&stub, "classify", &[Value::Int(4)]).expect("call"),
        Value::Str("even".into())
    );
    // Field state persisted across the text edit.
    assert_eq!(
        server
            .instance()
            .expect("live")
            .field("hits")
            .expect("hits"),
        Value::Int(2)
    );
    manager.shutdown();
}

#[test]
fn undo_redo_republish_cycle() {
    let manager = manager();
    let class = calc();
    let server = manager.deploy_soap(class.clone()).expect("deploy");
    server.publisher().ensure_current();
    let v_initial = server.publisher().published_version();

    class
        .add_method(MethodBuilder::new("tmp", TypeDesc::Void).distributed(true))
        .expect("add");
    server.publisher().ensure_current();
    assert!(manager
        .interface_document("Calc")
        .expect("doc")
        .contains("tmp"));

    class.undo().expect("undo");
    server.publisher().ensure_current();
    let doc = manager.interface_document("Calc").expect("doc");
    assert!(!doc.contains("tmp"), "undo removed the operation");
    assert!(server.publisher().published_version() > v_initial);
    manager.shutdown();
}
