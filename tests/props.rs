//! Property-based tests on the wire substrates and core data structures:
//! arbitrary values must survive every encode/decode pair in the system
//! (CDR any, SOAP encoding, GIOP framing), arbitrary interfaces must
//! survive WSDL and IDL round trips, and XML escaping must be lossless.

use jpie::{SignatureView, StructValue, TypeDesc, Value};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// Identifiers that cannot collide with IDL keywords or type names.
const RESERVED: &[&str] = &[
    "in",
    "long",
    "void",
    "boolean",
    "float",
    "double",
    "char",
    "string",
    "sequence",
    "module",
    "interface",
    "item",
    "return",
];

fn arb_ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("not a keyword", |s| !RESERVED.contains(&s.as_str()))
}

fn arb_type_name() -> impl Strategy<Value = String> {
    "[A-Z][a-zA-Z0-9]{0,8}".prop_map(|s| s)
}

fn arb_scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i32>().prop_map(Value::Int),
        any::<i64>().prop_map(Value::Long),
        any::<f32>()
            .prop_filter("finite", |x| x.is_finite())
            .prop_map(Value::Float),
        any::<f64>()
            .prop_filter("finite", |x| x.is_finite())
            .prop_map(Value::Double),
        any::<char>().prop_map(Value::Char),
        // Strings without NUL (CDR strings are NUL-terminated) and valid
        // XML scalar content after unescaping.
        "[ -~]{0,24}".prop_map(Value::Str),
    ]
}

/// Values with bounded nesting: scalars, structs, sequences.
fn arb_value() -> impl Strategy<Value = Value> {
    arb_scalar().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            // Struct with up to 4 named fields.
            (
                arb_type_name(),
                prop::collection::vec((arb_ident(), inner.clone()), 0..4)
            )
                .prop_map(|(type_name, fields)| {
                    let mut s = StructValue::new(type_name);
                    // Field names must be unique to survive XML mapping.
                    let mut seen = std::collections::HashSet::new();
                    for (name, v) in fields {
                        if seen.insert(name.clone()) {
                            s.fields.push((name, v));
                        }
                    }
                    Value::Struct(s)
                }),
            // Homogeneous int/str sequences (simple, well-typed cases).
            prop::collection::vec(any::<i32>().prop_map(Value::Int), 0..5)
                .prop_map(|items| Value::Seq(TypeDesc::Int, items)),
            prop::collection::vec("[ -~]{0,12}".prop_map(Value::Str), 0..4)
                .prop_map(|items| Value::Seq(TypeDesc::Str, items)),
            // Nested sequences.
            prop::collection::vec(
                prop::collection::vec(any::<i32>().prop_map(Value::Int), 0..3)
                    .prop_map(|items| Value::Seq(TypeDesc::Int, items)),
                0..3
            )
            .prop_map(|rows| Value::Seq(TypeDesc::Seq(Box::new(TypeDesc::Int)), rows)),
        ]
    })
}

fn arb_leaf_type() -> impl Strategy<Value = TypeDesc> {
    prop_oneof![
        Just(TypeDesc::Bool),
        Just(TypeDesc::Int),
        Just(TypeDesc::Long),
        Just(TypeDesc::Float),
        Just(TypeDesc::Double),
        Just(TypeDesc::Char),
        Just(TypeDesc::Str),
        arb_type_name().prop_map(TypeDesc::Named),
    ]
}

fn arb_param_type() -> impl Strategy<Value = TypeDesc> {
    prop_oneof![
        arb_leaf_type(),
        arb_leaf_type().prop_map(|t| TypeDesc::Seq(Box::new(t))),
        arb_leaf_type().prop_map(|t| TypeDesc::Seq(Box::new(TypeDesc::Seq(Box::new(t))))),
    ]
}

fn arb_return_type() -> impl Strategy<Value = TypeDesc> {
    prop_oneof![Just(TypeDesc::Void), arb_param_type()]
}

/// A random distributed interface (as signature views).
fn arb_interface() -> impl Strategy<Value = Vec<SignatureView>> {
    prop::collection::vec(
        (
            arb_ident(),
            prop::collection::vec((arb_ident(), arb_param_type()), 0..4),
            arb_return_type(),
        ),
        0..5,
    )
    .prop_map(|ops| {
        let mut seen_methods = std::collections::HashSet::new();
        ops.into_iter()
            .enumerate()
            .filter_map(|(i, (name, params, return_ty))| {
                if !seen_methods.insert(name.clone()) {
                    return None;
                }
                let mut seen_params = std::collections::HashSet::new();
                let params = params
                    .into_iter()
                    .enumerate()
                    .filter_map(|(j, (pname, pty))| {
                        seen_params.insert(pname.clone()).then_some((
                            jpie::ParamId::from_raw(j as u64),
                            pname,
                            pty,
                        ))
                    })
                    .collect();
                Some(SignatureView {
                    id: jpie::MethodId::from_raw(i as u64),
                    name,
                    params,
                    return_ty,
                    distributed: true,
                })
            })
            .collect()
    })
}

// ---------------------------------------------------------------------------
// CDR / GIOP properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cdr_any_roundtrips(value in arb_value(), big_endian in any::<bool>()) {
        let mut w = corba::cdr::CdrWriter::new(big_endian);
        corba::cdr::write_any(&mut w, &value);
        let bytes = w.into_bytes();
        let mut r = corba::cdr::CdrReader::new(&bytes, big_endian);
        let decoded = corba::cdr::read_any(&mut r).expect("decode");
        prop_assert_eq!(decoded, value);
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn cdr_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut r = corba::cdr::CdrReader::new(&bytes, true);
        let _ = corba::cdr::read_any(&mut r); // must return Err, not panic
    }

    #[test]
    fn giop_request_roundtrips(
        args in prop::collection::vec(arb_value(), 0..4),
        op in arb_ident(),
        id in any::<u32>(),
    ) {
        let req = corba::giop::RequestMessage {
            request_id: id,
            response_expected: true,
            object_key: b"key".to_vec(),
            operation: op,
            args,
        };
        let mut buf = Vec::new();
        corba::giop::write_request(&mut buf, &req).expect("write");
        let mut cursor = &buf[..];
        let (ty, body, be) = corba::giop::read_message(&mut cursor).expect("read").expect("some");
        prop_assert_eq!(ty, corba::giop::MsgType::Request);
        let decoded = corba::giop::decode_request(&body, be).expect("decode");
        prop_assert_eq!(decoded, req);
    }

    #[test]
    fn giop_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut cursor = &bytes[..];
        let _ = corba::giop::read_message(&mut cursor);
    }
}

// ---------------------------------------------------------------------------
// SOAP / XML properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn soap_request_roundtrips(
        args in prop::collection::vec((arb_ident(), arb_value()), 0..4),
        method in arb_ident(),
    ) {
        // Unique argument names (XML elements are keyed by name here).
        let mut seen = std::collections::HashSet::new();
        let mut req = soap::SoapRequest::new("urn:prop", method);
        let mut expected = Vec::new();
        for (name, value) in args {
            if seen.insert(name.clone()) {
                expected.push((name.clone(), value.clone()));
                req = req.arg(name, value);
            }
        }
        let xml = req.to_xml();
        let back = soap::decode_request(&xml).expect("decode");
        prop_assert_eq!(back.args(), &expected[..]);
    }

    #[test]
    fn soap_response_roundtrips(value in arb_value()) {
        let xml = soap::SoapResponse::encode_ok("m", "urn:prop", &value);
        match soap::decode_response(&xml).expect("decode") {
            soap::SoapResponse::Ok(v) => prop_assert_eq!(v, value),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    #[test]
    fn soap_decode_never_panics(input in "\\PC*") {
        let _ = soap::decode_request(&input);
        let _ = soap::decode_response(&input);
    }

    #[test]
    fn xml_escape_roundtrips(text in "\\PC{0,64}") {
        prop_assert_eq!(xmlrt::unescape(&xmlrt::escape(&text)).expect("unescape"), text.clone());
        prop_assert_eq!(xmlrt::unescape(&xmlrt::escape_attr(&text)).expect("unescape"), text);
    }

    #[test]
    fn xml_parser_never_panics(input in "\\PC{0,64}") {
        let _ = xmlrt::XmlNode::parse(&input);
    }
}

// ---------------------------------------------------------------------------
// JPie-script source round trip
// ---------------------------------------------------------------------------

fn arb_script_expr() -> impl Strategy<Value = jpie::expr::Expr> {
    use jpie::expr::{BinOp, Builtin, Expr, UnOp};
    let leaf = prop_oneof![
        (0i32..1000).prop_map(|i| Expr::Lit(Value::Int(i))),
        any::<bool>().prop_map(|b| Expr::Lit(Value::Bool(b))),
        "[ -~&&[^\"\\\\]]{0,8}".prop_map(|s| Expr::Lit(Value::Str(s))),
        arb_ident().prop_map(Expr::Local),
        arb_ident().prop_map(Expr::FieldRef),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Lt),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::Binary {
                    op,
                    lhs: Box::new(l),
                    rhs: Box::new(r)
                }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(e)
            }),
            (
                arb_ident(),
                prop::collection::vec((arb_ident(), inner.clone()), 0..3)
            )
                .prop_map(|(method, args)| {
                    let mut seen = std::collections::HashSet::new();
                    Expr::SelfCall {
                        method,
                        args: args
                            .into_iter()
                            .filter(|(n, _)| seen.insert(n.clone()))
                            .collect(),
                    }
                }),
            prop::collection::vec(inner.clone(), 0..3).prop_map(|args| Expr::Call {
                builtin: Builtin::ToStr,
                args: args
                    .into_iter()
                    .take(1)
                    .collect::<Vec<_>>()
                    .into_iter()
                    .collect()
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn jpie_script_print_parse_roundtrip(expr in arb_script_expr()) {
        // Binary comparisons are non-associative in the grammar (no
        // chained `a < b < c`), so only shapes the printer can emit are
        // generated above. Print → parse must reproduce the tree.
        let src = jpie::parse::expr_to_source(&expr);
        let reparsed = jpie::parse::parse_expr(&src)
            .unwrap_or_else(|e| panic!("reparse of {src:?} failed: {e}"));
        prop_assert_eq!(reparsed, expr);
    }

    #[test]
    fn jpie_script_parser_never_panics(input in "\\PC{0,64}") {
        let _ = jpie::parse::parse_block(&input);
        let _ = jpie::parse::parse_expr(&input);
    }
}

/// Identifiers safe for class members in JPie script (no script keywords).
fn arb_member_ident() -> impl Strategy<Value = String> {
    const SCRIPT_RESERVED: &[&str] = &[
        "let",
        "if",
        "else",
        "while",
        "return",
        "throw",
        "this",
        "new",
        "seq",
        "true",
        "false",
        "null",
        "class",
        "extends",
        "field",
        "distributed",
        "len",
        "get",
        "push",
        "to_string",
        "contains",
        "in",
        "long",
        "void",
        "boolean",
        "float",
        "double",
        "char",
        "string",
        "int",
        "item",
        "module",
        "interface",
    ];
    "[a-z][a-z0-9_]{0,8}".prop_filter("not reserved", |s| !SCRIPT_RESERVED.contains(&s.as_str()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn class_source_is_a_fixed_point(
        class_name in arb_type_name(),
        superclass in prop::option::of(arb_type_name()),
        fields in prop::collection::vec((arb_member_ident(), arb_param_type()), 0..3),
        methods in prop::collection::vec(
            (arb_member_ident(),
             prop::collection::vec((arb_member_ident(), arb_param_type()), 0..3),
             arb_return_type(),
             any::<bool>(),
             (0i32..100)),
            0..4,
        ),
    ) {
        let class = match &superclass {
            Some(s) => jpie::ClassHandle::with_superclass(&class_name, s),
            None => jpie::ClassHandle::new(&class_name),
        };
        let mut seen_fields = std::collections::HashSet::new();
        for (name, ty) in fields {
            if seen_fields.insert(name.clone()) {
                class.add_field(&name, ty).expect("field");
            }
        }
        let mut seen_methods = seen_fields; // avoid method/field confusion in source
        for (name, params, return_ty, distributed, ret) in methods {
            if !seen_methods.insert(name.clone()) {
                continue;
            }
            let mut b = jpie::MethodBuilder::new(&name, return_ty).distributed(distributed);
            let mut seen_params = std::collections::HashSet::new();
            for (pname, pty) in params {
                if seen_params.insert(pname.clone()) {
                    b = b.param(pname, pty);
                }
            }
            b = b.body_source(&format!("return {ret};")).expect("body");
            class.add_method(b).expect("method");
        }
        let rendered = class.class_source();
        let reparsed = jpie::parse::parse_class(&rendered)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{rendered}"));
        prop_assert_eq!(reparsed.class_source(), rendered);
        prop_assert_eq!(reparsed.superclass(), class.superclass());
        prop_assert_eq!(
            reparsed.signatures().len(),
            class.signatures().len()
        );
    }
}

// ---------------------------------------------------------------------------
// Interface-document properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wsdl_roundtrips_arbitrary_interfaces(sigs in arb_interface(), version in any::<u64>()) {
        let doc = soap::WsdlDocument::from_signatures("Svc", "mem://svc/Svc", &sigs, version);
        let back = soap::WsdlDocument::parse(&doc.to_xml()).expect("parse");
        prop_assert_eq!(back, doc);
    }

    #[test]
    fn idl_roundtrips_arbitrary_interfaces(sigs in arb_interface(), version in any::<u64>()) {
        let module = corba::IdlModule::from_signatures("Svc", &sigs, version);
        let back = corba::IdlModule::parse(&module.to_idl()).expect("parse");
        prop_assert_eq!(back, module);
    }

    #[test]
    fn idl_parse_never_panics(input in "\\PC{0,64}") {
        let _ = corba::IdlModule::parse(&input);
    }

    #[test]
    fn ior_roundtrips(
        type_id in "[A-Za-z:./0-9]{1,24}",
        addr in "[a-z0-9:/._-]{1,24}",
        key in prop::collection::vec(any::<u8>(), 0..16),
    ) {
        let ior = corba::Ior::new(type_id, addr, key);
        let back = corba::Ior::parse(&ior.to_ior_string()).expect("parse");
        prop_assert_eq!(back, ior);
    }

    #[test]
    fn ior_parse_never_panics(input in "\\PC{0,64}") {
        let _ = corba::Ior::parse(&input);
    }
}
