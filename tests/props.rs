//! Property-style tests on the wire substrates and core data structures:
//! randomized values must survive every encode/decode pair in the system
//! (CDR any, SOAP encoding, GIOP framing), randomized interfaces must
//! survive WSDL and IDL round trips, and XML escaping must be lossless.
//!
//! Inputs are produced by a seeded xorshift generator (`obs::rng`), so
//! every run explores the same cases — failures are reproducible from
//! the case number alone, with no external property-testing framework.

use jpie::{SignatureView, StructValue, TypeDesc, Value};
use obs::rng::XorShift64;

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// Identifiers that cannot collide with IDL keywords or type names.
const RESERVED: &[&str] = &[
    "in",
    "long",
    "void",
    "boolean",
    "float",
    "double",
    "char",
    "string",
    "sequence",
    "module",
    "interface",
    "item",
    "return",
];

/// Identifiers safe for class members in JPie script (no script keywords).
const SCRIPT_RESERVED: &[&str] = &[
    "let",
    "if",
    "else",
    "while",
    "return",
    "throw",
    "this",
    "new",
    "seq",
    "true",
    "false",
    "null",
    "class",
    "extends",
    "field",
    "distributed",
    "len",
    "get",
    "push",
    "to_string",
    "contains",
    "in",
    "long",
    "void",
    "boolean",
    "float",
    "double",
    "char",
    "string",
    "int",
    "item",
    "module",
    "interface",
];

fn gen_char_from(rng: &mut XorShift64, alphabet: &[u8]) -> char {
    alphabet[rng.gen_usize(alphabet.len())] as char
}

/// `[a-z][a-z0-9_]{0,8}`, never a keyword from `banned`.
fn gen_ident_avoiding(rng: &mut XorShift64, banned: &[&str]) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    loop {
        let mut s = String::new();
        s.push(gen_char_from(rng, FIRST));
        for _ in 0..rng.gen_usize(9) {
            s.push(gen_char_from(rng, REST));
        }
        if !banned.contains(&s.as_str()) {
            return s;
        }
    }
}

fn gen_ident(rng: &mut XorShift64) -> String {
    gen_ident_avoiding(rng, RESERVED)
}

fn gen_member_ident(rng: &mut XorShift64) -> String {
    gen_ident_avoiding(rng, SCRIPT_RESERVED)
}

/// `[A-Z][a-zA-Z0-9]{0,8}`.
fn gen_type_name(rng: &mut XorShift64) -> String {
    const FIRST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    let mut s = String::new();
    s.push(gen_char_from(rng, FIRST));
    for _ in 0..rng.gen_usize(9) {
        s.push(gen_char_from(rng, REST));
    }
    s
}

/// Printable-ASCII string of length `0..max_len`.
fn gen_ascii_string(rng: &mut XorShift64, max_len: usize) -> String {
    let len = rng.gen_usize(max_len + 1);
    (0..len)
        .map(|_| char::from(rng.gen_range(0x20, 0x7F) as u8))
        .collect()
}

/// Any Unicode scalar value (the `any::<char>()` equivalent).
fn gen_any_char(rng: &mut XorShift64) -> char {
    loop {
        let code = (rng.next_u32()) % 0x11_0000;
        if let Some(c) = char::from_u32(code) {
            return c;
        }
    }
}

/// Arbitrary non-control Unicode text (the `\PC*` equivalent) used by
/// the never-panic tests.
fn gen_unicode_string(rng: &mut XorShift64, max_len: usize) -> String {
    let len = rng.gen_usize(max_len + 1);
    (0..len)
        .map(|_| loop {
            let c = gen_any_char(rng);
            if !c.is_control() {
                break c;
            }
        })
        .collect()
}

fn gen_finite_f32(rng: &mut XorShift64) -> f32 {
    loop {
        let f = f32::from_bits(rng.next_u32());
        if f.is_finite() {
            return f;
        }
    }
}

fn gen_finite_f64(rng: &mut XorShift64) -> f64 {
    loop {
        let f = f64::from_bits(rng.next_u64());
        if f.is_finite() {
            return f;
        }
    }
}

fn gen_scalar(rng: &mut XorShift64) -> Value {
    match rng.gen_usize(8) {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_bool(0.5)),
        2 => Value::Int(rng.next_u32() as i32),
        3 => Value::Long(rng.next_u64() as i64),
        4 => Value::Float(gen_finite_f32(rng)),
        5 => Value::Double(gen_finite_f64(rng)),
        6 => Value::Char(gen_any_char(rng)),
        // Strings without NUL (CDR strings are NUL-terminated) and valid
        // XML scalar content after unescaping.
        _ => Value::Str(gen_ascii_string(rng, 24)),
    }
}

/// Values with bounded nesting: scalars, structs, sequences.
fn gen_value(rng: &mut XorShift64, depth: usize) -> Value {
    if depth == 0 {
        return gen_scalar(rng);
    }
    match rng.gen_usize(5) {
        // Struct with up to 4 uniquely-named fields.
        0 => {
            let mut s = StructValue::new(gen_type_name(rng));
            let mut seen = std::collections::HashSet::new();
            for _ in 0..rng.gen_usize(4) {
                let name = gen_ident(rng);
                if seen.insert(name.clone()) {
                    s.fields.push((name, gen_value(rng, depth - 1)));
                }
            }
            Value::Struct(s)
        }
        // Homogeneous int/str sequences (simple, well-typed cases).
        1 => Value::Seq(
            TypeDesc::Int,
            (0..rng.gen_usize(5))
                .map(|_| Value::Int(rng.next_u32() as i32))
                .collect(),
        ),
        2 => Value::Seq(
            TypeDesc::Str,
            (0..rng.gen_usize(4))
                .map(|_| Value::Str(gen_ascii_string(rng, 12)))
                .collect(),
        ),
        // Nested sequences.
        3 => Value::Seq(
            TypeDesc::Seq(Box::new(TypeDesc::Int)),
            (0..rng.gen_usize(3))
                .map(|_| {
                    Value::Seq(
                        TypeDesc::Int,
                        (0..rng.gen_usize(3))
                            .map(|_| Value::Int(rng.next_u32() as i32))
                            .collect(),
                    )
                })
                .collect(),
        ),
        _ => gen_scalar(rng),
    }
}

fn gen_leaf_type(rng: &mut XorShift64) -> TypeDesc {
    match rng.gen_usize(8) {
        0 => TypeDesc::Bool,
        1 => TypeDesc::Int,
        2 => TypeDesc::Long,
        3 => TypeDesc::Float,
        4 => TypeDesc::Double,
        5 => TypeDesc::Char,
        6 => TypeDesc::Str,
        _ => TypeDesc::Named(gen_type_name(rng)),
    }
}

fn gen_param_type(rng: &mut XorShift64) -> TypeDesc {
    match rng.gen_usize(4) {
        0 => TypeDesc::Seq(Box::new(gen_leaf_type(rng))),
        1 => TypeDesc::Seq(Box::new(TypeDesc::Seq(Box::new(gen_leaf_type(rng))))),
        _ => gen_leaf_type(rng),
    }
}

fn gen_return_type(rng: &mut XorShift64) -> TypeDesc {
    if rng.gen_bool(0.2) {
        TypeDesc::Void
    } else {
        gen_param_type(rng)
    }
}

/// A random distributed interface (as signature views).
fn gen_interface(rng: &mut XorShift64) -> Vec<SignatureView> {
    let mut seen_methods = std::collections::HashSet::new();
    let mut sigs = Vec::new();
    for i in 0..rng.gen_usize(5) {
        let name = gen_ident(rng);
        if !seen_methods.insert(name.clone()) {
            continue;
        }
        let mut seen_params = std::collections::HashSet::new();
        let mut params = Vec::new();
        for j in 0..rng.gen_usize(4) {
            let pname = gen_ident(rng);
            if seen_params.insert(pname.clone()) {
                params.push((
                    jpie::ParamId::from_raw(j as u64),
                    pname,
                    gen_param_type(rng),
                ));
            }
        }
        sigs.push(SignatureView {
            id: jpie::MethodId::from_raw(i as u64),
            name,
            params,
            return_ty: gen_return_type(rng),
            distributed: true,
        });
    }
    sigs
}

/// Run `case_fn` over `cases` seeded deterministic cases.
fn for_cases(test_name: &str, cases: u64, mut case_fn: impl FnMut(&mut XorShift64, u64)) {
    // Seed per test so adding cases to one test doesn't shift another.
    let seed = test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1_0000_01b3)
    });
    for case in 0..cases {
        let mut rng = XorShift64::seed_from_u64(seed ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        case_fn(&mut rng, case);
    }
}

// ---------------------------------------------------------------------------
// CDR / GIOP properties
// ---------------------------------------------------------------------------

#[test]
fn cdr_any_roundtrips() {
    for_cases("cdr_any_roundtrips", 128, |rng, case| {
        let value = gen_value(rng, 3);
        let big_endian = rng.gen_bool(0.5);
        let mut w = corba::cdr::CdrWriter::new(big_endian);
        corba::cdr::write_any(&mut w, &value);
        let bytes = w.into_bytes();
        let mut r = corba::cdr::CdrReader::new(&bytes, big_endian);
        let decoded = corba::cdr::read_any(&mut r).expect("decode");
        assert_eq!(decoded, value, "case {case}");
        assert_eq!(r.remaining(), 0, "case {case}");
    });
}

#[test]
fn cdr_never_panics_on_arbitrary_bytes() {
    for_cases("cdr_never_panics", 256, |rng, _| {
        let mut bytes = vec![0u8; rng.gen_usize(64)];
        rng.fill_bytes(&mut bytes);
        let mut r = corba::cdr::CdrReader::new(&bytes, true);
        let _ = corba::cdr::read_any(&mut r); // must return Err, not panic
    });
}

#[test]
fn giop_request_roundtrips() {
    for_cases("giop_request_roundtrips", 128, |rng, case| {
        let req = corba::giop::RequestMessage {
            request_id: rng.next_u32(),
            response_expected: true,
            object_key: b"key".to_vec(),
            operation: gen_ident(rng),
            args: (0..rng.gen_usize(4)).map(|_| gen_value(rng, 2)).collect(),
            call_id: if rng.gen_bool(0.5) {
                Some(obs::CallId {
                    client: rng.next_u64(),
                    seq: rng.next_u64(),
                })
            } else {
                None
            },
            trace: if rng.gen_bool(0.5) {
                Some(obs::TraceContext {
                    trace: obs::TraceId(((rng.next_u64() as u128) << 64) | 1),
                    parent: obs::SpanId(rng.next_u64() | 1),
                    flags: 1,
                })
            } else {
                None
            },
        };
        let mut buf = Vec::new();
        corba::giop::write_request(&mut buf, &req).expect("write");
        let mut cursor = &buf[..];
        let (ty, body, be) = corba::giop::read_message(&mut cursor)
            .expect("read")
            .expect("some");
        assert_eq!(ty, corba::giop::MsgType::Request, "case {case}");
        let decoded = corba::giop::decode_request(&body, be).expect("decode");
        assert_eq!(decoded, req, "case {case}");
    });
}

#[test]
fn giop_never_panics_on_arbitrary_bytes() {
    for_cases("giop_never_panics", 256, |rng, _| {
        let mut bytes = vec![0u8; rng.gen_usize(64)];
        rng.fill_bytes(&mut bytes);
        let mut cursor = &bytes[..];
        let _ = corba::giop::read_message(&mut cursor);
    });
}

// ---------------------------------------------------------------------------
// SOAP / XML properties
// ---------------------------------------------------------------------------

#[test]
fn soap_request_roundtrips() {
    for_cases("soap_request_roundtrips", 128, |rng, case| {
        // Unique argument names (XML elements are keyed by name here).
        let mut seen = std::collections::HashSet::new();
        let mut req = soap::SoapRequest::new("urn:prop", gen_ident(rng));
        let mut expected = Vec::new();
        for _ in 0..rng.gen_usize(4) {
            let name = gen_ident(rng);
            let value = gen_value(rng, 3);
            if seen.insert(name.clone()) {
                expected.push((name.clone(), value.clone()));
                req = req.arg(name, value);
            }
        }
        let xml = req.to_xml();
        let back = soap::decode_request(&xml).expect("decode");
        assert_eq!(back.args(), &expected[..], "case {case}");
    });
}

#[test]
fn soap_response_roundtrips() {
    for_cases("soap_response_roundtrips", 128, |rng, case| {
        let value = gen_value(rng, 3);
        let xml = soap::SoapResponse::encode_ok("m", "urn:prop", &value);
        match soap::decode_response(&xml).expect("decode") {
            soap::SoapResponse::Ok(v) => assert_eq!(v, value, "case {case}"),
            other => panic!("case {case}: unexpected {other:?}"),
        }
    });
}

#[test]
fn soap_decode_never_panics() {
    for_cases("soap_decode_never_panics", 128, |rng, _| {
        let input = gen_unicode_string(rng, 64);
        let _ = soap::decode_request(&input);
        let _ = soap::decode_response(&input);
    });
}

// ---------------------------------------------------------------------------
// Streaming codec vs DOM codec (differential oracle)
// ---------------------------------------------------------------------------

/// Strings that stress the escaper: CDATA-terminator lookalikes, bare
/// markup characters, control characters, and whitespace runs that an
/// indenting serializer would normalize away.
const EDGE_STRINGS: &[&str] = &[
    "]]>",
    "a]]>b]]>",
    "<tag attr=\"x\">&amp;</tag>",
    "&&&<<<>>>\"''\"",
    "\t\n\r mixed \n\t whitespace \r\n",
    "  leading and trailing  ",
    "\u{7f}\u{1}\u{8}bell\u{7}",
    "line1\nline2\rline3\r\n",
];

/// Like [`gen_value`], but string scalars sometimes draw from
/// [`EDGE_STRINGS`] so both codecs face the escaper's worst cases.
fn gen_edgy_value(rng: &mut XorShift64, depth: usize) -> Value {
    let v = gen_value(rng, depth);
    if rng.gen_bool(0.4) {
        let edge = EDGE_STRINGS[rng.gen_usize(EDGE_STRINGS.len())];
        return match v {
            Value::Str(_) => Value::Str(edge.to_string()),
            other => other,
        };
    }
    v
}

#[test]
fn streaming_request_encoder_matches_dom() {
    for_cases("streaming_request_matches_dom", 192, |rng, case| {
        let method = gen_ident(rng);
        let mut seen = std::collections::HashSet::new();
        let mut req = soap::SoapRequest::new("urn:prop", method.clone());
        let mut args = Vec::new();
        for _ in 0..rng.gen_usize(4) {
            let name = gen_ident(rng);
            let value = gen_edgy_value(rng, 3);
            if seen.insert(name.clone()) {
                args.push((name.clone(), value.clone()));
                req = req.arg(name, value);
            }
        }
        let dom = soap::domcodec::encode_request(&req);
        let mut streamed = Vec::new();
        soap::encode_request_into(
            "urn:prop",
            &method,
            args.iter().map(|(n, v)| (n.as_str(), v)),
            &mut streamed,
        );
        assert_eq!(streamed, dom.as_bytes(), "case {case}");
        // The two decoders must agree on the shared bytes, too.
        let a = soap::decode_request(&dom).expect("streaming decode");
        let b = soap::domcodec::decode_request(&dom).expect("dom decode");
        assert_eq!(a, b, "case {case}");
    });
}

#[test]
fn streaming_response_encoder_matches_dom() {
    for_cases("streaming_response_matches_dom", 192, |rng, case| {
        let method = gen_ident(rng);
        let value = gen_edgy_value(rng, 3);
        let dom = soap::domcodec::encode_ok(&method, "urn:prop", &value);
        let mut streamed = Vec::new();
        soap::encode_ok_into(&method, "urn:prop", &value, &mut streamed);
        assert_eq!(streamed, dom.as_bytes(), "case {case}");
        let a = soap::decode_response(&dom).expect("streaming decode");
        let b = soap::domcodec::decode_response(&dom).expect("dom decode");
        assert_eq!(a, b, "case {case}");
    });
}

#[test]
fn streaming_fault_encoder_matches_dom() {
    for_cases("streaming_fault_matches_dom", 64, |rng, case| {
        let code = if rng.gen_bool(0.5) {
            soap::FaultCode::Client
        } else {
            soap::FaultCode::Server
        };
        let text = if rng.gen_bool(0.5) {
            EDGE_STRINGS[rng.gen_usize(EDGE_STRINGS.len())].to_string()
        } else {
            gen_ascii_string(rng, 24)
        };
        let mut fault = soap::SoapFault::new(code, text);
        if rng.gen_bool(0.5) {
            fault.detail = Some(EDGE_STRINGS[rng.gen_usize(EDGE_STRINGS.len())].to_string());
        }
        let dom = soap::domcodec::encode_fault(&fault);
        let mut streamed = Vec::new();
        soap::encode_fault_into(&fault, &mut streamed);
        assert_eq!(streamed, dom.as_bytes(), "case {case}");
    });
}

#[test]
fn streaming_encoders_recycle_buffer_capacity() {
    // The `_into` contract: the buffer is cleared, reused, and its
    // capacity survives — encoding a second envelope into a warmed
    // buffer of sufficient capacity must not reallocate.
    let value = Value::Str("payload".repeat(8));
    let mut buf = Vec::new();
    soap::encode_ok_into("warm", "urn:prop", &value, &mut buf);
    let cap = buf.capacity();
    for _ in 0..8 {
        soap::encode_ok_into("warm", "urn:prop", &value, &mut buf);
        assert_eq!(buf.capacity(), cap, "warm encode must not grow the buffer");
    }
}

#[test]
fn xml_escape_roundtrips() {
    for_cases("xml_escape_roundtrips", 256, |rng, case| {
        let text = gen_unicode_string(rng, 64);
        assert_eq!(
            xmlrt::unescape(&xmlrt::escape(&text)).expect("unescape"),
            text,
            "case {case}"
        );
        assert_eq!(
            xmlrt::unescape(&xmlrt::escape_attr(&text)).expect("unescape"),
            text,
            "case {case}"
        );
    });
}

#[test]
fn xml_parser_never_panics() {
    for_cases("xml_parser_never_panics", 128, |rng, _| {
        let _ = xmlrt::XmlNode::parse(&gen_unicode_string(rng, 64));
    });
}

// ---------------------------------------------------------------------------
// JPie-script source round trip
// ---------------------------------------------------------------------------

fn gen_script_string(rng: &mut XorShift64) -> String {
    // Printable ASCII without `"` or `\` (the script grammar's string set).
    let len = rng.gen_usize(9);
    (0..len)
        .map(|_| loop {
            let c = char::from(rng.gen_range(0x20, 0x7F) as u8);
            if c != '"' && c != '\\' {
                break c;
            }
        })
        .collect()
}

fn gen_script_expr(rng: &mut XorShift64, depth: usize) -> jpie::expr::Expr {
    use jpie::expr::{BinOp, Builtin, Expr, UnOp};
    if depth == 0 {
        return match rng.gen_usize(5) {
            0 => Expr::Lit(Value::Int(rng.gen_range(0, 1000) as i32)),
            1 => Expr::Lit(Value::Bool(rng.gen_bool(0.5))),
            2 => Expr::Lit(Value::Str(gen_script_string(rng))),
            3 => Expr::Local(gen_ident(rng)),
            _ => Expr::FieldRef(gen_ident(rng)),
        };
    }
    match rng.gen_usize(5) {
        0 => {
            const OPS: &[BinOp] = &[
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::Div,
                BinOp::Lt,
                BinOp::And,
                BinOp::Or,
            ];
            Expr::Binary {
                op: *rng.choose(OPS),
                lhs: Box::new(gen_script_expr(rng, depth - 1)),
                rhs: Box::new(gen_script_expr(rng, depth - 1)),
            }
        }
        1 => Expr::Unary {
            op: UnOp::Neg,
            expr: Box::new(gen_script_expr(rng, depth - 1)),
        },
        2 => {
            let mut seen = std::collections::HashSet::new();
            let mut args = Vec::new();
            for _ in 0..rng.gen_usize(3) {
                let name = gen_ident(rng);
                if seen.insert(name.clone()) {
                    args.push((name, gen_script_expr(rng, depth - 1)));
                }
            }
            Expr::SelfCall {
                method: gen_ident(rng),
                args,
            }
        }
        3 => Expr::Call {
            builtin: Builtin::ToStr,
            args: (0..rng.gen_usize(2))
                .map(|_| gen_script_expr(rng, depth - 1))
                .collect(),
        },
        _ => gen_script_expr(rng, 0),
    }
}

#[test]
fn jpie_script_print_parse_roundtrip() {
    for_cases("jpie_script_print_parse_roundtrip", 96, |rng, case| {
        // Binary comparisons are non-associative in the grammar (no
        // chained `a < b < c`), so only shapes the printer can emit are
        // generated above. Print → parse must reproduce the tree.
        let expr = gen_script_expr(rng, 3);
        let src = jpie::parse::expr_to_source(&expr);
        let reparsed = jpie::parse::parse_expr(&src)
            .unwrap_or_else(|e| panic!("case {case}: reparse of {src:?} failed: {e}"));
        assert_eq!(reparsed, expr, "case {case}");
    });
}

#[test]
fn jpie_script_parser_never_panics() {
    for_cases("jpie_script_parser_never_panics", 128, |rng, _| {
        let input = gen_unicode_string(rng, 64);
        let _ = jpie::parse::parse_block(&input);
        let _ = jpie::parse::parse_expr(&input);
    });
}

#[test]
fn class_source_is_a_fixed_point() {
    for_cases("class_source_is_a_fixed_point", 48, |rng, case| {
        let class_name = gen_type_name(rng);
        let class = if rng.gen_bool(0.5) {
            jpie::ClassHandle::with_superclass(&class_name, gen_type_name(rng))
        } else {
            jpie::ClassHandle::new(&class_name)
        };
        let mut seen_fields = std::collections::HashSet::new();
        for _ in 0..rng.gen_usize(3) {
            let name = gen_member_ident(rng);
            if seen_fields.insert(name.clone()) {
                class.add_field(&name, gen_param_type(rng)).expect("field");
            }
        }
        let mut seen_methods = seen_fields; // avoid method/field confusion in source
        for _ in 0..rng.gen_usize(4) {
            let name = gen_member_ident(rng);
            if !seen_methods.insert(name.clone()) {
                continue;
            }
            let mut b = jpie::MethodBuilder::new(&name, gen_return_type(rng))
                .distributed(rng.gen_bool(0.5));
            let mut seen_params = std::collections::HashSet::new();
            for _ in 0..rng.gen_usize(3) {
                let pname = gen_member_ident(rng);
                if seen_params.insert(pname.clone()) {
                    b = b.param(pname, gen_param_type(rng));
                }
            }
            let ret = rng.gen_range(0, 100);
            b = b.body_source(&format!("return {ret};")).expect("body");
            class.add_method(b).expect("method");
        }
        let rendered = class.class_source();
        let reparsed = jpie::parse::parse_class(&rendered)
            .unwrap_or_else(|e| panic!("case {case}: reparse failed: {e}\n{rendered}"));
        assert_eq!(reparsed.class_source(), rendered, "case {case}");
        assert_eq!(reparsed.superclass(), class.superclass(), "case {case}");
        assert_eq!(
            reparsed.signatures().len(),
            class.signatures().len(),
            "case {case}"
        );
    });
}

// ---------------------------------------------------------------------------
// Interface-document properties
// ---------------------------------------------------------------------------

#[test]
fn wsdl_roundtrips_arbitrary_interfaces() {
    for_cases("wsdl_roundtrips", 64, |rng, case| {
        let sigs = gen_interface(rng);
        let version = rng.next_u64();
        let doc = soap::WsdlDocument::from_signatures("Svc", "mem://svc/Svc", &sigs, version);
        let back = soap::WsdlDocument::parse(&doc.to_xml()).expect("parse");
        assert_eq!(back, doc, "case {case}");
    });
}

#[test]
fn idl_roundtrips_arbitrary_interfaces() {
    for_cases("idl_roundtrips", 64, |rng, case| {
        let sigs = gen_interface(rng);
        let version = rng.next_u64();
        let module = corba::IdlModule::from_signatures("Svc", &sigs, version);
        let back = corba::IdlModule::parse(&module.to_idl()).expect("parse");
        assert_eq!(back, module, "case {case}");
    });
}

#[test]
fn idl_parse_never_panics() {
    for_cases("idl_parse_never_panics", 128, |rng, _| {
        let _ = corba::IdlModule::parse(&gen_unicode_string(rng, 64));
    });
}

#[test]
fn ior_roundtrips() {
    for_cases("ior_roundtrips", 64, |rng, case| {
        const TYPE_ID: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz:./0123456789";
        const ADDR: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789:/._-";
        let type_id: String = (0..rng.gen_usize(24) + 1)
            .map(|_| gen_char_from(rng, TYPE_ID))
            .collect();
        let addr: String = (0..rng.gen_usize(24) + 1)
            .map(|_| gen_char_from(rng, ADDR))
            .collect();
        let mut key = vec![0u8; rng.gen_usize(16)];
        rng.fill_bytes(&mut key);
        let ior = corba::Ior::new(type_id, addr, key);
        let back = corba::Ior::parse(&ior.to_ior_string()).expect("parse");
        assert_eq!(back, ior, "case {case}");
    });
}

#[test]
fn ior_parse_never_panics() {
    for_cases("ior_parse_never_panics", 128, |rng, _| {
        let _ = corba::Ior::parse(&gen_unicode_string(rng, 64));
    });
}
