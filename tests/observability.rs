//! End-to-end observability: `GET /metrics` on an SDE SOAP server
//! reflects call traffic through the gateway, and the version-event
//! counters advance after a live interface edit and republication.

use std::time::Duration;

use jpie::expr::Expr;
use jpie::{ClassHandle, MethodBuilder, TypeDesc, Value};
use live_rmi::cde::ClientEnvironment;
use live_rmi::sde::{PublicationStrategy, SdeConfig, SdeManager, SdeServerGateway, TransportKind};

fn manager() -> SdeManager {
    SdeManager::new(SdeConfig {
        transport: TransportKind::Mem,
        strategy: PublicationStrategy::StableTimeout(Duration::from_millis(15)),
        wal_dir: None,
    })
    .expect("manager")
}

fn calc_class(name: &str) -> ClassHandle {
    let class = ClassHandle::new(name);
    class
        .add_method(
            MethodBuilder::new("add", TypeDesc::Int)
                .param("a", TypeDesc::Int)
                .param("b", TypeDesc::Int)
                .distributed(true)
                .body_expr(Expr::param("a") + Expr::param("b")),
        )
        .expect("add method");
    class
}

/// Fetches the Prometheus exposition from the server's built-in
/// `/metrics` endpoint.
fn fetch_metrics(base_url: &str) -> String {
    let resp = httpd::HttpClient::new()
        .get(&format!("{base_url}/metrics"))
        .expect("GET /metrics");
    assert_eq!(resp.status(), 200);
    resp.body_str().to_string()
}

/// Reads one sample value from the exposition text by its full key
/// (name plus label set); 0 when the series is absent.
fn metric(text: &str, key: &str) -> u64 {
    text.lines()
        .find_map(|line| {
            let rest = line.strip_prefix(key)?;
            rest.strip_prefix(' ')?.trim().parse().ok()
        })
        .unwrap_or(0)
}

#[test]
fn metrics_endpoint_reflects_soap_calls() {
    let manager = manager();
    let server = manager.deploy_soap(calc_class("ObsCalc")).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().force_publish();
    server.publisher().ensure_current();
    let base_url = server
        .endpoint_url()
        .trim_end_matches("/ObsCalc")
        .to_string();

    let before = fetch_metrics(&base_url);

    let env = ClientEnvironment::new();
    let stub = env.connect_soap(server.wsdl_url()).expect("stub");
    let v = env
        .call(&stub, "add", &[Value::Int(20), Value::Int(22)])
        .expect("call");
    assert_eq!(v, Value::Int(42));

    let after = fetch_metrics(&base_url);

    // Gateway request/ok counters for this class advanced by the call.
    let req_key = "sde_requests_total{class=\"ObsCalc\"}";
    let ok_key = "sde_ok_total{class=\"ObsCalc\"}";
    assert_eq!(metric(&after, req_key), metric(&before, req_key) + 1);
    assert_eq!(metric(&after, ok_key), metric(&before, ok_key) + 1);
    let per_method = "sde_method_calls_total{class=\"ObsCalc\",method=\"add\"}";
    assert_eq!(metric(&after, per_method), metric(&before, per_method) + 1);

    // The dispatch-latency histogram recorded a sample, exported in
    // summary form with p50/p95/p99 quantiles.
    let hist_count = "sde_dispatch_ns_count{class=\"ObsCalc\"}";
    assert_eq!(metric(&after, hist_count), metric(&before, hist_count) + 1);
    assert!(
        after.contains("sde_dispatch_ns{class=\"ObsCalc\",quantile=\"0.99\"}"),
        "{after}"
    );

    // HTTP-layer counters saw the POST too.
    assert!(metric(&after, "http_requests_total") > metric(&before, "http_requests_total"));

    manager.shutdown();
}

#[test]
fn metrics_endpoint_reflects_live_interface_edit() {
    let manager = manager();
    let server = manager.deploy_soap(calc_class("ObsEdit")).expect("deploy");
    server.create_instance().expect("instance");
    server.publisher().force_publish();
    server.publisher().ensure_current();
    let base_url = server
        .endpoint_url()
        .trim_end_matches("/ObsEdit")
        .to_string();

    let before = fetch_metrics(&base_url);

    // Live interface edit: a new distributed method is a distributed
    // change, so the publisher must log the edit and republish.
    server
        .class()
        .add_method(
            MethodBuilder::new("sub", TypeDesc::Int)
                .param("a", TypeDesc::Int)
                .param("b", TypeDesc::Int)
                .distributed(true)
                .body_expr(Expr::param("a") - Expr::param("b")),
        )
        .expect("live add");
    server.publisher().ensure_current();

    let after = fetch_metrics(&base_url);

    let edit_key = "sde_version_events_total{kind=\"interface_edit\"}";
    assert!(
        metric(&after, edit_key) > metric(&before, edit_key),
        "edit events: {} -> {}",
        metric(&before, edit_key),
        metric(&after, edit_key)
    );
    let pub_key = "sde_publications_total{class=\"ObsEdit\"}";
    assert!(
        metric(&after, pub_key) > metric(&before, pub_key),
        "publications: {} -> {}",
        metric(&before, pub_key),
        metric(&after, pub_key)
    );
    // The republication also lands in the event-kind counters (either as
    // a stability-timeout publication or as a forced one).
    let pub_event = "sde_version_events_total{kind=\"publication\"}";
    let forced_event = "sde_version_events_total{kind=\"forced_publication\"}";
    assert!(
        metric(&after, pub_event) + metric(&after, forced_event)
            > metric(&before, pub_event) + metric(&before, forced_event),
        "{after}"
    );

    manager.shutdown();
}
