//! Conditional, keep-alive document fetching for client stubs.
//!
//! The Interface Server serves every document with an `ETag` derived
//! from the interface version. The fetcher remembers the validator per
//! URL and sends `If-None-Match` on every re-fetch, so the steady state
//! of [`crate::InterfaceWatcher`] polling is a handful of header bytes
//! and a `304 Not Modified` — no document re-download, no re-parse.
//! Keep-alive connections are parked in an [`httpd::ConnectionPool`]
//! per authority and reused across fetches instead of a fresh TCP/mem
//! handshake per poll.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use httpd::{ConnectionPool, HttpClient, HttpError, Request};
use obs::sync::Mutex;

use crate::resilience::{breaker_for, Backoff, ResiliencePolicy};

/// Outcome of a conditional fetch.
#[derive(Debug)]
pub(crate) enum Fetched {
    /// The document changed (or was fetched for the first time).
    New(String),
    /// The server answered `304` — the caller's parsed state is current.
    NotModified,
    /// The authority's circuit breaker is open; the caller should keep
    /// using its last parsed state until the authority recovers.
    Stale,
}

/// A keep-alive HTTP fetcher with per-URL conditional-GET validators.
///
/// Fetches are idempotent GETs, so they retry with backoff under the
/// [`ResiliencePolicy`], honor `Retry-After` on 503, and report
/// successes/failures to the per-authority circuit breaker. While a
/// breaker is open, previously fetched URLs are served as
/// [`Fetched::Stale`] so watchers and stubs keep their cached interface
/// view instead of erroring.
#[derive(Debug)]
pub(crate) struct DocFetcher {
    /// Keep-alive connections per authority (`scheme://host`), with
    /// stale-connection retry handled by the pool.
    pool: ConnectionPool,
    policy: Arc<ResiliencePolicy>,
    /// Last `ETag` seen per URL.
    etags: Mutex<HashMap<String, String>>,
    /// URLs fetched successfully at least once — eligible for stale
    /// serving while the authority's breaker is open.
    seen: Mutex<HashSet<String>>,
}

impl DocFetcher {
    #[cfg(test)]
    pub(crate) fn new() -> DocFetcher {
        DocFetcher::with_policy(Arc::new(ResiliencePolicy::default()))
    }

    pub(crate) fn with_policy(policy: Arc<ResiliencePolicy>) -> DocFetcher {
        DocFetcher {
            pool: ConnectionPool::new(HttpClient::new().with_read_timeout(policy.request_timeout))
                .with_max_idle(1),
            policy,
            etags: Mutex::new(HashMap::new()),
            seen: Mutex::new(HashSet::new()),
        }
    }

    /// Fetches `url`, conditionally when a validator is cached.
    ///
    /// # Errors
    ///
    /// Fails on non-`200`/`304`/`503` statuses, when retries exhaust the
    /// attempt cap or deadline budget, or when the breaker is open and
    /// the URL was never fetched before.
    pub(crate) fn fetch(&self, url: &str) -> Result<Fetched, HttpError> {
        let (authority, path) = split_authority(url);
        let breaker = breaker_for(&authority, &self.policy);
        let deadline = Instant::now() + self.policy.deadline;
        let mut backoff = Backoff::new(&self.policy);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            if !breaker.try_acquire() {
                if self.seen.lock().contains(url) {
                    obs::registry().counter("cde_stale_served_total").inc();
                    obs::trace::verbose_event("cde::fetch", "stale-serve", format!("url={url}"));
                    return Ok(Fetched::Stale);
                }
                return Err(HttpError::Malformed(format!(
                    "circuit open for {authority}"
                )));
            }
            let mut req = Request::get(path.clone());
            if let Some(etag) = self.etags.lock().get(url) {
                req.headers_mut().set("If-None-Match", etag);
            }
            let outcome = self.pool.send(&authority, &req);
            let retry_wait = match outcome {
                Ok(resp) => match resp.status() {
                    200 => {
                        breaker.on_success();
                        let mut etags = self.etags.lock();
                        match resp.headers().get("ETag") {
                            Some(etag) => {
                                etags.insert(url.to_string(), etag.to_string());
                            }
                            None => {
                                etags.remove(url);
                            }
                        }
                        self.seen.lock().insert(url.to_string());
                        obs::registry().counter("cde_fetch_full_total").inc();
                        return Ok(Fetched::New(resp.body_str().into_owned()));
                    }
                    304 => {
                        breaker.on_success();
                        self.seen.lock().insert(url.to_string());
                        obs::registry()
                            .counter("cde_fetch_not_modified_total")
                            .inc();
                        return Ok(Fetched::NotModified);
                    }
                    503 => {
                        // The server is alive but shedding load: not a
                        // breaker failure. Its Retry-After hint overrides
                        // the backoff schedule.
                        breaker.on_success();
                        if attempt >= self.policy.max_attempts {
                            return Err(HttpError::Malformed(format!("GET {url} returned 503")));
                        }
                        resp.retry_after().unwrap_or_else(|| backoff.next_delay())
                    }
                    status => {
                        breaker.on_success();
                        return Err(HttpError::Malformed(format!("GET {url} returned {status}")));
                    }
                },
                Err(e) => {
                    breaker.on_failure();
                    if attempt >= self.policy.max_attempts {
                        return Err(e);
                    }
                    backoff.next_delay()
                }
            };
            if Instant::now() + retry_wait >= deadline {
                return Err(HttpError::Timeout);
            }
            obs::registry().counter("rmi_retries_total").inc();
            std::thread::sleep(retry_wait);
        }
    }

    /// Drops the cached validator for `url`, forcing the next fetch to
    /// re-download. Used when a downloaded document fails to parse: the
    /// validator must not outlive state that was never applied.
    pub(crate) fn invalidate(&self, url: &str) {
        self.etags.lock().remove(url);
    }
}

/// Splits `scheme://authority/path` into (`scheme://authority`, `/path`).
fn split_authority(url: &str) -> (String, String) {
    if let Some(scheme_end) = url.find("://") {
        let rest = &url[scheme_end + 3..];
        if let Some(slash) = rest.find('/') {
            return (
                url[..scheme_end + 3 + slash].to_string(),
                rest[slash..].to_string(),
            );
        }
    }
    (url.to_string(), "/".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use httpd::{HttpServer, Response as HttpResponse};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn conditional_fetch_uses_validator_and_keep_alive() {
        let hits = Arc::new(AtomicU64::new(0));
        let server_hits = hits.clone();
        let server = HttpServer::bind("mem://fetcher-cond", move |req: &Request| {
            server_hits.fetch_add(1, Ordering::SeqCst);
            if req.headers().get("If-None-Match") == Some("\"v1\"") {
                return HttpResponse::new(httpd::Status::NOT_MODIFIED, Vec::new(), "text/xml");
            }
            let mut resp = HttpResponse::ok(b"<doc/>".to_vec(), "text/xml");
            resp.headers_mut().set("ETag", "\"v1\"");
            resp
        })
        .unwrap();
        let url = format!("{}/doc.wsdl", server.base_url());
        let fetcher = DocFetcher::new();
        assert!(matches!(fetcher.fetch(&url), Ok(Fetched::New(b)) if b == "<doc/>"));
        assert!(matches!(fetcher.fetch(&url), Ok(Fetched::NotModified)));
        assert!(matches!(fetcher.fetch(&url), Ok(Fetched::NotModified)));
        assert_eq!(hits.load(Ordering::SeqCst), 3);
        // After invalidation the full document is downloaded again.
        fetcher.invalidate(&url);
        assert!(matches!(fetcher.fetch(&url), Ok(Fetched::New(_))));
        server.shutdown();
    }

    #[test]
    fn reconnects_after_server_restart() {
        let serve = || {
            HttpServer::bind("mem://fetcher-restart", |_req: &Request| {
                HttpResponse::ok(b"x".to_vec(), "text/plain")
            })
            .unwrap()
        };
        let server = serve();
        let url = "mem://fetcher-restart/d";
        let fetcher = DocFetcher::new();
        assert!(matches!(fetcher.fetch(url), Ok(Fetched::New(_))));
        server.shutdown();
        let server = serve();
        // The cached connection is dead; the fetcher must retry on a
        // fresh one instead of failing.
        assert!(matches!(fetcher.fetch(url), Ok(Fetched::New(_))));
        server.shutdown();
    }

    #[test]
    fn retries_on_503_honoring_retry_after() {
        let hits = Arc::new(AtomicU64::new(0));
        let server_hits = hits.clone();
        let server = HttpServer::bind("mem://fetcher-shed", move |_req: &Request| {
            if server_hits.fetch_add(1, Ordering::SeqCst) == 0 {
                HttpResponse::unavailable("busy", std::time::Duration::from_millis(5))
            } else {
                HttpResponse::ok(b"<doc/>".to_vec(), "text/xml")
            }
        })
        .unwrap();
        let fetcher = DocFetcher::new();
        let url = format!("{}/doc.wsdl", server.base_url());
        assert!(matches!(fetcher.fetch(&url), Ok(Fetched::New(_))));
        assert_eq!(hits.load(Ordering::SeqCst), 2, "one shed, one retry");
        server.shutdown();
    }

    #[test]
    fn open_breaker_serves_stale_for_seen_urls() {
        let policy = Arc::new(ResiliencePolicy::default());
        let server = HttpServer::bind("mem://fetcher-stale", |_req: &Request| {
            HttpResponse::ok(b"<doc/>".to_vec(), "text/xml")
        })
        .unwrap();
        let fetcher = DocFetcher::with_policy(policy.clone());
        let url = "mem://fetcher-stale/d.wsdl";
        assert!(matches!(fetcher.fetch(url), Ok(Fetched::New(_))));
        server.shutdown();
        // Trip the shared breaker for this authority by hand.
        let breaker = breaker_for("mem://fetcher-stale", &policy);
        for _ in 0..policy.breaker_threshold {
            breaker.on_failure();
        }
        let stale = obs::registry().snapshot().counter("cde_stale_served_total");
        assert!(matches!(fetcher.fetch(url), Ok(Fetched::Stale)));
        assert_eq!(
            obs::registry().snapshot().counter("cde_stale_served_total"),
            stale + 1
        );
        // A URL never fetched before cannot be served stale.
        assert!(fetcher.fetch("mem://fetcher-stale/other").is_err());
        breaker.on_success(); // leave the shared registry closed
    }

    #[test]
    fn split_authority_variants() {
        assert_eq!(
            split_authority("mem://a/b.wsdl"),
            ("mem://a".into(), "/b.wsdl".into())
        );
        assert_eq!(
            split_authority("tcp://h:1"),
            ("tcp://h:1".into(), "/".into())
        );
    }
}
