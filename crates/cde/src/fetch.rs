//! Conditional, keep-alive document fetching for client stubs.
//!
//! The Interface Server serves every document with an `ETag` derived
//! from the interface version. The fetcher remembers the validator per
//! URL and sends `If-None-Match` on every re-fetch, so the steady state
//! of [`crate::InterfaceWatcher`] polling is a handful of header bytes
//! and a `304 Not Modified` — no document re-download, no re-parse.
//! One keep-alive connection per authority is reused across fetches
//! instead of a fresh TCP/mem handshake per poll.

use std::collections::HashMap;

use httpd::{Connection, HttpClient, HttpError, Request, Response};
use obs::sync::Mutex;

/// Outcome of a conditional fetch.
#[derive(Debug)]
pub(crate) enum Fetched {
    /// The document changed (or was fetched for the first time).
    New(String),
    /// The server answered `304` — the caller's parsed state is current.
    NotModified,
}

/// A keep-alive HTTP fetcher with per-URL conditional-GET validators.
#[derive(Debug)]
pub(crate) struct DocFetcher {
    http: HttpClient,
    /// Last `ETag` seen per URL.
    etags: Mutex<HashMap<String, String>>,
    /// One keep-alive connection per authority (`scheme://host`).
    conns: Mutex<HashMap<String, Connection>>,
}

impl DocFetcher {
    pub(crate) fn new() -> DocFetcher {
        DocFetcher {
            http: HttpClient::new(),
            etags: Mutex::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
        }
    }

    /// Fetches `url`, conditionally when a validator is cached.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or non-`200`/`304` statuses.
    pub(crate) fn fetch(&self, url: &str) -> Result<Fetched, HttpError> {
        let (authority, path) = split_authority(url);
        let mut req = Request::get(path);
        if let Some(etag) = self.etags.lock().get(url) {
            req.headers_mut().set("If-None-Match", etag);
        }
        let resp = self.send_keepalive(&authority, &req)?;
        match resp.status() {
            200 => {
                let mut etags = self.etags.lock();
                match resp.headers().get("ETag") {
                    Some(etag) => {
                        etags.insert(url.to_string(), etag.to_string());
                    }
                    None => {
                        etags.remove(url);
                    }
                }
                obs::registry().counter("cde_fetch_full_total").inc();
                Ok(Fetched::New(resp.body_str().into_owned()))
            }
            304 => {
                obs::registry()
                    .counter("cde_fetch_not_modified_total")
                    .inc();
                Ok(Fetched::NotModified)
            }
            status => Err(HttpError::Malformed(format!("GET {url} returned {status}"))),
        }
    }

    /// Drops the cached validator for `url`, forcing the next fetch to
    /// re-download. Used when a downloaded document fails to parse: the
    /// validator must not outlive state that was never applied.
    pub(crate) fn invalidate(&self, url: &str) {
        self.etags.lock().remove(url);
    }

    fn send_keepalive(&self, authority: &str, req: &Request) -> Result<Response, HttpError> {
        let mut conns = self.conns.lock();
        if let Some(conn) = conns.get_mut(authority) {
            match conn.send(req) {
                Ok(resp) => return Ok(resp),
                Err(_) => {
                    // Server restarted or closed the connection; fall
                    // through to a fresh connect.
                    conns.remove(authority);
                }
            }
        }
        let mut conn = self.http.connect(authority)?;
        let resp = conn.send(req)?;
        conns.insert(authority.to_string(), conn);
        Ok(resp)
    }
}

/// Splits `scheme://authority/path` into (`scheme://authority`, `/path`).
fn split_authority(url: &str) -> (String, String) {
    if let Some(scheme_end) = url.find("://") {
        let rest = &url[scheme_end + 3..];
        if let Some(slash) = rest.find('/') {
            return (
                url[..scheme_end + 3 + slash].to_string(),
                rest[slash..].to_string(),
            );
        }
    }
    (url.to_string(), "/".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use httpd::{HttpServer, Response as HttpResponse};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn conditional_fetch_uses_validator_and_keep_alive() {
        let hits = Arc::new(AtomicU64::new(0));
        let server_hits = hits.clone();
        let server = HttpServer::bind("mem://fetcher-cond", move |req: &Request| {
            server_hits.fetch_add(1, Ordering::SeqCst);
            if req.headers().get("If-None-Match") == Some("\"v1\"") {
                return HttpResponse::new(httpd::Status::NOT_MODIFIED, Vec::new(), "text/xml");
            }
            let mut resp = HttpResponse::ok(b"<doc/>".to_vec(), "text/xml");
            resp.headers_mut().set("ETag", "\"v1\"");
            resp
        })
        .unwrap();
        let url = format!("{}/doc.wsdl", server.base_url());
        let fetcher = DocFetcher::new();
        assert!(matches!(fetcher.fetch(&url), Ok(Fetched::New(b)) if b == "<doc/>"));
        assert!(matches!(fetcher.fetch(&url), Ok(Fetched::NotModified)));
        assert!(matches!(fetcher.fetch(&url), Ok(Fetched::NotModified)));
        assert_eq!(hits.load(Ordering::SeqCst), 3);
        // After invalidation the full document is downloaded again.
        fetcher.invalidate(&url);
        assert!(matches!(fetcher.fetch(&url), Ok(Fetched::New(_))));
        server.shutdown();
    }

    #[test]
    fn reconnects_after_server_restart() {
        let serve = || {
            HttpServer::bind("mem://fetcher-restart", |_req: &Request| {
                HttpResponse::ok(b"x".to_vec(), "text/plain")
            })
            .unwrap()
        };
        let server = serve();
        let url = "mem://fetcher-restart/d";
        let fetcher = DocFetcher::new();
        assert!(matches!(fetcher.fetch(url), Ok(Fetched::New(_))));
        server.shutdown();
        let server = serve();
        // The cached connection is dead; the fetcher must retry on a
        // fresh one instead of failing.
        assert!(matches!(fetcher.fetch(url), Ok(Fetched::New(_))));
        server.shutdown();
    }

    #[test]
    fn split_authority_variants() {
        assert_eq!(
            split_authority("mem://a/b.wsdl"),
            ("mem://a".into(), "/b.wsdl".into())
        );
        assert_eq!(
            split_authority("tcp://h:1"),
            ("tcp://h:1".into(), "/".into())
        );
    }
}
