use std::error::Error;
use std::fmt;

/// The client-visible outcome of a failed remote call, unified across the
/// SOAP and CORBA backends (CDE "masks technical differences between
/// local and remote method invocations", §2.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallError {
    /// The server reported "Non existent Method" (§5.7). By the time this
    /// error is returned, the client's interface view has been updated to
    /// the currently published description (§6), so inspecting the stub
    /// shows the signature change.
    StaleMethod {
        /// The method the client tried to call.
        method: String,
    },
    /// The server gateway exists but has no live instance yet.
    ServerNotInitialized,
    /// The server method ran and threw; the message is the wrapped
    /// exception.
    Application(String),
    /// The request never produced a SOAP/CORBA-level reply.
    Transport(String),
    /// The reply could not be interpreted.
    Protocol(String),
    /// The interface description could not be fetched or parsed.
    Interface(String),
    /// The server shed the request (HTTP 503), optionally hinting when
    /// to retry.
    Overloaded {
        /// The server's `Retry-After` hint, in milliseconds.
        retry_after_ms: Option<u64>,
    },
    /// The call's deadline budget was exhausted (attempts included).
    DeadlineExceeded {
        /// How many attempts were made before the budget ran out.
        attempts: u32,
        /// How much of the deadline budget elapsed, in milliseconds.
        elapsed_ms: u64,
    },
    /// The per-authority circuit breaker is open: the call failed fast
    /// without touching the network.
    CircuitOpen {
        /// The authority whose breaker is open.
        authority: String,
    },
}

impl fmt::Display for CallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallError::StaleMethod { method } => {
                write!(f, "Non existent Method: {method}")
            }
            CallError::ServerNotInitialized => write!(f, "server not initialized"),
            CallError::Application(m) => write!(f, "application exception: {m}"),
            CallError::Transport(m) => write!(f, "transport failure: {m}"),
            CallError::Protocol(m) => write!(f, "protocol error: {m}"),
            CallError::Interface(m) => write!(f, "interface fetch failed: {m}"),
            CallError::Overloaded { retry_after_ms } => match retry_after_ms {
                Some(ms) => write!(f, "server overloaded (retry after {ms}ms)"),
                None => write!(f, "server overloaded"),
            },
            CallError::DeadlineExceeded {
                attempts,
                elapsed_ms,
            } => write!(
                f,
                "call deadline exceeded after {attempts} attempt(s) in {elapsed_ms}ms"
            ),
            CallError::CircuitOpen { authority } => {
                write!(f, "circuit open for {authority}")
            }
        }
    }
}

impl Error for CallError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CallError::StaleMethod { method: "m".into() }
            .to_string()
            .contains("Non existent Method"));
        assert!(CallError::ServerNotInitialized
            .to_string()
            .contains("not initialized"));
        assert!(CallError::Overloaded {
            retry_after_ms: Some(250)
        }
        .to_string()
        .contains("250ms"));
        let deadline = CallError::DeadlineExceeded {
            attempts: 3,
            elapsed_ms: 1200,
        }
        .to_string();
        assert!(deadline.contains("deadline"));
        assert!(deadline.contains("3 attempt"));
        assert!(deadline.contains("1200ms"));
        assert!(CallError::CircuitOpen {
            authority: "mem://a".into()
        }
        .to_string()
        .contains("circuit open"));
    }

    #[test]
    fn error_traits() {
        fn assert_traits<T: Send + Sync + Error + 'static>() {}
        assert_traits::<CallError>();
    }
}
