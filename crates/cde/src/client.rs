//! The Client Development Environment proper: stale-method recovery, the
//! JPie debugger surface, and live stub classes.

use std::sync::Arc;
use std::time::{Duration, Instant};

use jpie::{ClassHandle, JpieDebugger, MethodBuilder, TypeDesc, Value};

use crate::error::CallError;
use crate::resilience::{breaker_for, Backoff, ResiliencePolicy};
use crate::stub::DynamicStub;

/// Per-call options for [`ClientEnvironment::call_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CallOptions {
    /// Whether the operation may be re-sent after a transport failure
    /// whose outcome is unknown (the request may or may not have run).
    /// Only idempotent calls are retried on transport errors.
    pub idempotent: bool,
    /// Overrides the policy's deadline budget for this call.
    pub deadline: Option<Duration>,
}

/// Retry/deadline counters, resolved once — `call_with` is the RMI hot
/// path the Table-1 RTT benchmark measures.
fn rmi_counters() -> &'static (Arc<obs::Counter>, Arc<obs::Counter>) {
    static COUNTERS: std::sync::OnceLock<(Arc<obs::Counter>, Arc<obs::Counter>)> =
        std::sync::OnceLock::new();
    COUNTERS.get_or_init(|| {
        let r = obs::registry();
        (
            r.counter("rmi_retries_total"),
            r.counter("rmi_deadline_exceeded_total"),
        )
    })
}

/// Static error-kind label for span annotations.
fn error_kind(e: &CallError) -> &'static str {
    match e {
        CallError::StaleMethod { .. } => "stale-method",
        CallError::ServerNotInitialized => "server-not-initialized",
        CallError::Application(_) => "application",
        CallError::Transport(_) => "transport",
        CallError::Protocol(_) => "protocol",
        CallError::Interface(_) => "interface",
        CallError::Overloaded { .. } => "overloaded",
        CallError::DeadlineExceeded { .. } => "deadline",
        CallError::CircuitOpen { .. } => "circuit-open",
    }
}

impl CallOptions {
    /// Options for an idempotent operation (retried on transport errors).
    pub fn idempotent() -> CallOptions {
        CallOptions {
            idempotent: true,
            deadline: None,
        }
    }

    /// Sets a per-call deadline override.
    pub fn with_deadline(mut self, deadline: Duration) -> CallOptions {
        self.deadline = Some(deadline);
        self
    }
}

/// The CDE runtime for one client program.
///
/// Wraps remote invocations with the client side of the §6 algorithm:
/// when a call returns the "Non existent Method" exception, the stub's
/// view of the server interface is first updated to the currently
/// published one (which, thanks to the server-side §5.7 forced
/// publication, is at least as recent as the interface the server used to
/// process the call) and only then is the exception surfaced through the
/// JPie debugger — making the interface change "clearly visible" to the
/// developer (Fig 9).
///
/// # Examples
///
/// See the integration tests and `examples/live_calculator.rs`.
#[derive(Debug, Default, Clone)]
pub struct ClientEnvironment {
    debugger: JpieDebugger,
    policy: Arc<ResiliencePolicy>,
}

impl ClientEnvironment {
    /// Creates an environment with a fresh debugger and the default
    /// resilience policy.
    pub fn new() -> ClientEnvironment {
        ClientEnvironment::default()
    }

    /// Creates an environment with an explicit resilience policy
    /// (deadlines, backoff, breaker thresholds) applied to every call
    /// and every stub connected through this environment.
    pub fn with_policy(policy: ResiliencePolicy) -> ClientEnvironment {
        ClientEnvironment {
            debugger: JpieDebugger::default(),
            policy: Arc::new(policy),
        }
    }

    /// The resilience policy in effect.
    pub fn policy(&self) -> &ResiliencePolicy {
        &self.policy
    }

    /// The JPie debugger showing caught remote exceptions.
    pub fn debugger(&self) -> &JpieDebugger {
        &self.debugger
    }

    /// Connects to a SOAP Web Service by its published WSDL URL.
    ///
    /// # Errors
    ///
    /// Fails if the WSDL cannot be fetched or parsed.
    pub fn connect_soap(&self, wsdl_url: &str) -> Result<Arc<DynamicStub>, CallError> {
        Ok(Arc::new(DynamicStub::from_wsdl_with(
            wsdl_url,
            self.policy.clone(),
        )?))
    }

    /// Connects to a CORBA server by its published CORBA-IDL and IOR URLs.
    ///
    /// # Errors
    ///
    /// Fails if either document cannot be fetched or parsed.
    pub fn connect_corba(
        &self,
        idl_url: &str,
        ior_url: &str,
    ) -> Result<Arc<DynamicStub>, CallError> {
        Ok(Arc::new(DynamicStub::from_idl_with(
            idl_url,
            ior_url,
            self.policy.clone(),
        )?))
    }

    /// Invokes a remote method with the full §6 client-side protocol
    /// under the environment's resilience policy.
    ///
    /// The call is treated as non-idempotent: transport failures are not
    /// retried (the request may have executed) unless the server has
    /// advertised a reply cache — in which case the retry redelivers the
    /// same call id and a duplicate is served from the cache instead of
    /// re-executing. 503 load-shed responses are retried regardless (the
    /// request never reached the SOAP engine), and the per-authority
    /// circuit breaker applies.
    ///
    /// # Errors
    ///
    /// On [`CallError::StaleMethod`], the stub has already been refreshed
    /// to the currently published interface and a debugger entry (with a
    /// *try again* thunk re-executing this call) has been recorded.
    pub fn call(
        &self,
        stub: &Arc<DynamicStub>,
        method: &str,
        args: &[Value],
    ) -> Result<Value, CallError> {
        self.call_with(stub, method, args, CallOptions::default())
    }

    /// Invokes an idempotent remote method: like
    /// [`ClientEnvironment::call`], plus backoff retries on transport
    /// failures within the deadline budget.
    ///
    /// # Errors
    ///
    /// Same as [`ClientEnvironment::call_with`].
    pub fn call_idempotent(
        &self,
        stub: &Arc<DynamicStub>,
        method: &str,
        args: &[Value],
    ) -> Result<Value, CallError> {
        self.call_with(stub, method, args, CallOptions::idempotent())
    }

    /// Invokes a remote method with explicit [`CallOptions`].
    ///
    /// Every attempt runs under the policy's per-request timeout; the
    /// whole call (attempts and backoff sleeps included) runs under the
    /// deadline budget. Transport failures are retried with exponential
    /// backoff and seeded jitter when `opts.idempotent` *or* when the
    /// server has advertised a reply cache (every attempt carries the
    /// same call id, so a redelivered duplicate returns the cached reply
    /// instead of re-executing — at-most-once execution, and with the
    /// retries, exactly-once). Garbled replies ([`CallError::Protocol`])
    /// are likewise retried under an advertised cache: the request may
    /// have executed, and the redelivery fetches the stored reply. 503
    /// load-shed responses are retried regardless (honoring the server's
    /// `Retry-After` hint over the backoff schedule). Consecutive
    /// transport failures trip the authority's circuit breaker, after
    /// which calls fail fast with [`CallError::CircuitOpen`] until a
    /// half-open probe succeeds.
    ///
    /// # Errors
    ///
    /// All the [`CallError`] variants; [`CallError::DeadlineExceeded`]
    /// when the budget is exhausted before an attempt could run.
    pub fn call_with(
        &self,
        stub: &Arc<DynamicStub>,
        method: &str,
        args: &[Value],
        opts: CallOptions,
    ) -> Result<Value, CallError> {
        let started = Instant::now();
        let deadline = started + opts.deadline.unwrap_or(self.policy.deadline);
        let counters = rmi_counters();
        let authority = stub.authority();
        let breaker = breaker_for(&authority, &self.policy);
        let mut backoff = Backoff::new(&self.policy);
        let mut attempt = 0u32;
        // One logical call, one id: every retry below redelivers the
        // same id, which is what lets a caching server deduplicate.
        let call_id = obs::CallId::fresh();
        // One logical call, one trace: the root span completes (and is
        // tail-sampled) when this guard drops, however the loop exits.
        let root = obs::tracectx::client_root("client.call", Some(call_id));
        root.annotate("method", obs::tracectx::AnnValue::Owned(method.to_string()));
        loop {
            attempt += 1;
            if !breaker.try_acquire() {
                root.fail("circuit-open");
                return Err(CallError::CircuitOpen {
                    authority: authority.to_string(),
                });
            }
            // Each transport attempt is its own child span; its id is
            // what rides the wire, so server spans parent under the
            // attempt that actually carried them.
            let attempt_span = obs::tracectx::child("client.attempt");
            attempt_span.annotate("attempt", obs::tracectx::AnnValue::U64(u64::from(attempt)));
            let retry_wait = match self.call_once(stub, method, args, Some(call_id)) {
                Ok(v) => {
                    breaker.on_success();
                    if attempt > 1 {
                        root.annotate("attempts", obs::tracectx::AnnValue::U64(u64::from(attempt)));
                    }
                    return Ok(v);
                }
                Err(CallError::Transport(m)) => {
                    attempt_span.fail("transport");
                    breaker.on_failure();
                    // A non-idempotent call whose outcome is unknown is
                    // only safe to re-send when the server deduplicates
                    // by call id.
                    if !(opts.idempotent || stub.server_caches())
                        || attempt >= self.policy.max_attempts
                    {
                        root.fail("transport");
                        return Err(CallError::Transport(m));
                    }
                    if attempt >= 2 {
                        // Two consecutive transport failures suggest the
                        // endpoint is gone, not merely flaky — and a
                        // sharded deployment answers exactly that case
                        // by republishing the interface documents at a
                        // promoted authority. Refetch before retrying so
                        // the next attempt targets wherever the class
                        // lives *now*; if the documents are unchanged
                        // this is one cheap 304.
                        if stub.refresh().is_ok() {
                            obs::registry()
                                .counter("cde_failover_refetches_total")
                                .inc();
                        }
                    }
                    backoff.next_delay()
                }
                Err(CallError::Protocol(_))
                    if stub.server_caches() && attempt < self.policy.max_attempts =>
                {
                    // The reply arrived but was garbled — the method may
                    // well have executed. Redelivering the same call id
                    // fetches the cached reply rather than re-running it.
                    // The breaker is left untouched: a garbled reply is
                    // not proof of health, and an endpoint that garbles
                    // *every* reply must not keep resetting the breaker
                    // exactly while it misbehaves.
                    attempt_span.fail("protocol");
                    obs::registry().counter("rmi_protocol_retries_total").inc();
                    backoff.next_delay()
                }
                Err(CallError::Overloaded { retry_after_ms }) => {
                    // The HTTP layer shed the request before the SOAP
                    // engine saw it: the server is alive (not a breaker
                    // failure) and a resend is safe even for
                    // non-idempotent calls.
                    attempt_span.fail("overloaded");
                    breaker.on_success();
                    if attempt >= self.policy.max_attempts {
                        root.fail("overloaded");
                        return Err(CallError::Overloaded { retry_after_ms });
                    }
                    retry_after_ms
                        .map(Duration::from_millis)
                        .unwrap_or_else(|| backoff.next_delay())
                }
                Err(other) => {
                    // A well-formed SOAP/CORBA-level reply arrived: the
                    // transport to the authority works. Garbled replies
                    // (`Protocol`) count as neither success nor failure.
                    if matches!(
                        other,
                        CallError::StaleMethod { .. }
                            | CallError::ServerNotInitialized
                            | CallError::Application(_)
                    ) {
                        breaker.on_success();
                    }
                    let kind = error_kind(&other);
                    attempt_span.fail(kind);
                    root.fail(kind);
                    return Err(other);
                }
            };
            drop(attempt_span);
            if Instant::now() + retry_wait >= deadline {
                counters.1.inc();
                root.fail("deadline");
                return Err(CallError::DeadlineExceeded {
                    attempts: attempt,
                    elapsed_ms: started.elapsed().as_millis() as u64,
                });
            }
            counters.0.inc();
            obs::trace::verbose_event(
                "cde::client",
                "retry",
                format!("method={method} attempt={attempt} wait={retry_wait:?}"),
            );
            std::thread::sleep(retry_wait);
        }
    }

    /// One attempt of the §6 protocol, without retries.
    fn call_once(
        &self,
        stub: &Arc<DynamicStub>,
        method: &str,
        args: &[Value],
        call_id: Option<obs::CallId>,
    ) -> Result<Value, CallError> {
        match stub.call_raw_with_id(method, args, call_id) {
            Ok(v) => Ok(v),
            Err(CallError::StaleMethod { method: m }) => {
                // §6: update the client view to the currently published
                // interface *before* surfacing the exception.
                obs::registry().counter("cde_stale_recoveries_total").inc();
                let _ = stub.refresh();
                obs::trace::event(
                    "cde::client",
                    "stale-recovery",
                    format!("method={m} view-version={}", stub.interface_version()),
                );
                let retry_stub = stub.clone();
                let retry_method = m.clone();
                let retry_args = args.to_vec();
                self.debugger.report(
                    &m,
                    "Non existent Method",
                    Arc::new(move || {
                        retry_stub
                            .call_raw(&retry_method, &retry_args)
                            .map_err(|e| jpie::JpieError::Exception(e.to_string()))
                    }),
                );
                Err(CallError::StaleMethod { method: m })
            }
            Err(other) => Err(other),
        }
    }

    /// Materializes the stub's current interface view as a live dynamic
    /// class whose methods forward to the server — CDE's "dynamic server
    /// methods within dynamic clients".
    ///
    /// Call [`ClientEnvironment::sync_bound_class`] after the interface
    /// changes to mirror additions, mutations and deletions into the
    /// class.
    pub fn bind_to_class(&self, stub: &Arc<DynamicStub>) -> ClassHandle {
        let class = ClassHandle::new(format!("{}Stub", "Remote"));
        self.sync_bound_class(&class, stub);
        class
    }

    /// Reconciles a bound class with the stub's current interface view:
    /// adds missing methods, removes vanished ones, and replaces methods
    /// whose signature changed. Returns `(added, removed, mutated)`.
    pub fn sync_bound_class(
        &self,
        class: &ClassHandle,
        stub: &Arc<DynamicStub>,
    ) -> (usize, usize, usize) {
        let remote_ops = stub.operations();
        let mut added = 0;
        let mut removed = 0;
        let mut mutated = 0;

        // Remove or mark-for-replace local methods.
        for sig in class.signatures() {
            match remote_ops.iter().find(|o| o.name == sig.name) {
                None => {
                    let _ = class.remove_method(sig.id);
                    removed += 1;
                }
                Some(op) => {
                    let local_params: Vec<(String, TypeDesc)> = sig
                        .params
                        .iter()
                        .map(|(_, n, t)| (n.clone(), t.clone()))
                        .collect();
                    if local_params != op.params || sig.return_ty != op.return_ty {
                        let _ = class.remove_method(sig.id);
                        self.add_forwarding_method(class, stub, op);
                        mutated += 1;
                    }
                }
            }
        }
        // Add new remote operations.
        for op in &remote_ops {
            if class.find_method(&op.name).is_none() {
                self.add_forwarding_method(class, stub, op);
                added += 1;
            }
        }
        (added, removed, mutated)
    }

    fn add_forwarding_method(
        &self,
        class: &ClassHandle,
        stub: &Arc<DynamicStub>,
        op: &crate::stub::Operation,
    ) {
        let mut builder = MethodBuilder::new(&op.name, op.return_ty.clone());
        for (pname, pty) in &op.params {
            builder = builder.param(pname, pty.clone());
        }
        let stub = stub.clone();
        let env = self.clone();
        let method = op.name.clone();
        builder = builder.body_native(move |_fields, args| {
            // Forwarding body: remote call through the full CDE protocol.
            let stub_arc = stub.clone();
            env.call(&stub_arc, &method, args)
                .map_err(|e| jpie::JpieError::Exception(e.to_string()))
        });
        let _ = class.add_method(builder);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn environment_builds_with_empty_debugger() {
        let env = ClientEnvironment::new();
        assert!(env.debugger().entries().is_empty());
    }
}
