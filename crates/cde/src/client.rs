//! The Client Development Environment proper: stale-method recovery, the
//! JPie debugger surface, and live stub classes.

use std::sync::Arc;

use jpie::{ClassHandle, JpieDebugger, MethodBuilder, TypeDesc, Value};

use crate::error::CallError;
use crate::stub::DynamicStub;

/// The CDE runtime for one client program.
///
/// Wraps remote invocations with the client side of the §6 algorithm:
/// when a call returns the "Non existent Method" exception, the stub's
/// view of the server interface is first updated to the currently
/// published one (which, thanks to the server-side §5.7 forced
/// publication, is at least as recent as the interface the server used to
/// process the call) and only then is the exception surfaced through the
/// JPie debugger — making the interface change "clearly visible" to the
/// developer (Fig 9).
///
/// # Examples
///
/// See the integration tests and `examples/live_calculator.rs`.
#[derive(Debug, Default, Clone)]
pub struct ClientEnvironment {
    debugger: JpieDebugger,
}

impl ClientEnvironment {
    /// Creates an environment with a fresh debugger.
    pub fn new() -> ClientEnvironment {
        ClientEnvironment::default()
    }

    /// The JPie debugger showing caught remote exceptions.
    pub fn debugger(&self) -> &JpieDebugger {
        &self.debugger
    }

    /// Connects to a SOAP Web Service by its published WSDL URL.
    ///
    /// # Errors
    ///
    /// Fails if the WSDL cannot be fetched or parsed.
    pub fn connect_soap(&self, wsdl_url: &str) -> Result<Arc<DynamicStub>, CallError> {
        Ok(Arc::new(DynamicStub::from_wsdl(wsdl_url)?))
    }

    /// Connects to a CORBA server by its published CORBA-IDL and IOR URLs.
    ///
    /// # Errors
    ///
    /// Fails if either document cannot be fetched or parsed.
    pub fn connect_corba(
        &self,
        idl_url: &str,
        ior_url: &str,
    ) -> Result<Arc<DynamicStub>, CallError> {
        Ok(Arc::new(DynamicStub::from_idl(idl_url, ior_url)?))
    }

    /// Invokes a remote method with the full §6 client-side protocol.
    ///
    /// # Errors
    ///
    /// On [`CallError::StaleMethod`], the stub has already been refreshed
    /// to the currently published interface and a debugger entry (with a
    /// *try again* thunk re-executing this call) has been recorded.
    pub fn call(
        &self,
        stub: &Arc<DynamicStub>,
        method: &str,
        args: &[Value],
    ) -> Result<Value, CallError> {
        match stub.call_raw(method, args) {
            Ok(v) => Ok(v),
            Err(CallError::StaleMethod { method: m }) => {
                // §6: update the client view to the currently published
                // interface *before* surfacing the exception.
                obs::registry().counter("cde_stale_recoveries_total").inc();
                let _ = stub.refresh();
                obs::trace::event(
                    "cde::client",
                    "stale-recovery",
                    format!("method={m} view-version={}", stub.interface_version()),
                );
                let retry_stub = stub.clone();
                let retry_method = m.clone();
                let retry_args = args.to_vec();
                self.debugger.report(
                    &m,
                    "Non existent Method",
                    Arc::new(move || {
                        retry_stub
                            .call_raw(&retry_method, &retry_args)
                            .map_err(|e| jpie::JpieError::Exception(e.to_string()))
                    }),
                );
                Err(CallError::StaleMethod { method: m })
            }
            Err(other) => Err(other),
        }
    }

    /// Materializes the stub's current interface view as a live dynamic
    /// class whose methods forward to the server — CDE's "dynamic server
    /// methods within dynamic clients".
    ///
    /// Call [`ClientEnvironment::sync_bound_class`] after the interface
    /// changes to mirror additions, mutations and deletions into the
    /// class.
    pub fn bind_to_class(&self, stub: &Arc<DynamicStub>) -> ClassHandle {
        let class = ClassHandle::new(format!("{}Stub", "Remote"));
        self.sync_bound_class(&class, stub);
        class
    }

    /// Reconciles a bound class with the stub's current interface view:
    /// adds missing methods, removes vanished ones, and replaces methods
    /// whose signature changed. Returns `(added, removed, mutated)`.
    pub fn sync_bound_class(
        &self,
        class: &ClassHandle,
        stub: &Arc<DynamicStub>,
    ) -> (usize, usize, usize) {
        let remote_ops = stub.operations();
        let mut added = 0;
        let mut removed = 0;
        let mut mutated = 0;

        // Remove or mark-for-replace local methods.
        for sig in class.signatures() {
            match remote_ops.iter().find(|o| o.name == sig.name) {
                None => {
                    let _ = class.remove_method(sig.id);
                    removed += 1;
                }
                Some(op) => {
                    let local_params: Vec<(String, TypeDesc)> = sig
                        .params
                        .iter()
                        .map(|(_, n, t)| (n.clone(), t.clone()))
                        .collect();
                    if local_params != op.params || sig.return_ty != op.return_ty {
                        let _ = class.remove_method(sig.id);
                        self.add_forwarding_method(class, stub, op);
                        mutated += 1;
                    }
                }
            }
        }
        // Add new remote operations.
        for op in &remote_ops {
            if class.find_method(&op.name).is_none() {
                self.add_forwarding_method(class, stub, op);
                added += 1;
            }
        }
        (added, removed, mutated)
    }

    fn add_forwarding_method(
        &self,
        class: &ClassHandle,
        stub: &Arc<DynamicStub>,
        op: &crate::stub::Operation,
    ) {
        let mut builder = MethodBuilder::new(&op.name, op.return_ty.clone());
        for (pname, pty) in &op.params {
            builder = builder.param(pname, pty.clone());
        }
        let stub = stub.clone();
        let env = self.clone();
        let method = op.name.clone();
        builder = builder.body_native(move |_fields, args| {
            // Forwarding body: remote call through the full CDE protocol.
            let stub_arc = stub.clone();
            env.call(&stub_arc, &method, args)
                .map_err(|e| jpie::JpieError::Exception(e.to_string()))
        });
        let _ = class.add_method(builder);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn environment_builds_with_empty_debugger() {
        let env = ClientEnvironment::new();
        assert!(env.debugger().entries().is_empty());
    }
}
