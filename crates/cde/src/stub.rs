//! Dynamic client stubs over the SOAP and CORBA backends.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use corba::{CorbaError, IdlModule, Ior, OrbConnection};
use httpd::{ConnectionPool, HttpClient};
use jpie::{TypeDesc, Value};
use obs::sync::{Mutex, RwLock};
use soap::{SoapFault, SoapResponse, WsdlDocument};

use crate::error::CallError;
use crate::fetch::{DocFetcher, Fetched};
use crate::resilience::ResiliencePolicy;

/// One remote operation as the client currently sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    /// Operation name.
    pub name: String,
    /// `(name, type)` of each parameter.
    pub params: Vec<(String, TypeDesc)>,
    /// Return type.
    pub return_ty: TypeDesc,
}

/// The client's current view of the server interface.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct InterfaceView {
    operations: Vec<Operation>,
    version: u64,
}

/// The SOAP endpoint split once at refresh time: `authority` keys the
/// connection pool and circuit breaker, `path` goes on the request
/// line. `Arc<str>` so per-call reads are a refcount bump, not a
/// `String` clone.
#[derive(Debug, Clone)]
struct SoapRoute {
    authority: Arc<str>,
    path: Arc<str>,
}

#[derive(Debug)]
enum Backend {
    Soap {
        wsdl_url: String,
        namespace: RwLock<String>,
        route: RwLock<SoapRoute>,
    },
    Corba {
        idl_url: String,
        ior_url: String,
        ior: RwLock<Option<Ior>>,
        /// Cached call-routing authority (the IOR's address once one is
        /// loaded, the IOR document's authority before that).
        authority: RwLock<Arc<str>>,
        /// One keep-alive GIOP connection, reused across calls. Taken
        /// out for the duration of a call; concurrent callers simply
        /// connect fresh. Boxed: the connection carries its marshalling
        /// buffers, which would otherwise dominate the enum's size.
        conn: Mutex<Option<Box<OrbConnection>>>,
    },
}

/// A live, technology-independent client stub.
///
/// The stub downloads the published interface description (the "WSDL
/// compiler" / "IDL compiler" of Figs 1-2, re-runnable at any time via
/// [`DynamicStub::refresh`]) and invokes operations dynamically.
#[derive(Debug)]
pub struct DynamicStub {
    backend: Backend,
    view: RwLock<InterfaceView>,
    /// Keep-alive connection pool for SOAP calls: steady-state calls
    /// reuse a parked connection instead of a connect per call.
    pool: ConnectionPool,
    /// Conditional keep-alive fetcher for interface documents: repeat
    /// polls cost a `304` on a reused connection, not a re-download.
    fetcher: DocFetcher,
    policy: Arc<ResiliencePolicy>,
    /// Whether the *most recent* reply advertised a server-side reply
    /// cache (the SOAP `X-SDE-Reply-Cache` header or the GIOP
    /// reply-cache service context). While set, transport-failed calls
    /// are safe to retry under the same call id even when
    /// non-idempotent: a redelivery is served from the cache instead of
    /// re-executing. Tracking the latest reply (rather than latching the
    /// first advertisement forever) matters when the same authority is
    /// later served by a server *without* a reply cache — e.g. a restart
    /// with an older build rebinding the mem-registry address — whose
    /// replies must immediately revoke the retry licence.
    server_caches: AtomicBool,
}

impl DynamicStub {
    /// Builds a SOAP stub from the published WSDL at `wsdl_url`
    /// (Fig 1 step 1).
    ///
    /// # Errors
    ///
    /// Fails if the WSDL cannot be fetched or parsed.
    pub fn from_wsdl(wsdl_url: &str) -> Result<DynamicStub, CallError> {
        DynamicStub::from_wsdl_with(wsdl_url, Arc::new(ResiliencePolicy::default()))
    }

    /// Like [`DynamicStub::from_wsdl`] with an explicit resilience
    /// policy governing request timeouts and document-fetch retries.
    ///
    /// # Errors
    ///
    /// Fails if the WSDL cannot be fetched or parsed.
    pub fn from_wsdl_with(
        wsdl_url: &str,
        policy: Arc<ResiliencePolicy>,
    ) -> Result<DynamicStub, CallError> {
        let stub = DynamicStub {
            backend: Backend::Soap {
                wsdl_url: wsdl_url.to_string(),
                namespace: RwLock::new(String::new()),
                route: RwLock::new(SoapRoute {
                    authority: Arc::from(""),
                    path: Arc::from("/"),
                }),
            },
            view: RwLock::new(InterfaceView::default()),
            pool: ConnectionPool::new(HttpClient::new().with_read_timeout(policy.request_timeout)),
            fetcher: DocFetcher::with_policy(policy.clone()),
            policy,
            server_caches: AtomicBool::new(false),
        };
        stub.refresh()?;
        Ok(stub)
    }

    /// Builds a CORBA stub from the published CORBA-IDL and IOR documents
    /// (Fig 2 step 1).
    ///
    /// # Errors
    ///
    /// Fails if either document cannot be fetched or parsed.
    pub fn from_idl(idl_url: &str, ior_url: &str) -> Result<DynamicStub, CallError> {
        DynamicStub::from_idl_with(idl_url, ior_url, Arc::new(ResiliencePolicy::default()))
    }

    /// Like [`DynamicStub::from_idl`] with an explicit resilience
    /// policy governing request timeouts and document-fetch retries.
    ///
    /// # Errors
    ///
    /// Fails if either document cannot be fetched or parsed.
    pub fn from_idl_with(
        idl_url: &str,
        ior_url: &str,
        policy: Arc<ResiliencePolicy>,
    ) -> Result<DynamicStub, CallError> {
        let stub = DynamicStub {
            backend: Backend::Corba {
                idl_url: idl_url.to_string(),
                ior_url: ior_url.to_string(),
                ior: RwLock::new(None),
                authority: RwLock::new(split_authority(ior_url).0.into()),
                conn: Mutex::new(None),
            },
            view: RwLock::new(InterfaceView::default()),
            pool: ConnectionPool::new(HttpClient::new().with_read_timeout(policy.request_timeout)),
            fetcher: DocFetcher::with_policy(policy.clone()),
            policy,
            server_caches: AtomicBool::new(false),
        };
        stub.refresh()?;
        Ok(stub)
    }

    /// Re-fetches the published interface description and replaces the
    /// client view (the §6 "client view ... is updated to the currently
    /// published one").
    ///
    /// # Errors
    ///
    /// Fails if the document cannot be fetched or parsed; the old view is
    /// kept in that case.
    pub fn refresh(&self) -> Result<(), CallError> {
        obs::registry().counter("cde_refreshes_total").inc();
        let refreshed = self.refresh_inner();
        if refreshed.is_ok() {
            obs::trace::verbose_event(
                "cde::stub",
                "refresh",
                format!("version={}", self.view.read().version),
            );
        } else {
            obs::registry().counter("cde_refresh_failures_total").inc();
        }
        refreshed
    }

    fn refresh_inner(&self) -> Result<(), CallError> {
        match &self.backend {
            Backend::Soap {
                wsdl_url,
                namespace,
                route,
            } => {
                // 304: the parsed view already reflects the published
                // document — skip the re-parse entirely. Stale: the
                // authority's breaker is open, keep the cached view.
                let body = match self.fetch(wsdl_url)? {
                    Fetched::NotModified | Fetched::Stale => return Ok(()),
                    Fetched::New(body) => body,
                };
                let doc = WsdlDocument::parse(&body).map_err(|e| {
                    // The validator must not outlive a document that was
                    // never applied to the view.
                    self.fetcher.invalidate(wsdl_url);
                    CallError::Interface(e.to_string())
                })?;
                let (authority, path) = split_authority(&doc.endpoint);
                {
                    let mut route = route.write();
                    if &*route.authority != authority.as_str() {
                        // The endpoint moved: idle connections to the
                        // old authority can never serve it again.
                        self.pool.purge(&route.authority);
                    }
                    *route = SoapRoute {
                        authority: authority.into(),
                        path: path.into(),
                    };
                }
                *namespace.write() = doc.namespace();
                *self.view.write() = InterfaceView {
                    operations: doc
                        .operations
                        .iter()
                        .map(|o| Operation {
                            name: o.name.clone(),
                            params: o.params.clone(),
                            return_ty: o.return_ty.clone(),
                        })
                        .collect(),
                    version: doc.version,
                };
            }
            Backend::Corba {
                idl_url,
                ior_url,
                ior,
                authority,
                conn,
            } => {
                // The IDL and the IOR revalidate independently: an
                // unchanged document costs a 304, not a re-parse.
                if let Fetched::New(idl_body) = self.fetch(idl_url)? {
                    let module = IdlModule::parse(&idl_body).map_err(|e| {
                        self.fetcher.invalidate(idl_url);
                        CallError::Interface(e.to_string())
                    })?;
                    let operations = module
                        .primary_interface()
                        .map(|iface| {
                            iface
                                .operations
                                .iter()
                                .map(|o| Operation {
                                    name: o.name.clone(),
                                    params: o.params.clone(),
                                    return_ty: o.return_ty.clone(),
                                })
                                .collect()
                        })
                        .unwrap_or_default();
                    *self.view.write() = InterfaceView {
                        operations,
                        version: module.version,
                    };
                }
                if let Fetched::New(ior_body) = self.fetch(ior_url)? {
                    let parsed_ior = Ior::parse(&ior_body).map_err(|e| {
                        self.fetcher.invalidate(ior_url);
                        CallError::Interface(e.to_string())
                    })?;
                    *authority.write() = Arc::from(parsed_ior.address.as_str());
                    *ior.write() = Some(parsed_ior);
                    // A connection cached against the old IOR may point
                    // at a dead or relocated server — drop it.
                    *conn.lock() = None;
                }
            }
        }
        Ok(())
    }

    fn fetch(&self, url: &str) -> Result<Fetched, CallError> {
        self.fetcher
            .fetch(url)
            .map_err(|e| CallError::Interface(e.to_string()))
    }

    /// The operations in the client's current view.
    pub fn operations(&self) -> Vec<Operation> {
        self.view.read().operations.clone()
    }

    /// Looks up one operation in the current view.
    pub fn operation(&self, name: &str) -> Option<Operation> {
        self.view
            .read()
            .operations
            .iter()
            .find(|o| o.name == name)
            .cloned()
    }

    /// The interface version of the client's current view — the quantity
    /// the §6 recency guarantee is stated over.
    pub fn interface_version(&self) -> u64 {
        self.view.read().version
    }

    /// The authority (`scheme://host`) that calls are routed to — the key
    /// under which the circuit breaker for this stub is registered.
    ///
    /// The value is parsed once per refresh and shared; a call costs a
    /// refcount bump, not a fresh `String`.
    pub fn authority(&self) -> Arc<str> {
        match &self.backend {
            Backend::Soap { route, .. } => route.read().authority.clone(),
            Backend::Corba { authority, .. } => authority.read().clone(),
        }
    }

    /// Whether the most recent reply on this stub advertised a
    /// server-side reply cache (re-negotiated on every decoded reply, so
    /// a non-caching server taking over the authority revokes the retry
    /// licence immediately).
    pub fn server_caches(&self) -> bool {
        self.server_caches.load(Ordering::Relaxed)
    }

    /// Drops every parked connection (the SOAP keep-alive pool or the
    /// persistent CORBA connection). The next call connects fresh.
    ///
    /// Long-lived parked connections bypass anything hooked into
    /// connection establishment — most notably a fault plan installed
    /// mid-session — so chaos tooling calls this after installing a plan
    /// to make the subsequent traffic actually roll the dice.
    pub fn drop_pooled_connections(&self) {
        self.pool.purge_all();
        if let Backend::Corba { conn, .. } = &self.backend {
            *conn.lock() = None;
        }
    }

    /// Invokes `method` with positional `args`, without any stale-method
    /// recovery (that lives in
    /// [`crate::ClientEnvironment::call`]).
    ///
    /// # Errors
    ///
    /// All the [`CallError`] variants.
    pub fn call_raw(&self, method: &str, args: &[Value]) -> Result<Value, CallError> {
        self.call_raw_with_id(method, args, None)
    }

    /// Like [`DynamicStub::call_raw`], but attaches a logical call id to
    /// the request (SOAP header / GIOP service context) so a caching
    /// server can recognize transport-level redeliveries of the same
    /// call.
    ///
    /// # Errors
    ///
    /// All the [`CallError`] variants.
    pub fn call_raw_with_id(
        &self,
        method: &str,
        args: &[Value],
        call_id: Option<obs::CallId>,
    ) -> Result<Value, CallError> {
        match &self.backend {
            Backend::Soap {
                namespace, route, ..
            } => {
                thread_local! {
                    /// Per-thread SOAP encode buffer, recycled through
                    /// the request body and back: a warm call encodes
                    /// the envelope with zero heap allocations.
                    static ENCODE_BUF: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
                }
                let mut body = ENCODE_BUF.with(|b| std::mem::take(&mut *b.borrow_mut()));
                // The caller's active span (the cde attempt span) rides
                // the envelope so server spans parent under it.
                let trace = obs::tracectx::current();
                let soap_action;
                {
                    // Parameter names come from the client's current
                    // view — exactly what a live client knows.
                    let ns = namespace.read();
                    let view = self.view.read();
                    match view.operations.iter().find(|o| o.name == method) {
                        Some(op) if op.params.len() >= args.len() => {
                            soap::encode_request_traced_into(
                                &ns,
                                method,
                                op.params.iter().map(|(n, _)| n.as_str()).zip(args),
                                call_id,
                                trace,
                                &mut body,
                            );
                        }
                        op => {
                            // The view names fewer parameters than were
                            // passed (or the method is unknown): fall
                            // back to positional names.
                            let names: Vec<String> =
                                (0..args.len()).map(|i| format!("arg{i}")).collect();
                            soap::encode_request_traced_into(
                                &ns,
                                method,
                                args.iter().enumerate().map(|(i, v)| {
                                    let name = op
                                        .and_then(|o| o.params.get(i))
                                        .map_or(names[i].as_str(), |(n, _)| n.as_str());
                                    (name, v)
                                }),
                                call_id,
                                trace,
                                &mut body,
                            );
                        }
                    }
                    // Axis-style SOAPAction header identifying the
                    // operation.
                    soap_action = format!("\"{}#{}\"", &*ns, method);
                }
                let route = route.read().clone();
                let mut http_req = httpd::Request::post(route.path.to_string(), body, "text/xml");
                http_req.headers_mut().set("SOAPAction", soap_action);
                let sent = self.pool.send(&route.authority, &http_req);
                // Recycle the encode buffer whatever the outcome.
                ENCODE_BUF.with(|b| *b.borrow_mut() = http_req.into_body());
                let resp = sent.map_err(|e| CallError::Transport(e.to_string()))?;
                if resp.status() == 503 {
                    // Load shed by the HTTP layer before the SOAP engine
                    // saw the request — safe to retry, hint included.
                    // Says nothing about the reply cache either way, so
                    // the advertisement state is left untouched.
                    return Err(CallError::Overloaded {
                        retry_after_ms: resp.retry_after().map(|d| d.as_millis() as u64),
                    });
                }
                // Trust the most recent reply: a server at this
                // authority that stops advertising (restart with an
                // older build) revokes the non-idempotent retry licence
                // with its first reply.
                self.server_caches.store(
                    resp.headers().get(soap::REPLY_CACHE_HEADER).is_some(),
                    Ordering::Relaxed,
                );
                let parsed = soap::decode_response(&resp.body_str())
                    .map_err(|e| CallError::Protocol(e.to_string()))?;
                match parsed {
                    SoapResponse::Ok(v) => Ok(v),
                    SoapResponse::Fault(f) => Err(fault_to_error(method, &f)),
                }
            }
            Backend::Corba { ior, conn, .. } => {
                let Some(ior) = ior.read().clone() else {
                    return Err(CallError::Interface("no IOR loaded".into()));
                };
                // Take the cached keep-alive connection out for the
                // duration of the call; a concurrent caller finds the
                // slot empty and connects fresh.
                let mut outcome = match conn.lock().take() {
                    Some(mut c) => match c.call_with_id(method, args, call_id) {
                        // The parked connection may have died while idle
                        // (server restart, idle timeout): retry once on
                        // a fresh socket before reporting failure.
                        Err(CorbaError::Transport(_)) => None,
                        out => Some((c, out)),
                    },
                    None => None,
                };
                if outcome.is_none() {
                    let mut c = Box::new(
                        OrbConnection::connect_with_timeout(
                            &ior,
                            Some(self.policy.request_timeout),
                        )
                        .map_err(|e| corba_to_error(method, e))?,
                    );
                    let out = c.call_with_id(method, args, call_id);
                    outcome = Some((c, out));
                }
                let (c, out) = outcome.expect("connection outcome");
                // Re-negotiate the reply-cache advertisement from the
                // most recent decoded reply (the connection-level flag
                // reflects what this server actually sent). Transport
                // and MARSHAL outcomes decoded no trustworthy reply, so
                // they leave the previous advertisement in place — in
                // particular, a lost-reply fault must not revoke the
                // very licence that makes its retry safe.
                if !matches!(
                    out,
                    Err(CorbaError::Transport(_))
                        | Err(CorbaError::System(corba::SystemExceptionKind::Marshal, _))
                ) {
                    self.server_caches
                        .store(c.peer_caches_replies(), Ordering::Relaxed);
                }
                match out {
                    Ok(v) => {
                        *conn.lock() = Some(c);
                        Ok(v)
                    }
                    Err(e) => {
                        // Server-level exceptions arrive over a healthy
                        // connection — park it. Transport failures mean
                        // the socket is gone, and a MARSHAL failure means
                        // the byte stream may be desynced mid-frame:
                        // parking either would poison every later call.
                        if !matches!(
                            e,
                            CorbaError::Transport(_)
                                | CorbaError::System(corba::SystemExceptionKind::Marshal, _)
                        ) {
                            *conn.lock() = Some(c);
                        }
                        Err(corba_to_error(method, e))
                    }
                }
            }
        }
    }
}

/// Splits `scheme://authority/path` into (`scheme://authority`, `/path`).
fn split_authority(url: &str) -> (String, String) {
    if let Some(scheme_end) = url.find("://") {
        let rest = &url[scheme_end + 3..];
        if let Some(slash) = rest.find('/') {
            return (
                url[..scheme_end + 3 + slash].to_string(),
                rest[slash..].to_string(),
            );
        }
    }
    (url.to_string(), "/".to_string())
}

fn fault_to_error(method: &str, fault: &SoapFault) -> CallError {
    if fault.is_non_existent_method() {
        CallError::StaleMethod {
            method: method.to_string(),
        }
    } else if fault.fault_string == "Server not initialized" {
        CallError::ServerNotInitialized
    } else if fault.fault_string == "Application Exception" {
        CallError::Application(fault.detail.clone().unwrap_or_default())
    } else {
        CallError::Protocol(fault.to_string())
    }
}

fn corba_to_error(method: &str, error: CorbaError) -> CallError {
    if error.is_non_existent_method() {
        return CallError::StaleMethod {
            method: method.to_string(),
        };
    }
    match error {
        CorbaError::System(corba::SystemExceptionKind::ObjectNotExist, _) => {
            CallError::ServerNotInitialized
        }
        // TRANSIENT is CORBA's "not executed, try again later" — the
        // wire-level twin of HTTP 503. A draining or duplicate-guarding
        // ORB answers it before entering the servant, so retrying is
        // always safe regardless of idempotency; an embedded
        // `retry_after_ms=N` hint paces the retry exactly like the SOAP
        // `Retry-After` header does.
        CorbaError::System(corba::SystemExceptionKind::Transient, reason) => {
            CallError::Overloaded {
                retry_after_ms: parse_retry_after_ms(&reason),
            }
        }
        CorbaError::User { message, .. } => CallError::Application(message),
        CorbaError::Transport(m) => CallError::Transport(m),
        other => CallError::Protocol(other.to_string()),
    }
}

/// Extracts a `retry_after_ms=N` pacing hint from a TRANSIENT reason.
fn parse_retry_after_ms(reason: &str) -> Option<u64> {
    let rest = &reason[reason.find("retry_after_ms=")? + "retry_after_ms=".len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soap_fault_mapping() {
        assert_eq!(
            fault_to_error("m", &SoapFault::non_existent_method("m")),
            CallError::StaleMethod { method: "m".into() }
        );
        assert_eq!(
            fault_to_error("m", &SoapFault::server_not_initialized()),
            CallError::ServerNotInitialized
        );
        assert_eq!(
            fault_to_error("m", &SoapFault::application_exception("boom")),
            CallError::Application("boom".into())
        );
        assert!(matches!(
            fault_to_error("m", &SoapFault::malformed_request("x")),
            CallError::Protocol(_)
        ));
    }

    #[test]
    fn corba_error_mapping() {
        assert_eq!(
            corba_to_error("m", CorbaError::non_existent_method("m")),
            CallError::StaleMethod { method: "m".into() }
        );
        assert_eq!(
            corba_to_error(
                "m",
                CorbaError::system(corba::SystemExceptionKind::ObjectNotExist, "x")
            ),
            CallError::ServerNotInitialized
        );
        assert_eq!(
            corba_to_error("m", CorbaError::user_exception("oops")),
            CallError::Application("oops".into())
        );
        assert!(matches!(
            corba_to_error("m", CorbaError::Transport("gone".into())),
            CallError::Transport(_)
        ));
    }

    #[test]
    fn from_wsdl_fails_on_missing_document() {
        assert!(DynamicStub::from_wsdl("mem://not-bound/x.wsdl").is_err());
    }
}
