//! Dynamic client stubs over the SOAP and CORBA backends.

use std::sync::Arc;

use corba::{CorbaError, DiiRequest, IdlModule, Ior};
use httpd::HttpClient;
use jpie::{TypeDesc, Value};
use obs::sync::RwLock;
use soap::{SoapFault, SoapRequest, SoapResponse, WsdlDocument};

use crate::error::CallError;
use crate::fetch::{DocFetcher, Fetched};
use crate::resilience::ResiliencePolicy;

/// One remote operation as the client currently sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    /// Operation name.
    pub name: String,
    /// `(name, type)` of each parameter.
    pub params: Vec<(String, TypeDesc)>,
    /// Return type.
    pub return_ty: TypeDesc,
}

/// The client's current view of the server interface.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct InterfaceView {
    operations: Vec<Operation>,
    version: u64,
}

#[derive(Debug)]
enum Backend {
    Soap {
        wsdl_url: String,
        endpoint: RwLock<String>,
        namespace: RwLock<String>,
    },
    Corba {
        idl_url: String,
        ior_url: String,
        ior: RwLock<Option<Ior>>,
    },
}

/// A live, technology-independent client stub.
///
/// The stub downloads the published interface description (the "WSDL
/// compiler" / "IDL compiler" of Figs 1-2, re-runnable at any time via
/// [`DynamicStub::refresh`]) and invokes operations dynamically.
#[derive(Debug)]
pub struct DynamicStub {
    backend: Backend,
    view: RwLock<InterfaceView>,
    http: HttpClient,
    /// Conditional keep-alive fetcher for interface documents: repeat
    /// polls cost a `304` on a reused connection, not a re-download.
    fetcher: DocFetcher,
    policy: Arc<ResiliencePolicy>,
}

impl DynamicStub {
    /// Builds a SOAP stub from the published WSDL at `wsdl_url`
    /// (Fig 1 step 1).
    ///
    /// # Errors
    ///
    /// Fails if the WSDL cannot be fetched or parsed.
    pub fn from_wsdl(wsdl_url: &str) -> Result<DynamicStub, CallError> {
        DynamicStub::from_wsdl_with(wsdl_url, Arc::new(ResiliencePolicy::default()))
    }

    /// Like [`DynamicStub::from_wsdl`] with an explicit resilience
    /// policy governing request timeouts and document-fetch retries.
    ///
    /// # Errors
    ///
    /// Fails if the WSDL cannot be fetched or parsed.
    pub fn from_wsdl_with(
        wsdl_url: &str,
        policy: Arc<ResiliencePolicy>,
    ) -> Result<DynamicStub, CallError> {
        let stub = DynamicStub {
            backend: Backend::Soap {
                wsdl_url: wsdl_url.to_string(),
                endpoint: RwLock::new(String::new()),
                namespace: RwLock::new(String::new()),
            },
            view: RwLock::new(InterfaceView::default()),
            http: HttpClient::new().with_read_timeout(policy.request_timeout),
            fetcher: DocFetcher::with_policy(policy.clone()),
            policy,
        };
        stub.refresh()?;
        Ok(stub)
    }

    /// Builds a CORBA stub from the published CORBA-IDL and IOR documents
    /// (Fig 2 step 1).
    ///
    /// # Errors
    ///
    /// Fails if either document cannot be fetched or parsed.
    pub fn from_idl(idl_url: &str, ior_url: &str) -> Result<DynamicStub, CallError> {
        DynamicStub::from_idl_with(idl_url, ior_url, Arc::new(ResiliencePolicy::default()))
    }

    /// Like [`DynamicStub::from_idl`] with an explicit resilience
    /// policy governing request timeouts and document-fetch retries.
    ///
    /// # Errors
    ///
    /// Fails if either document cannot be fetched or parsed.
    pub fn from_idl_with(
        idl_url: &str,
        ior_url: &str,
        policy: Arc<ResiliencePolicy>,
    ) -> Result<DynamicStub, CallError> {
        let stub = DynamicStub {
            backend: Backend::Corba {
                idl_url: idl_url.to_string(),
                ior_url: ior_url.to_string(),
                ior: RwLock::new(None),
            },
            view: RwLock::new(InterfaceView::default()),
            http: HttpClient::new().with_read_timeout(policy.request_timeout),
            fetcher: DocFetcher::with_policy(policy.clone()),
            policy,
        };
        stub.refresh()?;
        Ok(stub)
    }

    /// Re-fetches the published interface description and replaces the
    /// client view (the §6 "client view ... is updated to the currently
    /// published one").
    ///
    /// # Errors
    ///
    /// Fails if the document cannot be fetched or parsed; the old view is
    /// kept in that case.
    pub fn refresh(&self) -> Result<(), CallError> {
        obs::registry().counter("cde_refreshes_total").inc();
        let refreshed = self.refresh_inner();
        if refreshed.is_ok() {
            obs::trace::verbose_event(
                "cde::stub",
                "refresh",
                format!("version={}", self.view.read().version),
            );
        } else {
            obs::registry().counter("cde_refresh_failures_total").inc();
        }
        refreshed
    }

    fn refresh_inner(&self) -> Result<(), CallError> {
        match &self.backend {
            Backend::Soap {
                wsdl_url,
                endpoint,
                namespace,
            } => {
                // 304: the parsed view already reflects the published
                // document — skip the re-parse entirely. Stale: the
                // authority's breaker is open, keep the cached view.
                let body = match self.fetch(wsdl_url)? {
                    Fetched::NotModified | Fetched::Stale => return Ok(()),
                    Fetched::New(body) => body,
                };
                let doc = WsdlDocument::parse(&body).map_err(|e| {
                    // The validator must not outlive a document that was
                    // never applied to the view.
                    self.fetcher.invalidate(wsdl_url);
                    CallError::Interface(e.to_string())
                })?;
                *endpoint.write() = doc.endpoint.clone();
                *namespace.write() = doc.namespace();
                *self.view.write() = InterfaceView {
                    operations: doc
                        .operations
                        .iter()
                        .map(|o| Operation {
                            name: o.name.clone(),
                            params: o.params.clone(),
                            return_ty: o.return_ty.clone(),
                        })
                        .collect(),
                    version: doc.version,
                };
            }
            Backend::Corba {
                idl_url,
                ior_url,
                ior,
            } => {
                // The IDL and the IOR revalidate independently: an
                // unchanged document costs a 304, not a re-parse.
                if let Fetched::New(idl_body) = self.fetch(idl_url)? {
                    let module = IdlModule::parse(&idl_body).map_err(|e| {
                        self.fetcher.invalidate(idl_url);
                        CallError::Interface(e.to_string())
                    })?;
                    let operations = module
                        .primary_interface()
                        .map(|iface| {
                            iface
                                .operations
                                .iter()
                                .map(|o| Operation {
                                    name: o.name.clone(),
                                    params: o.params.clone(),
                                    return_ty: o.return_ty.clone(),
                                })
                                .collect()
                        })
                        .unwrap_or_default();
                    *self.view.write() = InterfaceView {
                        operations,
                        version: module.version,
                    };
                }
                if let Fetched::New(ior_body) = self.fetch(ior_url)? {
                    let parsed_ior = Ior::parse(&ior_body).map_err(|e| {
                        self.fetcher.invalidate(ior_url);
                        CallError::Interface(e.to_string())
                    })?;
                    *ior.write() = Some(parsed_ior);
                }
            }
        }
        Ok(())
    }

    fn fetch(&self, url: &str) -> Result<Fetched, CallError> {
        self.fetcher
            .fetch(url)
            .map_err(|e| CallError::Interface(e.to_string()))
    }

    /// The operations in the client's current view.
    pub fn operations(&self) -> Vec<Operation> {
        self.view.read().operations.clone()
    }

    /// Looks up one operation in the current view.
    pub fn operation(&self, name: &str) -> Option<Operation> {
        self.view
            .read()
            .operations
            .iter()
            .find(|o| o.name == name)
            .cloned()
    }

    /// The interface version of the client's current view — the quantity
    /// the §6 recency guarantee is stated over.
    pub fn interface_version(&self) -> u64 {
        self.view.read().version
    }

    /// The authority (`scheme://host`) that calls are routed to — the key
    /// under which the circuit breaker for this stub is registered.
    pub fn authority(&self) -> String {
        match &self.backend {
            Backend::Soap { endpoint, .. } => split_authority(&endpoint.read()).0,
            Backend::Corba { ior, ior_url, .. } => match &*ior.read() {
                Some(ior) => ior.address.clone(),
                None => split_authority(ior_url).0,
            },
        }
    }

    /// Invokes `method` with positional `args`, without any stale-method
    /// recovery (that lives in
    /// [`crate::ClientEnvironment::call`]).
    ///
    /// # Errors
    ///
    /// All the [`CallError`] variants.
    pub fn call_raw(&self, method: &str, args: &[Value]) -> Result<Value, CallError> {
        match &self.backend {
            Backend::Soap {
                endpoint,
                namespace,
                ..
            } => {
                // Parameter names come from the client's current view —
                // exactly what a live client knows.
                let names: Vec<String> = match self.operation(method) {
                    Some(op) => op.params.iter().map(|(n, _)| n.clone()).collect(),
                    None => (0..args.len()).map(|i| format!("arg{i}")).collect(),
                };
                let mut req = SoapRequest::new(namespace.read().clone(), method);
                for (i, value) in args.iter().enumerate() {
                    let name = names.get(i).cloned().unwrap_or_else(|| format!("arg{i}"));
                    req = req.arg(name, value.clone());
                }
                let url = endpoint.read().clone();
                let (authority, path) = split_authority(&url);
                let mut http_req =
                    httpd::Request::post(path, req.to_xml().into_bytes(), "text/xml");
                // Axis-style SOAPAction header identifying the operation.
                http_req.headers_mut().set(
                    "SOAPAction",
                    format!("\"{}#{}\"", namespace.read().clone(), method),
                );
                let resp = self
                    .http
                    .connect(&authority)
                    .and_then(|mut conn| conn.send(&http_req))
                    .map_err(|e| CallError::Transport(e.to_string()))?;
                if resp.status() == 503 {
                    // Load shed by the HTTP layer before the SOAP engine
                    // saw the request — safe to retry, hint included.
                    return Err(CallError::Overloaded {
                        retry_after_ms: resp.retry_after().map(|d| d.as_millis() as u64),
                    });
                }
                let parsed = soap::decode_response(&resp.body_str())
                    .map_err(|e| CallError::Protocol(e.to_string()))?;
                match parsed {
                    SoapResponse::Ok(v) => Ok(v),
                    SoapResponse::Fault(f) => Err(fault_to_error(method, &f)),
                }
            }
            Backend::Corba { ior, .. } => {
                let Some(ior) = ior.read().clone() else {
                    return Err(CallError::Interface("no IOR loaded".into()));
                };
                let mut req =
                    DiiRequest::new(&ior, method).timeout(Some(self.policy.request_timeout));
                for a in args {
                    req = req.arg(a.clone());
                }
                match req.invoke() {
                    Ok(v) => Ok(v),
                    Err(e) => Err(corba_to_error(method, e)),
                }
            }
        }
    }
}

/// Splits `scheme://authority/path` into (`scheme://authority`, `/path`).
fn split_authority(url: &str) -> (String, String) {
    if let Some(scheme_end) = url.find("://") {
        let rest = &url[scheme_end + 3..];
        if let Some(slash) = rest.find('/') {
            return (
                url[..scheme_end + 3 + slash].to_string(),
                rest[slash..].to_string(),
            );
        }
    }
    (url.to_string(), "/".to_string())
}

fn fault_to_error(method: &str, fault: &SoapFault) -> CallError {
    if fault.is_non_existent_method() {
        CallError::StaleMethod {
            method: method.to_string(),
        }
    } else if fault.fault_string == "Server not initialized" {
        CallError::ServerNotInitialized
    } else if fault.fault_string == "Application Exception" {
        CallError::Application(fault.detail.clone().unwrap_or_default())
    } else {
        CallError::Protocol(fault.to_string())
    }
}

fn corba_to_error(method: &str, error: CorbaError) -> CallError {
    if error.is_non_existent_method() {
        return CallError::StaleMethod {
            method: method.to_string(),
        };
    }
    match error {
        CorbaError::System(corba::SystemExceptionKind::ObjectNotExist, _) => {
            CallError::ServerNotInitialized
        }
        CorbaError::User { message, .. } => CallError::Application(message),
        CorbaError::Transport(m) => CallError::Transport(m),
        other => CallError::Protocol(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soap_fault_mapping() {
        assert_eq!(
            fault_to_error("m", &SoapFault::non_existent_method("m")),
            CallError::StaleMethod { method: "m".into() }
        );
        assert_eq!(
            fault_to_error("m", &SoapFault::server_not_initialized()),
            CallError::ServerNotInitialized
        );
        assert_eq!(
            fault_to_error("m", &SoapFault::application_exception("boom")),
            CallError::Application("boom".into())
        );
        assert!(matches!(
            fault_to_error("m", &SoapFault::malformed_request("x")),
            CallError::Protocol(_)
        ));
    }

    #[test]
    fn corba_error_mapping() {
        assert_eq!(
            corba_to_error("m", CorbaError::non_existent_method("m")),
            CallError::StaleMethod { method: "m".into() }
        );
        assert_eq!(
            corba_to_error(
                "m",
                CorbaError::system(corba::SystemExceptionKind::ObjectNotExist, "x")
            ),
            CallError::ServerNotInitialized
        );
        assert_eq!(
            corba_to_error("m", CorbaError::user_exception("oops")),
            CallError::Application("oops".into())
        );
        assert!(matches!(
            corba_to_error("m", CorbaError::Transport("gone".into())),
            CallError::Transport(_)
        ));
    }

    #[test]
    fn from_wsdl_fails_on_missing_document() {
        assert!(DynamicStub::from_wsdl("mem://not-bound/x.wsdl").is_err());
    }
}
