//! Client-side resilience policy: per-call deadlines, exponential
//! backoff with seeded jitter, and per-authority circuit breakers.
//!
//! The CDE's liveness story (§5/§6) assumes the published interface
//! documents stay reachable; in practice servers restart, networks
//! drop connections, and gateways shed load. This module gives
//! [`crate::ClientEnvironment::call_with`] and the document fetcher a
//! uniform failure policy:
//!
//! * every call runs under a **deadline budget**,
//! * **idempotent** operations (GETs, interface polls, the republish
//!   wait) are retried with exponential backoff and deterministic,
//!   seeded jitter (`obs::rng`),
//! * consecutive transport failures against one authority trip a
//!   **circuit breaker**; while it is open the fetcher serves the stale
//!   cached interface document and half-open probes test recovery.
//!
//! Breaker state is exported as `breaker_state{authority=...}`
//! (0 = closed, 1 = open, 2 = half-open); retries and exhausted
//! deadlines count into `rmi_retries_total` and
//! `rmi_deadline_exceeded_total`.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use obs::metrics::Gauge;
use obs::rng::XorShift64;
use obs::sync::Mutex;

/// Tunable resilience defaults shared by calls and document fetches.
#[derive(Debug, Clone, PartialEq)]
pub struct ResiliencePolicy {
    /// Total time budget for one logical operation, attempts included.
    pub deadline: Duration,
    /// Per-attempt transport read timeout (a blackholed peer surfaces
    /// as a timeout instead of a hang).
    pub request_timeout: Duration,
    /// Maximum attempts for an idempotent operation (first try + retries).
    pub max_attempts: u32,
    /// First backoff step; doubles per retry.
    pub base_backoff: Duration,
    /// Backoff growth cap.
    pub max_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: each sleep is drawn uniformly from
    /// `[step * (1 - jitter), step]`.
    pub jitter: f64,
    /// Consecutive transport failures that trip the breaker.
    pub breaker_threshold: u32,
    /// How long the breaker stays open before allowing one half-open
    /// probe.
    pub breaker_cooldown: Duration,
    /// Seed for the jitter RNG — a fixed seed makes retry schedules
    /// reproducible in tests.
    pub seed: u64,
}

impl Default for ResiliencePolicy {
    fn default() -> ResiliencePolicy {
        ResiliencePolicy {
            deadline: Duration::from_secs(10),
            request_timeout: Duration::from_secs(2),
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter: 0.5,
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_millis(500),
            seed: 0x5de_cde,
        }
    }
}

impl ResiliencePolicy {
    /// The default policy with an explicit jitter seed.
    pub fn seeded(seed: u64) -> ResiliencePolicy {
        ResiliencePolicy {
            seed,
            ..ResiliencePolicy::default()
        }
    }

    /// Sets the per-operation deadline budget.
    pub fn with_deadline(mut self, deadline: Duration) -> ResiliencePolicy {
        self.deadline = deadline;
        self
    }

    /// Sets the per-attempt transport timeout.
    pub fn with_request_timeout(mut self, timeout: Duration) -> ResiliencePolicy {
        self.request_timeout = timeout;
        self
    }

    /// Sets the attempt cap for idempotent operations.
    pub fn with_max_attempts(mut self, attempts: u32) -> ResiliencePolicy {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Sets the breaker trip threshold and cooldown.
    pub fn with_breaker(mut self, threshold: u32, cooldown: Duration) -> ResiliencePolicy {
        self.breaker_threshold = threshold.max(1);
        self.breaker_cooldown = cooldown;
        self
    }
}

/// Exponential backoff schedule with seeded jitter.
#[derive(Debug)]
pub struct Backoff {
    step: Duration,
    max: Duration,
    jitter: f64,
    rng: XorShift64,
}

impl Backoff {
    /// A fresh schedule drawing jitter from the policy's seed.
    pub fn new(policy: &ResiliencePolicy) -> Backoff {
        Backoff {
            step: policy.base_backoff,
            max: policy.max_backoff,
            jitter: policy.jitter.clamp(0.0, 1.0),
            rng: XorShift64::seed_from_u64(policy.seed),
        }
    }

    /// The next sleep: the current step jittered down by up to
    /// `policy.jitter`, with the step doubling (capped) per call.
    pub fn next_delay(&mut self) -> Duration {
        let step = self.step;
        self.step = (self.step * 2).min(self.max);
        if self.jitter <= 0.0 || step.is_zero() {
            return step;
        }
        let scale = 1.0 - self.jitter * self.rng.gen_f64();
        Duration::from_nanos((step.as_nanos() as f64 * scale) as u64)
    }
}

/// Circuit-breaker states (the classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; failures are counted.
    Closed,
    /// Tripped: calls fail fast (or serve stale documents) until the
    /// cooldown elapses.
    Open,
    /// One probe is in flight; its outcome closes or re-opens the
    /// breaker.
    HalfOpen,
}

impl BreakerState {
    fn gauge_value(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
}

/// A per-authority circuit breaker.
///
/// Trips to [`BreakerState::Open`] after `threshold` *consecutive*
/// transport failures; after `cooldown` the next acquire becomes the
/// single half-open probe whose outcome decides recovery.
#[derive(Debug)]
pub struct CircuitBreaker {
    authority: String,
    threshold: u32,
    cooldown: Duration,
    inner: Mutex<BreakerInner>,
    state_gauge: Arc<Gauge>,
}

impl CircuitBreaker {
    /// A closed breaker for `authority`.
    pub fn new(authority: &str, threshold: u32, cooldown: Duration) -> CircuitBreaker {
        let state_gauge = obs::registry().gauge_with("breaker_state", &[("authority", authority)]);
        state_gauge.set(0);
        CircuitBreaker {
            authority: authority.to_string(),
            threshold: threshold.max(1),
            cooldown,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
            }),
            state_gauge,
        }
    }

    /// The authority this breaker guards.
    pub fn authority(&self) -> &str {
        &self.authority
    }

    /// Whether a call may proceed. Open breakers admit exactly one
    /// probe once the cooldown has elapsed (transitioning to half-open);
    /// everything else fails fast until the probe reports back.
    pub fn try_acquire(&self) -> bool {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => false,
            BreakerState::Open => {
                let elapsed = inner
                    .opened_at
                    .map(|t| t.elapsed())
                    .unwrap_or(Duration::MAX);
                if elapsed >= self.cooldown {
                    self.transition(&mut inner, BreakerState::HalfOpen);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Reports a successful call: closes the breaker and clears the
    /// failure streak.
    pub fn on_success(&self) {
        let mut inner = self.inner.lock();
        inner.consecutive_failures = 0;
        if inner.state != BreakerState::Closed {
            obs::trace::event(
                "cde::resilience",
                "breaker-close",
                format!("authority={}", self.authority),
            );
            self.transition(&mut inner, BreakerState::Closed);
            inner.opened_at = None;
        }
    }

    /// Reports a transport failure: re-opens a half-open breaker
    /// immediately, or trips a closed one after `threshold` consecutive
    /// failures.
    pub fn on_failure(&self) {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::HalfOpen => {
                // The probe failed: back to open, restart the cooldown.
                inner.opened_at = Some(Instant::now());
                self.transition(&mut inner, BreakerState::Open);
            }
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.threshold {
                    obs::registry().counter("breaker_trips_total").inc();
                    obs::trace::event(
                        "cde::resilience",
                        "breaker-trip",
                        format!(
                            "authority={} failures={}",
                            self.authority, inner.consecutive_failures
                        ),
                    );
                    inner.opened_at = Some(Instant::now());
                    self.transition(&mut inner, BreakerState::Open);
                }
            }
            BreakerState::Open => {}
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }

    fn transition(&self, inner: &mut BreakerInner, to: BreakerState) {
        inner.state = to;
        self.state_gauge.set(to.gauge_value());
    }
}

/// Process-global breaker registry: every client-side path (calls,
/// document fetches, watchers) talking to one authority shares one
/// breaker, so a storm of failures in any of them protects them all.
fn breakers() -> &'static Mutex<HashMap<String, Arc<CircuitBreaker>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Arc<CircuitBreaker>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The shared breaker for `authority`, created from `policy` on first
/// use (later callers share the original's thresholds).
pub fn breaker_for(authority: &str, policy: &ResiliencePolicy) -> Arc<CircuitBreaker> {
    let mut map = breakers().lock();
    map.entry(authority.to_string())
        .or_insert_with(|| {
            Arc::new(CircuitBreaker::new(
                authority,
                policy.breaker_threshold,
                policy.breaker_cooldown,
            ))
        })
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let policy = ResiliencePolicy {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(40),
            jitter: 0.0,
            ..ResiliencePolicy::default()
        };
        let mut b = Backoff::new(&policy);
        assert_eq!(b.next_delay(), Duration::from_millis(10));
        assert_eq!(b.next_delay(), Duration::from_millis(20));
        assert_eq!(b.next_delay(), Duration::from_millis(40));
        assert_eq!(b.next_delay(), Duration::from_millis(40), "capped");
    }

    #[test]
    fn backoff_jitter_is_seeded_and_bounded() {
        let policy = ResiliencePolicy::seeded(7);
        let delays = |p: &ResiliencePolicy| {
            let mut b = Backoff::new(p);
            (0..8).map(|_| b.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(delays(&policy), delays(&policy), "same seed, same schedule");
        let mut b = Backoff::new(&policy);
        let mut step = policy.base_backoff;
        for _ in 0..8 {
            let d = b.next_delay();
            assert!(d <= step, "jitter only shrinks the step");
            assert!(d >= Duration::from_nanos((step.as_nanos() as f64 * 0.5) as u64));
            step = (step * 2).min(policy.max_backoff);
        }
    }

    #[test]
    fn breaker_trips_after_threshold_and_recovers() {
        let b = CircuitBreaker::new("mem://trip-test", 3, Duration::from_millis(20));
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed, "below threshold");
        assert!(b.try_acquire());
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.try_acquire(), "open breaker fails fast");
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.try_acquire(), "cooldown elapsed: one probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.try_acquire(), "only one probe at a time");
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.try_acquire());
    }

    #[test]
    fn half_open_failure_reopens() {
        let b = CircuitBreaker::new("mem://reopen-test", 1, Duration::from_millis(10));
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(15));
        assert!(b.try_acquire());
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open, "failed probe re-opens");
        assert!(!b.try_acquire(), "cooldown restarted");
    }

    #[test]
    fn success_resets_failure_streak() {
        let b = CircuitBreaker::new("mem://streak-test", 3, Duration::from_millis(10));
        b.on_failure();
        b.on_failure();
        b.on_success();
        b.on_failure();
        b.on_failure();
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "streak must be consecutive"
        );
    }

    #[test]
    fn registry_shares_breakers_per_authority() {
        let policy = ResiliencePolicy::default();
        let a = breaker_for("mem://shared-auth", &policy);
        let b = breaker_for("mem://shared-auth", &policy);
        assert!(Arc::ptr_eq(&a, &b));
        let c = breaker_for("mem://other-auth", &policy);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn breaker_state_exported_as_gauge() {
        let b = CircuitBreaker::new("mem://gauge-test", 1, Duration::from_secs(60));
        let gauge =
            obs::registry().gauge_with("breaker_state", &[("authority", "mem://gauge-test")]);
        assert_eq!(gauge.get(), 0);
        b.on_failure();
        assert_eq!(gauge.get(), 1);
    }
}
