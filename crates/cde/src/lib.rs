//! # cde — the Client Development Environment
//!
//! The client half of the paper's live, simultaneous client-server
//! development model (§2.3, §6; companion report TR-2004-56). CDE
//! supports live construction of SOAP and CORBA clients:
//!
//! * [`DynamicStub`] — a technology-independent client stub holding the
//!   client's current view of the server interface, fetched from the
//!   published WSDL (SOAP) or CORBA-IDL + IOR (CORBA). Calls go through
//!   Apache-Axis-style dynamic invocation on the SOAP side and the DII on
//!   the CORBA side — no generated code anywhere, so the stub can follow
//!   live interface changes.
//! * [`ClientEnvironment`] — masks the technical differences between the
//!   two technologies, implements the client side of the §6 distributed
//!   algorithm (on a "Non existent Method" exception, *"the client view
//!   of the server interface is updated to the currently published
//!   one"*, then the exception surfaces in the JPie debugger), and offers
//!   the debugger's *try again* re-execution.
//! * [`ResiliencePolicy`] — per-call deadline budgets, exponential
//!   backoff retries with seeded jitter for idempotent operations, and
//!   per-authority circuit breakers that fail fast (serving the stale
//!   cached interface view) while a server is down and probe for
//!   recovery half-open.
//! * [`ClientEnvironment::bind_to_class`] — CDE's live-stub feature:
//!   materializes the server interface as a [`jpie::ClassHandle`] whose
//!   methods forward remotely, and [`ClientEnvironment::sync_bound_class`]
//!   automates "addition, mutation, and deletion of dynamic server
//!   methods within dynamic clients" as the interface view changes.
//!
//! The recency guarantee (§6): *the method signature observable at the
//! client upon return from an RMI call is always consistent with a
//! published server interface at least as recent as the interface used by
//! the server to process the call.* [`DynamicStub::interface_version`]
//! makes the "at least as recent" relation directly checkable; the
//! consistency-matrix experiment exercises it for every interleaving.

mod client;
mod error;
mod fetch;
mod resilience;
mod stub;
mod watch;

pub use client::{CallOptions, ClientEnvironment};
pub use error::CallError;
pub use resilience::{breaker_for, Backoff, BreakerState, CircuitBreaker, ResiliencePolicy};
pub use stub::{DynamicStub, Operation};
pub use watch::InterfaceWatcher;
