//! Background interface watching.
//!
//! The exception-driven path of §6 updates the client view when a call
//! fails; CDE additionally keeps the client's picture of the server fresh
//! *proactively* so that "live changes in the server's interface are
//! reflected in the running client program" even between calls. The
//! watcher polls the published interface description and, when the
//! version advances, refreshes the stub (and optionally reconciles a
//! bound dynamic class).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use jpie::ClassHandle;

use crate::client::ClientEnvironment;
use crate::stub::DynamicStub;

/// A running interface watcher. Dropping it stops the background thread.
#[derive(Debug)]
pub struct InterfaceWatcher {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    updates: Receiver<u64>,
}

impl InterfaceWatcher {
    /// Drains the versions observed since the last call (oldest first).
    pub fn updates(&self) -> Vec<u64> {
        let mut versions = Vec::new();
        loop {
            match self.updates.try_recv() {
                Ok(v) => versions.push(v),
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => return versions,
            }
        }
    }

    /// Blocks until the next version change (or timeout).
    pub fn wait_for_update(&self, timeout: Duration) -> Option<u64> {
        self.updates.recv_timeout(timeout).ok()
    }

    /// Stops the watcher and joins its thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for InterfaceWatcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl ClientEnvironment {
    /// Starts watching `stub`'s published interface, refreshing the view
    /// every `interval`. When `bound` is given, the bound class is kept
    /// reconciled with each new interface version
    /// (see [`ClientEnvironment::sync_bound_class`]).
    pub fn watch(
        &self,
        stub: Arc<DynamicStub>,
        interval: Duration,
        bound: Option<ClassHandle>,
    ) -> InterfaceWatcher {
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = channel();
        let thread_stop = stop.clone();
        let env = self.clone();
        let thread = std::thread::Builder::new()
            .name("cde-interface-watcher".into())
            .spawn(move || {
                let polls = obs::registry().counter("cde_watch_polls_total");
                let updates = obs::registry().counter("cde_watch_updates_total");
                let mut last = stub.interface_version();
                while !thread_stop.load(Ordering::SeqCst) {
                    std::thread::sleep(interval);
                    if thread_stop.load(Ordering::SeqCst) {
                        return;
                    }
                    polls.inc();
                    if stub.refresh().is_err() {
                        continue; // transient fetch failure: keep watching
                    }
                    let version = stub.interface_version();
                    if version != last {
                        last = version;
                        updates.inc();
                        obs::trace::event(
                            "cde::watch",
                            "interface-update",
                            format!("version={version}"),
                        );
                        if let Some(class) = &bound {
                            env.sync_bound_class(class, &stub);
                        }
                        if tx.send(version).is_err() {
                            return; // receiver gone
                        }
                    }
                }
            })
            .expect("spawn watcher thread");
        InterfaceWatcher {
            stop,
            thread: Some(thread),
            updates: rx,
        }
    }
}
