//! Streaming SOAP codec — the allocation-free wire path.
//!
//! Encoding serializes envelopes straight into a caller-supplied,
//! reusable `Vec<u8>` via [`xmlrt::XmlBufWriter`]; decoding runs
//! directly on the zero-copy pull parser ([`xmlrt::XmlPull`]) without
//! materializing an intermediate DOM. Both halves are held equivalent
//! to the reference DOM codec in [`crate::domcodec`]:
//!
//! * the encoder is **byte-identical** (asserted by a property test in
//!   `tests/props.rs` over generated `Value` trees), and
//! * the decoder accepts/rejects the same documents with the same
//!   values and error messages, with one deliberate exception: a Body
//!   whose first child fails to decode but which *also* carries a
//!   `Fault` element reports the decode error instead of the fault —
//!   a single-pass decoder cannot look ahead past a broken subtree.
//!
//! QNames of the envelope vocabulary are interned as `&'static str`
//! and numbers are formatted through a stack buffer, so a steady-state
//! encode of a primitive-argument call touches the heap only to grow
//! the (recycled) output buffer.

use std::borrow::Cow;
use std::fmt::{self, Write as _};
use std::sync::Arc;

use jpie::{StructValue, Value};
use xmlrt::{PullEvent, XmlBufWriter, XmlPull};

use crate::encoding::{array_item_type, parse_item_type};
use crate::envelope::{
    FaultCode, SoapFault, SoapRequest, SoapResponse, ENVELOPE_NS, SOAPENC_NS, XSD_NS, XSI_NS,
};
use crate::error::SoapError;

/// Bytes of SOAP envelopes produced by the streaming encoder.
fn encode_bytes_counter() -> &'static Arc<obs::Counter> {
    static COUNTER: std::sync::OnceLock<Arc<obs::Counter>> = std::sync::OnceLock::new();
    COUNTER.get_or_init(|| obs::registry().counter("soap_encode_bytes"))
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Namespace of the SDE reliability header carrying the per-call id.
pub const CALL_ID_NS: &str = "urn:sde:reliability";

/// Namespace of the distributed-tracing header carrying the propagated
/// trace context (`traceid:parent-spanid:flags`, see
/// [`obs::tracectx::TraceContext`]).
pub const TRACE_NS: &str = "urn:live-rmi:trace";

/// HTTP response header a SOAP server sets to advertise its reply
/// cache: a client that sees it may retry non-idempotent calls under
/// the same call id, because a redelivery returns the cached reply.
pub const REPLY_CACHE_HEADER: &str = "X-SDE-Reply-Cache";

fn begin_envelope(w: &mut XmlBufWriter) {
    begin_envelope_headers(w, None, None);
}

/// Like [`begin_envelope`] but emits a `soapenv:Header` with the SDE
/// call-id and/or trace-context elements when supplied. Header-less
/// envelopes stay byte-identical to the DOM codec's output.
fn begin_envelope_headers(
    w: &mut XmlBufWriter,
    call_id: Option<obs::CallId>,
    trace: Option<obs::TraceContext>,
) {
    w.declaration();
    w.start("soapenv:Envelope");
    w.attr("xmlns:soapenv", ENVELOPE_NS);
    w.attr("xmlns:xsd", XSD_NS);
    w.attr("xmlns:xsi", XSI_NS);
    w.attr("xmlns:soapenc", SOAPENC_NS);
    if call_id.is_some() || trace.is_some() {
        w.start("soapenv:Header");
        if let Some(id) = call_id {
            let mut idbuf = [0u8; obs::callid::TEXT_LEN];
            w.start("sde:CallId");
            w.attr("xmlns:sde", CALL_ID_NS);
            w.text(id.write_text(&mut idbuf));
            w.end("sde:CallId");
        }
        if let Some(ctx) = trace {
            let mut ctxbuf = [0u8; obs::tracectx::TEXT_LEN];
            w.start("trace:Trace");
            w.attr("xmlns:trace", TRACE_NS);
            w.text(ctx.write_text(&mut ctxbuf));
            w.end("trace:Trace");
        }
        w.end("soapenv:Header");
    }
    w.start("soapenv:Body");
}

fn end_envelope(w: &mut XmlBufWriter) {
    w.end("soapenv:Body");
    w.end("soapenv:Envelope");
}

/// Encodes a request envelope into `buf` (cleared first, capacity kept).
///
/// This is [`SoapRequest::to_xml`] without the `String` detour: the
/// stub's hot path calls it with borrowed method/argument views and a
/// thread-local buffer, so a warm call allocates nothing.
pub fn encode_request_into<'a, I>(namespace: &str, method: &str, args: I, buf: &mut Vec<u8>)
where
    I: IntoIterator<Item = (&'a str, &'a Value)>,
{
    encode_request_with_id_into(namespace, method, args, None, buf);
}

/// [`encode_request_into`] plus an optional at-most-once call id carried
/// as a `soapenv:Header` entry (see [`CALL_ID_NS`]). With `None` the
/// output is byte-identical to the plain encoder.
pub fn encode_request_with_id_into<'a, I>(
    namespace: &str,
    method: &str,
    args: I,
    call_id: Option<obs::CallId>,
    buf: &mut Vec<u8>,
) where
    I: IntoIterator<Item = (&'a str, &'a Value)>,
{
    encode_request_traced_into(namespace, method, args, call_id, None, buf);
}

/// [`encode_request_with_id_into`] plus an optional distributed-tracing
/// context carried as a second `soapenv:Header` entry (see
/// [`TRACE_NS`]). With both `None` the output is byte-identical to the
/// plain encoder.
pub fn encode_request_traced_into<'a, I>(
    namespace: &str,
    method: &str,
    args: I,
    call_id: Option<obs::CallId>,
    trace: Option<obs::TraceContext>,
    buf: &mut Vec<u8>,
) where
    I: IntoIterator<Item = (&'a str, &'a Value)>,
{
    let mut w = XmlBufWriter::with_buf(std::mem::take(buf));
    begin_envelope_headers(&mut w, call_id, trace);
    w.start_parts(&["ns1:", method]);
    w.attr("xmlns:ns1", namespace);
    for (name, value) in args {
        encode_value_into(&mut w, name, value);
    }
    w.end_parts(&["ns1:", method]);
    end_envelope(&mut w);
    *buf = w.into_bytes();
    encode_bytes_counter().add(buf.len() as u64);
}

/// Encodes a success-response envelope into `buf` (cleared first).
pub fn encode_ok_into(method: &str, namespace: &str, value: &Value, buf: &mut Vec<u8>) {
    let mut w = XmlBufWriter::with_buf(std::mem::take(buf));
    begin_envelope(&mut w);
    w.start_parts(&["ns1:", method, "Response"]);
    w.attr("xmlns:ns1", namespace);
    encode_value_into(&mut w, "return", value);
    w.end_parts(&["ns1:", method, "Response"]);
    end_envelope(&mut w);
    *buf = w.into_bytes();
    encode_bytes_counter().add(buf.len() as u64);
}

/// Encodes a fault envelope into `buf` (cleared first).
pub fn encode_fault_into(fault: &SoapFault, buf: &mut Vec<u8>) {
    let mut w = XmlBufWriter::with_buf(std::mem::take(buf));
    begin_envelope(&mut w);
    w.start("soapenv:Fault");
    w.start("faultcode");
    w.text(fault.code.as_str());
    w.end("faultcode");
    w.start("faultstring");
    w.text(&fault.fault_string);
    w.end("faultstring");
    if let Some(d) = &fault.detail {
        w.start("detail");
        w.text(d);
        w.end("detail");
    }
    w.end("soapenv:Fault");
    end_envelope(&mut w);
    *buf = w.into_bytes();
    encode_bytes_counter().add(buf.len() as u64);
}

/// A fixed-capacity stack string for number formatting. Sized for the
/// worst case `f64` `Display` produces (no scientific notation in Rust:
/// `1e308` prints all 309 integer digits).
struct NumBuf {
    buf: [u8; 352],
    len: usize,
}

impl NumBuf {
    fn new() -> NumBuf {
        NumBuf {
            buf: [0; 352],
            len: 0,
        }
    }

    fn as_str(&self) -> &str {
        std::str::from_utf8(&self.buf[..self.len]).expect("number formatting is ASCII")
    }
}

impl fmt::Write for NumBuf {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        let bytes = s.as_bytes();
        let end = self.len + bytes.len();
        if end > self.buf.len() {
            return Err(fmt::Error);
        }
        self.buf[self.len..end].copy_from_slice(bytes);
        self.len = end;
        Ok(())
    }
}

/// Formats `x` exactly like the DOM codec's `format_float`.
fn fmt_float(n: &mut NumBuf, x: f64) {
    let r = if x == x.trunc() && x.is_finite() && x.abs() < 1e15 {
        write!(n, "{x:.1}")
    } else {
        write!(n, "{x}")
    };
    r.expect("NumBuf sized for any f64");
}

/// Streams `value` as an element named `name` — byte-identical to
/// [`crate::encoding::encode_value`] followed by DOM serialization.
pub(crate) fn encode_value_into(w: &mut XmlBufWriter, name: &str, value: &Value) {
    w.start(name);
    match value {
        Value::Null => {
            w.attr("xsi:nil", "true");
        }
        Value::Bool(b) => {
            w.attr("xsi:type", "xsd:boolean");
            w.text(if *b { "true" } else { "false" });
        }
        Value::Int(i) => {
            w.attr("xsi:type", "xsd:int");
            let mut n = NumBuf::new();
            write!(n, "{i}").expect("fits");
            w.text(n.as_str());
        }
        Value::Long(l) => {
            w.attr("xsi:type", "xsd:long");
            let mut n = NumBuf::new();
            write!(n, "{l}").expect("fits");
            w.text(n.as_str());
        }
        Value::Float(x) => {
            w.attr("xsi:type", "xsd:float");
            let mut n = NumBuf::new();
            fmt_float(&mut n, f64::from(*x));
            w.text(n.as_str());
        }
        Value::Double(x) => {
            w.attr("xsi:type", "xsd:double");
            let mut n = NumBuf::new();
            fmt_float(&mut n, *x);
            w.text(n.as_str());
        }
        Value::Char(c) => {
            w.attr("xsi:type", "tns:char");
            w.text(c.encode_utf8(&mut [0u8; 4]));
        }
        Value::Str(s) => {
            w.attr("xsi:type", "xsd:string");
            w.text(s);
        }
        Value::Struct(s) => {
            w.attr_parts("xsi:type", &["tns:", &s.type_name]);
            for (field_name, field_value) in &s.fields {
                encode_value_into(w, field_name, field_value);
            }
        }
        Value::Seq(elem, items) => {
            w.attr("xsi:type", "soapenc:Array");
            // Arrays are off the echo hot path; the recursive item-type
            // notation keeps the DOM codec's allocation here.
            w.attr("soapenc:itemType", &array_item_type(elem));
            for item in items {
                encode_value_into(w, "item", item);
            }
        }
    }
    w.end(name);
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

fn local(name: &str) -> &str {
    name.rsplit(':').next().unwrap_or(name)
}

/// Advances to the next child element of the element the parser is
/// currently inside, skipping character data, comments and PIs.
/// Returns `None` after consuming the enclosing element's end tag.
fn next_child<'i>(p: &mut XmlPull<'i>) -> Result<Option<(&'i str, bool)>, SoapError> {
    loop {
        match p.next()? {
            PullEvent::Start { name, self_closing } => return Ok(Some((name, self_closing))),
            PullEvent::End { .. } => return Ok(None),
            PullEvent::Eof => {
                return Err(SoapError::Malformed("unexpected end of document".into()))
            }
            PullEvent::Text(_) | PullEvent::Comment(_) | PullEvent::Pi(_) => {}
        }
    }
}

/// Parses up to and into the `Body` element. On success the parser
/// sits just inside `<soapenv:Body>`; returns `false` when the Body
/// was self-closing (no content).
fn enter_body(p: &mut XmlPull) -> Result<bool, SoapError> {
    let (mut id, mut trace) = (None, None);
    enter_body_capture(p, &mut id, &mut trace)
}

/// [`enter_body`], additionally capturing the SDE call-id and
/// trace-context header elements (if any) while crossing
/// `soapenv:Header`.
fn enter_body_capture(
    p: &mut XmlPull,
    call_id: &mut Option<obs::CallId>,
    trace: &mut Option<obs::TraceContext>,
) -> Result<bool, SoapError> {
    let (root_name, root_sc) = loop {
        match p.next()? {
            PullEvent::Start { name, self_closing } => break (name, self_closing),
            PullEvent::Comment(_) | PullEvent::Pi(_) | PullEvent::Text(_) => {}
            PullEvent::End { .. } | PullEvent::Eof => {
                return Err(SoapError::Malformed("empty document".into()))
            }
        }
    };
    if local(root_name) != "Envelope" {
        return Err(SoapError::Malformed(format!(
            "root element is <{root_name}>, not a SOAP Envelope"
        )));
    }
    if root_sc {
        return Err(SoapError::Malformed("envelope has no Body".into()));
    }
    loop {
        match next_child(p)? {
            Some((name, sc)) => {
                if local(name) == "Body" {
                    if sc {
                        p.skip_element()?;
                        return Ok(false);
                    }
                    return Ok(true);
                }
                if local(name) == "Header" && !sc {
                    // Scan header entries for the call id; unknown
                    // entries are skipped like any other element.
                    while let Some((entry, entry_sc)) = next_child(p)? {
                        if local(entry) == "CallId" && call_id.is_none() {
                            *call_id = obs::CallId::parse_text(element_text(p, entry_sc)?.trim());
                        } else if local(entry) == "Trace" && trace.is_none() {
                            *trace =
                                obs::TraceContext::parse_text(element_text(p, entry_sc)?.trim());
                        } else {
                            p.skip_element()?;
                        }
                    }
                    continue;
                }
                p.skip_element()?;
            }
            None => return Err(SoapError::Malformed("envelope has no Body".into())),
        }
    }
}

/// Consumes the rest of the document so trailing garbage still errors,
/// exactly like the DOM parser (which parses the whole input up front).
fn finish(p: &mut XmlPull) -> Result<(), SoapError> {
    loop {
        match p.next()? {
            PullEvent::Eof => return Ok(()),
            PullEvent::Start { .. } => p.skip_element()?,
            PullEvent::End { .. }
            | PullEvent::Text(_)
            | PullEvent::Comment(_)
            | PullEvent::Pi(_) => {}
        }
    }
}

/// Concatenated direct character data of the current element (child
/// subtrees are skipped), consuming through the element's end tag.
fn element_text<'i>(p: &mut XmlPull<'i>, self_closing: bool) -> Result<Cow<'i, str>, SoapError> {
    let mut text: Cow<'i, str> = Cow::Borrowed("");
    if self_closing {
        p.skip_element()?;
        return Ok(text);
    }
    loop {
        match p.next()? {
            PullEvent::Text(t) => {
                if text.is_empty() {
                    text = t;
                } else {
                    text.to_mut().push_str(&t);
                }
            }
            PullEvent::Start { .. } => p.skip_element()?,
            PullEvent::End { .. } => return Ok(text),
            PullEvent::Comment(_) | PullEvent::Pi(_) => {}
            PullEvent::Eof => {
                return Err(SoapError::Malformed("unexpected end of document".into()))
            }
        }
    }
}

/// Decodes the value element whose start tag (`name`, with attributes
/// still addressable) the parser just produced. Mirrors
/// [`crate::encoding::decode_value`] branch for branch.
fn decode_value_stream<'i>(
    p: &mut XmlPull<'i>,
    name: &'i str,
    self_closing: bool,
) -> Result<Value, SoapError> {
    if p.attr("nil").as_deref() == Some("true") {
        p.skip_element()?;
        return Ok(Value::Null);
    }
    let ty_name = p
        .attr("type")
        .ok_or_else(|| SoapError::BadType(format!("element {name} has no xsi:type")))?;
    let item_ty_attr = p.attr("itemType");
    let local_ty = ty_name.rsplit(':').next().unwrap_or(&ty_name);
    match local_ty {
        "boolean" | "int" | "long" | "float" | "double" => {
            let raw = element_text(p, self_closing)?;
            let text = raw.trim();
            let bad = |what: &str| SoapError::BadType(format!("{what}: {text:?} for {ty_name}"));
            match local_ty {
                "boolean" => text.parse().map(Value::Bool).map_err(|_| bad("boolean")),
                "int" => text.parse().map(Value::Int).map_err(|_| bad("int")),
                "long" => text.parse().map(Value::Long).map_err(|_| bad("long")),
                "float" => text.parse().map(Value::Float).map_err(|_| bad("float")),
                _ => text.parse().map(Value::Double).map_err(|_| bad("double")),
            }
        }
        "char" => {
            let raw = element_text(p, self_closing)?;
            let mut chars = raw.chars();
            match (chars.next(), chars.next()) {
                (Some(c), None) => Ok(Value::Char(c)),
                (None, _) => Ok(Value::Char('\0')),
                _ => Err(SoapError::BadType(format!(
                    "char: {:?} for {ty_name}",
                    raw.trim()
                ))),
            }
        }
        "string" => Ok(Value::Str(element_text(p, self_closing)?.into_owned())),
        "Array" => {
            let item_ty_name =
                item_ty_attr.ok_or_else(|| SoapError::BadType("array without itemType".into()))?;
            let elem = parse_item_type(&item_ty_name)?;
            let mut items = Vec::new();
            if self_closing {
                p.skip_element()?;
            } else {
                while let Some((child_name, child_sc)) = next_child(p)? {
                    if local(child_name) == "item" {
                        items.push(decode_value_stream(p, child_name, child_sc)?);
                    } else {
                        p.skip_element()?;
                    }
                }
            }
            Ok(Value::Seq(elem, items))
        }
        type_name => {
            let mut s = StructValue::new(type_name);
            if self_closing {
                p.skip_element()?;
            } else {
                while let Some((child_name, child_sc)) = next_child(p)? {
                    s.fields.push((
                        local(child_name).to_string(),
                        decode_value_stream(p, child_name, child_sc)?,
                    ));
                }
            }
            Ok(Value::Struct(s))
        }
    }
}

/// Decodes a request envelope on the pull parser.
pub(crate) fn decode_request_stream(xml: &str) -> Result<SoapRequest, SoapError> {
    decode_request_with_id(xml).map(|(req, _)| req)
}

/// Decodes a request envelope together with the at-most-once call id
/// from its `soapenv:Header`, if the client sent one.
pub fn decode_request_with_id(xml: &str) -> Result<(SoapRequest, Option<obs::CallId>), SoapError> {
    decode_request_traced(xml).map(|(req, id, _)| (req, id))
}

/// [`decode_request_with_id`], additionally yielding the propagated
/// distributed-tracing context (if any; malformed contexts decode as
/// absent).
pub fn decode_request_traced(
    xml: &str,
) -> Result<(SoapRequest, Option<obs::CallId>, Option<obs::TraceContext>), SoapError> {
    let mut p = XmlPull::new(xml);
    let mut call_id = None;
    let mut trace = None;
    let has_content = enter_body_capture(&mut p, &mut call_id, &mut trace)?;
    let call = if has_content {
        next_child(&mut p)?
    } else {
        None
    };
    let Some((call_name, call_sc)) = call else {
        return Err(SoapError::Malformed("empty Body".into()));
    };
    let namespace = p
        .attr_exact("xmlns:ns1")
        .or_else(|| p.attr("ns1"))
        .map(Cow::into_owned)
        .unwrap_or_default();
    let method = local(call_name).to_string();
    let mut args = Vec::new();
    if call_sc {
        p.skip_element()?;
    } else {
        while let Some((arg_name, arg_sc)) = next_child(&mut p)? {
            args.push((
                local(arg_name).to_string(),
                decode_value_stream(&mut p, arg_name, arg_sc)?,
            ));
        }
    }
    finish(&mut p)?;
    Ok((
        SoapRequest::from_parts(namespace, method, args),
        call_id,
        trace,
    ))
}

/// Decodes the first Body child as a `methodResponse` element: the
/// value of its first `return` child, or `Null` for void methods.
fn decode_response_value(p: &mut XmlPull, self_closing: bool) -> Result<Value, SoapError> {
    if self_closing {
        p.skip_element()?;
        return Ok(Value::Null);
    }
    let mut value: Option<Value> = None;
    while let Some((name, sc)) = next_child(p)? {
        if value.is_none() && local(name) == "return" {
            value = Some(decode_value_stream(p, name, sc)?);
        } else {
            p.skip_element()?;
        }
    }
    Ok(value.unwrap_or(Value::Null))
}

fn decode_fault_stream(p: &mut XmlPull, self_closing: bool) -> Result<SoapFault, SoapError> {
    let mut code = FaultCode::parse("");
    let mut code_seen = false;
    let mut fault_string = String::new();
    let mut fault_string_seen = false;
    let mut detail: Option<String> = None;
    if self_closing {
        p.skip_element()?;
    } else {
        while let Some((name, sc)) = next_child(p)? {
            match local(name) {
                "faultcode" if !code_seen => {
                    code = FaultCode::parse(element_text(p, sc)?.trim());
                    code_seen = true;
                }
                "faultstring" if !fault_string_seen => {
                    fault_string = element_text(p, sc)?.trim().to_string();
                    fault_string_seen = true;
                }
                "detail" if detail.is_none() => {
                    detail = Some(element_text(p, sc)?.trim().to_string());
                }
                _ => p.skip_element()?,
            }
        }
    }
    Ok(SoapFault {
        code,
        fault_string,
        detail,
    })
}

/// Decodes a response envelope on the pull parser. A `Fault` element
/// anywhere in the Body wins over a normal response, matching the DOM
/// decoder's `child("Fault")` lookup.
pub(crate) fn decode_response_stream(xml: &str) -> Result<SoapResponse, SoapError> {
    let mut p = XmlPull::new(xml);
    let has_content = enter_body(&mut p)?;
    if !has_content {
        return Err(SoapError::Malformed("empty Body".into()));
    }
    let mut result: Option<Value> = None;
    let mut any_child = false;
    while let Some((name, sc)) = next_child(&mut p)? {
        if local(name) == "Fault" {
            let fault = decode_fault_stream(&mut p, sc)?;
            finish(&mut p)?;
            return Ok(SoapResponse::Fault(fault));
        }
        if any_child {
            p.skip_element()?;
        } else {
            any_child = true;
            result = Some(decode_response_value(&mut p, sc)?);
        }
    }
    match result {
        Some(v) => {
            finish(&mut p)?;
            Ok(SoapResponse::Ok(v))
        }
        None => Err(SoapError::Malformed("empty Body".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domcodec;
    use jpie::TypeDesc;

    fn sample_values() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-7),
            Value::Long(1 << 40),
            Value::Float(1.5),
            Value::Double(-2.25),
            Value::Double(1e300),
            Value::Char('\u{4e2d}'),
            Value::Str("a < b & \"c\"\n\t]]>".into()),
            Value::Str(String::new()),
            Value::Struct(
                StructValue::new("Point")
                    .with("x", Value::Int(1))
                    .with("s", Value::Str("  padded  ".into())),
            ),
            Value::Seq(
                TypeDesc::Seq(Box::new(TypeDesc::Int)),
                vec![
                    Value::Seq(TypeDesc::Int, vec![Value::Int(1), Value::Int(2)]),
                    Value::Seq(TypeDesc::Int, vec![]),
                ],
            ),
        ]
    }

    #[test]
    fn request_encoding_is_byte_identical_to_dom() {
        for v in sample_values() {
            let req = SoapRequest::new("urn:calc", "op").arg("a", v).arg(
                "b",
                Value::Struct(StructValue::new("T").with("f", Value::Bool(false))),
            );
            let mut buf = Vec::new();
            encode_request_into(
                req.namespace(),
                req.method(),
                req.args().iter().map(|(n, v)| (n.as_str(), v)),
                &mut buf,
            );
            assert_eq!(buf, domcodec::encode_request(&req).into_bytes());
        }
    }

    #[test]
    fn response_encoding_is_byte_identical_to_dom() {
        for v in sample_values() {
            let mut buf = Vec::new();
            encode_ok_into("op", "urn:x", &v, &mut buf);
            assert_eq!(buf, domcodec::encode_ok("op", "urn:x", &v).into_bytes());
        }
        for fault in [
            SoapFault::server_not_initialized(),
            SoapFault::malformed_request("<bad & xml>"),
            SoapFault::new(FaultCode::Server, "empty detail").with_detail(""),
        ] {
            let mut buf = Vec::new();
            encode_fault_into(&fault, &mut buf);
            assert_eq!(buf, domcodec::encode_fault(&fault).into_bytes());
        }
    }

    #[test]
    fn decoding_agrees_with_dom_on_valid_documents() {
        for v in sample_values() {
            let req = SoapRequest::new("urn:calc", "op").arg("a", v.clone());
            let xml = req.to_xml();
            assert_eq!(
                decode_request_stream(&xml).unwrap(),
                domcodec::decode_request(&xml).unwrap()
            );
            let xml = SoapResponse::encode_ok("op", "urn:x", &v);
            assert_eq!(
                decode_response_stream(&xml).unwrap(),
                domcodec::decode_response(&xml).unwrap()
            );
        }
    }

    #[test]
    fn decoding_rejects_what_the_dom_rejects() {
        for bad in [
            "not xml at all",
            "<notsoap/>",
            "<soapenv:Envelope/>",
            "<soapenv:Envelope><soapenv:Body/></soapenv:Envelope>",
            "<soapenv:Envelope><soapenv:Body><m><a>5</a></m></soapenv:Body></soapenv:Envelope>",
            "<soapenv:Envelope><soapenv:Body><m xmlns:ns1=\"u\"/></soapenv:Body></soapenv:Envelope>junk",
        ] {
            let stream = decode_request_stream(bad);
            let dom = domcodec::decode_request(bad);
            assert!(stream.is_err(), "stream accepted {bad}");
            assert!(dom.is_err(), "dom accepted {bad}");
        }
    }

    #[test]
    fn fault_anywhere_in_body_wins() {
        let xml = "<soapenv:Envelope><soapenv:Body>\
                   <ns1:opResponse xmlns:ns1=\"urn:x\"/>\
                   <soapenv:Fault><faultcode>soapenv:Client</faultcode>\
                   <faultstring>nope</faultstring></soapenv:Fault>\
                   </soapenv:Body></soapenv:Envelope>";
        let stream = decode_response_stream(xml).unwrap();
        let dom = domcodec::decode_response(xml).unwrap();
        assert_eq!(stream, dom);
        assert!(matches!(stream, SoapResponse::Fault(f) if f.fault_string == "nope"));
    }

    #[test]
    fn whitespace_and_comments_are_tolerated_like_the_dom() {
        let xml = "<?xml version=\"1.0\"?>\n<soapenv:Envelope>\n  <!-- c -->\n  \
                   <soapenv:Header><x/></soapenv:Header>\n  <soapenv:Body>\n    \
                   <ns1:add xmlns:ns1=\"urn:calc\">\n      \
                   <a xsi:type=\"xsd:int\"> 41 </a>\n    </ns1:add>\n  \
                   </soapenv:Body>\n</soapenv:Envelope>";
        let stream = decode_request_stream(xml).unwrap();
        let dom = domcodec::decode_request(xml).unwrap();
        assert_eq!(stream, dom);
        assert_eq!(stream.method(), "add");
        assert_eq!(stream.args(), &[("a".to_string(), Value::Int(41))]);
    }

    #[test]
    fn call_id_header_round_trips_and_stays_dom_compatible() {
        let id = obs::CallId {
            client: 0xdead_beef_0000_0001,
            seq: 7,
        };
        let mut buf = Vec::new();
        encode_request_with_id_into(
            "urn:calc",
            "add",
            [("a", &Value::Int(41))],
            Some(id),
            &mut buf,
        );
        let xml = String::from_utf8(buf).unwrap();
        assert!(xml.contains("soapenv:Header"), "{xml}");
        assert!(xml.contains(CALL_ID_NS), "{xml}");

        // The streaming decoder surfaces the id; the request itself is
        // identical to a header-less decode.
        let (req, got) = decode_request_with_id(&xml).unwrap();
        assert_eq!(got, Some(id));
        assert_eq!(req.method(), "add");
        assert_eq!(req.args(), &[("a".to_string(), Value::Int(41))]);

        // The DOM decoder (which ignores headers) still accepts it.
        let dom = domcodec::decode_request(&xml).unwrap();
        assert_eq!(dom, req);

        // Without an id the encoder output is unchanged (byte-identical
        // to the DOM encoder, checked elsewhere) and decoding reports
        // no id.
        let mut plain = Vec::new();
        encode_request_into("urn:calc", "add", [("a", &Value::Int(41))], &mut plain);
        let (_, none) = decode_request_with_id(&String::from_utf8(plain).unwrap()).unwrap();
        assert_eq!(none, None);

        // A malformed header id is treated as absent, not an error.
        let mangled = xml.replace('-', "!");
        let (req2, bad) = decode_request_with_id(&mangled).unwrap();
        assert_eq!(bad, None);
        assert_eq!(req2.method(), "add");
    }

    #[test]
    fn trace_header_round_trips_and_stays_dom_compatible() {
        let id = obs::CallId {
            client: 0xfeed_f00d_0000_0002,
            seq: 3,
        };
        let ctx = obs::TraceContext {
            trace: obs::TraceId(0x0011_2233_4455_6677_8899_aabb_ccdd_eeff),
            parent: obs::SpanId(0x0123_4567_89ab_cdef),
            flags: 1,
        };
        let mut buf = Vec::new();
        encode_request_traced_into(
            "urn:calc",
            "add",
            [("a", &Value::Int(41))],
            Some(id),
            Some(ctx),
            &mut buf,
        );
        let xml = String::from_utf8(buf).unwrap();
        assert!(xml.contains(TRACE_NS), "{xml}");
        assert!(xml.contains(CALL_ID_NS), "{xml}");

        // Both headers decode; the request itself is unchanged.
        let (req, got_id, got_ctx) = decode_request_traced(&xml).unwrap();
        assert_eq!(got_id, Some(id));
        assert_eq!(got_ctx, Some(ctx));
        assert_eq!(req.method(), "add");
        assert_eq!(req.args(), &[("a".to_string(), Value::Int(41))]);

        // The DOM decoder (which ignores headers) still accepts it.
        let dom = domcodec::decode_request(&xml).unwrap();
        assert_eq!(dom, req);

        // A trace context alone also rides without a call id.
        let mut only = Vec::new();
        encode_request_traced_into(
            "urn:calc",
            "add",
            [("a", &Value::Int(41))],
            None,
            Some(ctx),
            &mut only,
        );
        let (_, no_id, ctx2) = decode_request_traced(&String::from_utf8(only).unwrap()).unwrap();
        assert_eq!(no_id, None);
        assert_eq!(ctx2, Some(ctx));

        // Without either header the encoder output is byte-identical to
        // the plain encoder, and decoding reports neither.
        let mut plain = Vec::new();
        encode_request_into("urn:calc", "add", [("a", &Value::Int(41))], &mut plain);
        let mut plain2 = Vec::new();
        encode_request_traced_into(
            "urn:calc",
            "add",
            [("a", &Value::Int(41))],
            None,
            None,
            &mut plain2,
        );
        assert_eq!(plain, plain2);
        let (_, none_id, none_ctx) =
            decode_request_traced(&String::from_utf8(plain).unwrap()).unwrap();
        assert_eq!(none_id, None);
        assert_eq!(none_ctx, None);

        // A malformed trace header is treated as absent, not an error.
        let mangled = xml.replace(":01<", ":zz<");
        let (req2, _, bad) = decode_request_traced(&mangled).unwrap();
        assert_eq!(bad, None);
        assert_eq!(req2.method(), "add");
    }

    #[test]
    fn encode_counter_accumulates() {
        let before = encode_bytes_counter().get();
        let mut buf = Vec::new();
        encode_ok_into("m", "urn:x", &Value::Null, &mut buf);
        assert_eq!(encode_bytes_counter().get(), before + buf.len() as u64);
    }
}
