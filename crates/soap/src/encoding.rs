//! SOAP encoding of [`Value`]s: `xsi:type`-annotated XML elements.
//!
//! Primitives use the XML Schema type names Axis used (`xsd:int`,
//! `xsd:boolean`, ...). User-defined structured values are encoded as
//! nested elements with `xsi:type="tns:TypeName"`, arrays as
//! `soapenc:Array` with an item-type attribute — the WSDL 1.1 "complex
//! types" mechanism the paper describes in §2.1.

use jpie::{StructValue, TypeDesc, Value};
use xmlrt::XmlNode;

use crate::error::SoapError;

/// The `xsi:type` name for a [`TypeDesc`].
pub fn xsi_type(ty: &TypeDesc) -> String {
    match ty {
        TypeDesc::Void => "xsd:anyType".into(),
        TypeDesc::Bool => "xsd:boolean".into(),
        TypeDesc::Int => "xsd:int".into(),
        TypeDesc::Long => "xsd:long".into(),
        TypeDesc::Float => "xsd:float".into(),
        TypeDesc::Double => "xsd:double".into(),
        TypeDesc::Char => "tns:char".into(),
        TypeDesc::Str => "xsd:string".into(),
        TypeDesc::Named(n) => format!("tns:{n}"),
        TypeDesc::Seq(_) => "soapenc:Array".into(),
    }
}

/// Parses an `xsi:type` name back to a [`TypeDesc`].
///
/// # Errors
///
/// Returns [`SoapError::BadType`] for unknown names. Arrays need the
/// element node for their item type, so `soapenc:Array` is rejected here
/// (handled in [`decode_value`]).
pub fn type_from_xsi(name: &str) -> Result<TypeDesc, SoapError> {
    let local = name.rsplit(':').next().unwrap_or(name);
    Ok(match local {
        "anyType" => TypeDesc::Void,
        "boolean" => TypeDesc::Bool,
        "int" => TypeDesc::Int,
        "long" => TypeDesc::Long,
        "float" => TypeDesc::Float,
        "double" => TypeDesc::Double,
        "char" => TypeDesc::Char,
        "string" => TypeDesc::Str,
        "Array" => {
            return Err(SoapError::BadType(
                "array type requires an itemType attribute".into(),
            ))
        }
        other => TypeDesc::Named(other.to_string()),
    })
}

/// The item-type attribute value for a sequence. Nested sequences use the
/// SOAP-encoding array-suffix notation (`xsd:int[]`), so arbitrarily deep
/// nesting round-trips.
pub fn array_item_type(elem: &TypeDesc) -> String {
    match elem {
        TypeDesc::Seq(inner) => format!("{}[]", array_item_type(inner)),
        other => xsi_type(other),
    }
}

/// Parses an item-type attribute written by [`array_item_type`].
///
/// # Errors
///
/// Returns [`SoapError::BadType`] for unknown names.
pub fn parse_item_type(name: &str) -> Result<TypeDesc, SoapError> {
    if let Some(inner) = name.strip_suffix("[]") {
        return Ok(TypeDesc::Seq(Box::new(parse_item_type(inner)?)));
    }
    if name == "soapenc:Array" {
        return Err(SoapError::BadType(
            "anonymous array type (use the `T[]` item-type notation)".into(),
        ));
    }
    type_from_xsi(name)
}

/// Encodes `value` as an element named `name` appended to `parent`.
pub fn encode_value(parent: &mut XmlNode, name: &str, value: &Value) {
    let mut node = XmlNode::new(name);
    match value {
        Value::Null => {
            node.set_attr("xsi:nil", "true");
        }
        Value::Bool(b) => {
            node.set_attr("xsi:type", "xsd:boolean")
                .set_text(b.to_string());
        }
        Value::Int(i) => {
            node.set_attr("xsi:type", "xsd:int").set_text(i.to_string());
        }
        Value::Long(l) => {
            node.set_attr("xsi:type", "xsd:long")
                .set_text(l.to_string());
        }
        Value::Float(x) => {
            node.set_attr("xsi:type", "xsd:float")
                .set_text(format_float(f64::from(*x)));
        }
        Value::Double(x) => {
            node.set_attr("xsi:type", "xsd:double")
                .set_text(format_float(*x));
        }
        Value::Char(c) => {
            node.set_attr("xsi:type", "tns:char")
                .set_text(c.to_string());
        }
        Value::Str(s) => {
            node.set_attr("xsi:type", "xsd:string").set_text(s.clone());
        }
        Value::Struct(s) => {
            node.set_attr("xsi:type", format!("tns:{}", s.type_name));
            for (field_name, field_value) in &s.fields {
                encode_value(&mut node, field_name, field_value);
            }
        }
        Value::Seq(elem, items) => {
            node.set_attr("xsi:type", "soapenc:Array");
            node.set_attr("soapenc:itemType", array_item_type(elem));
            for item in items {
                encode_value(&mut node, "item", item);
            }
        }
    }
    parent.push_child(node);
}

fn format_float(x: f64) -> String {
    if x == x.trunc() && x.is_finite() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

/// Decodes the value encoded in `node` (an element produced by
/// [`encode_value`]).
///
/// # Errors
///
/// Returns [`SoapError::BadType`] for unknown `xsi:type`s or text that does
/// not parse as the declared type.
pub fn decode_value(node: &XmlNode) -> Result<Value, SoapError> {
    if node.attr("nil") == Some("true") {
        return Ok(Value::Null);
    }
    let ty_name = node
        .attr("type")
        .ok_or_else(|| SoapError::BadType(format!("element {} has no xsi:type", node.name())))?;
    let local = ty_name.rsplit(':').next().unwrap_or(ty_name);
    let text = node.text();
    let bad = |what: &str| SoapError::BadType(format!("{what}: {text:?} for {ty_name}"));
    match local {
        "boolean" => text.parse().map(Value::Bool).map_err(|_| bad("boolean")),
        "int" => text.parse().map(Value::Int).map_err(|_| bad("int")),
        "long" => text.parse().map(Value::Long).map_err(|_| bad("long")),
        "float" => text.parse().map(Value::Float).map_err(|_| bad("float")),
        "double" => text.parse().map(Value::Double).map_err(|_| bad("double")),
        "char" => {
            let mut chars = node.raw_text().chars();
            match (chars.next(), chars.next()) {
                (Some(c), None) => Ok(Value::Char(c)),
                (None, _) => Ok(Value::Char('\0')),
                _ => Err(bad("char")),
            }
        }
        "string" => Ok(Value::Str(node.raw_text().to_string())),
        "Array" => {
            let item_ty_name = node
                .attr("itemType")
                .ok_or_else(|| SoapError::BadType("array without itemType".into()))?;
            let elem = parse_item_type(item_ty_name)?;
            let mut items = Vec::new();
            for child in node.children_named("item") {
                items.push(decode_value(child)?);
            }
            Ok(Value::Seq(elem, items))
        }
        type_name => {
            let mut s = StructValue::new(type_name);
            for child in node.children() {
                s.fields
                    .push((child.local_name().to_string(), decode_value(child)?));
            }
            Ok(Value::Struct(s))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        let mut parent = XmlNode::new("parent");
        encode_value(&mut parent, "v", v);
        let xml = parent.to_xml();
        let parsed = XmlNode::parse(&xml).unwrap();
        decode_value(parsed.child("v").unwrap()).unwrap()
    }

    #[test]
    fn primitives_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Long(1 << 40),
            Value::Float(1.5),
            Value::Double(-2.25),
            Value::Char('x'),
            Value::Char('\u{4e2d}'),
            Value::Str("hello <world> & friends".into()),
            Value::Str(String::new()),
        ] {
            assert_eq!(roundtrip(&v), v, "{v:?}");
        }
    }

    #[test]
    fn struct_roundtrip() {
        let v = Value::Struct(
            StructValue::new("Point")
                .with("x", Value::Int(1))
                .with("label", Value::Str("origin".into()))
                .with(
                    "nested",
                    Value::Struct(StructValue::new("Inner").with("b", Value::Bool(true))),
                ),
        );
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn seq_roundtrip() {
        let v = Value::Seq(
            TypeDesc::Int,
            vec![Value::Int(1), Value::Int(2), Value::Int(3)],
        );
        assert_eq!(roundtrip(&v), v);
        let empty = Value::Seq(TypeDesc::Str, vec![]);
        assert_eq!(roundtrip(&empty), empty);
    }

    #[test]
    fn nested_seq_roundtrip() {
        let grid = Value::Seq(
            TypeDesc::Seq(Box::new(TypeDesc::Int)),
            vec![
                Value::Seq(TypeDesc::Int, vec![Value::Int(1), Value::Int(2)]),
                Value::Seq(TypeDesc::Int, vec![]),
            ],
        );
        assert_eq!(roundtrip(&grid), grid);
        // Triple nesting, too.
        let cube = Value::Seq(
            TypeDesc::Seq(Box::new(TypeDesc::Seq(Box::new(TypeDesc::Str)))),
            vec![Value::Seq(
                TypeDesc::Seq(Box::new(TypeDesc::Str)),
                vec![Value::Seq(TypeDesc::Str, vec![Value::Str("x".into())])],
            )],
        );
        assert_eq!(roundtrip(&cube), cube);
    }

    #[test]
    fn item_type_notation() {
        assert_eq!(array_item_type(&TypeDesc::Int), "xsd:int");
        assert_eq!(
            array_item_type(&TypeDesc::Seq(Box::new(TypeDesc::Int))),
            "xsd:int[]"
        );
        assert_eq!(
            parse_item_type("xsd:int[]").unwrap(),
            TypeDesc::Seq(Box::new(TypeDesc::Int))
        );
        assert_eq!(
            parse_item_type("tns:P[][]").unwrap(),
            TypeDesc::Seq(Box::new(TypeDesc::Seq(Box::new(TypeDesc::Named(
                "P".into()
            )))))
        );
        assert!(parse_item_type("soapenc:Array").is_err());
    }

    #[test]
    fn seq_of_structs_roundtrip() {
        let v = Value::Seq(
            TypeDesc::Named("P".into()),
            vec![
                Value::Struct(StructValue::new("P").with("x", Value::Int(1))),
                Value::Struct(StructValue::new("P").with("x", Value::Int(2))),
            ],
        );
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn whitespace_string_preserved() {
        let v = Value::Str("  padded  ".into());
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn missing_type_rejected() {
        let node = XmlNode::parse("<v>5</v>").unwrap();
        assert!(decode_value(&node).is_err());
    }

    #[test]
    fn bad_literal_rejected() {
        let node = XmlNode::parse("<v xsi:type=\"xsd:int\">banana</v>").unwrap();
        assert!(matches!(decode_value(&node), Err(SoapError::BadType(_))));
    }

    #[test]
    fn array_without_item_type_rejected() {
        let node = XmlNode::parse("<v xsi:type=\"soapenc:Array\"/>").unwrap();
        assert!(decode_value(&node).is_err());
    }

    #[test]
    fn xsi_type_names() {
        assert_eq!(xsi_type(&TypeDesc::Int), "xsd:int");
        assert_eq!(xsi_type(&TypeDesc::Named("Msg".into())), "tns:Msg");
        assert_eq!(type_from_xsi("xsd:double").unwrap(), TypeDesc::Double);
        assert_eq!(
            type_from_xsi("tns:Msg").unwrap(),
            TypeDesc::Named("Msg".into())
        );
        assert!(type_from_xsi("soapenc:Array").is_err());
    }

    #[test]
    fn float_formatting_stable() {
        assert_eq!(format_float(2.0), "2.0");
        assert_eq!(format_float(2.5), "2.5");
    }
}
