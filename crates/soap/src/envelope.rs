//! SOAP 1.1 envelopes: requests, responses and faults.

use jpie::Value;

use crate::error::SoapError;
use crate::stream;

pub(crate) const ENVELOPE_NS: &str = "http://schemas.xmlsoap.org/soap/envelope/";
pub(crate) const XSI_NS: &str = "http://www.w3.org/2001/XMLSchema-instance";
pub(crate) const XSD_NS: &str = "http://www.w3.org/2001/XMLSchema";
pub(crate) const SOAPENC_NS: &str = "http://schemas.xmlsoap.org/soap/encoding/";

/// SOAP 1.1 fault code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultCode {
    /// `soapenv:Client` — the message was the client's fault (malformed
    /// request, unknown method).
    Client,
    /// `soapenv:Server` — the server could not process a valid message
    /// (uninitialized server, application exception).
    Server,
}

impl FaultCode {
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            FaultCode::Client => "soapenv:Client",
            FaultCode::Server => "soapenv:Server",
        }
    }

    pub(crate) fn parse(s: &str) -> FaultCode {
        if s.ends_with("Client") {
            FaultCode::Client
        } else {
            FaultCode::Server
        }
    }
}

/// A SOAP fault, carrying the error strings the paper's handlers send
/// (§5.1.3): `Server not initialized`, `Malformed SOAP Request`,
/// `Non existent Method`, or an application exception message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoapFault {
    /// Client or Server fault.
    pub code: FaultCode,
    /// Human-readable fault string.
    pub fault_string: String,
    /// Optional detail (e.g. the wrapped application exception).
    pub detail: Option<String>,
}

impl SoapFault {
    /// Creates a fault.
    pub fn new(code: FaultCode, fault_string: impl Into<String>) -> SoapFault {
        SoapFault {
            code,
            fault_string: fault_string.into(),
            detail: None,
        }
    }

    /// Adds a detail string.
    pub fn with_detail(mut self, detail: impl Into<String>) -> SoapFault {
        self.detail = Some(detail.into());
        self
    }

    /// The paper's "Server not initialized" fault (§5.1.3).
    pub fn server_not_initialized() -> SoapFault {
        SoapFault::new(FaultCode::Server, "Server not initialized")
    }

    /// The paper's "Malformed SOAP Request" fault (§5.1.3).
    pub fn malformed_request(detail: impl Into<String>) -> SoapFault {
        SoapFault::new(FaultCode::Client, "Malformed SOAP Request").with_detail(detail)
    }

    /// The paper's "Non existent Method" fault (§5.1.3, §5.7).
    pub fn non_existent_method(method: &str) -> SoapFault {
        SoapFault::new(FaultCode::Client, "Non existent Method").with_detail(method.to_string())
    }

    /// Wraps an application exception thrown by the server method.
    pub fn application_exception(message: impl Into<String>) -> SoapFault {
        SoapFault::new(FaultCode::Server, "Application Exception").with_detail(message)
    }

    /// Whether this is the stale-method fault that triggers the CDE update
    /// protocol (§6).
    pub fn is_non_existent_method(&self) -> bool {
        self.fault_string == "Non existent Method"
    }
}

impl std::fmt::Display for SoapFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.fault_string)?;
        if let Some(d) = &self.detail {
            write!(f, " ({d})")?;
        }
        Ok(())
    }
}

/// A SOAP request: a method invocation with named arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct SoapRequest {
    namespace: String,
    method: String,
    args: Vec<(String, Value)>,
}

impl SoapRequest {
    /// Creates a request for `method` in `namespace` (e.g. `urn:calc`).
    pub fn new(namespace: impl Into<String>, method: impl Into<String>) -> SoapRequest {
        SoapRequest {
            namespace: namespace.into(),
            method: method.into(),
            args: Vec::new(),
        }
    }

    /// Assembles a decoded request (used by both codecs).
    pub(crate) fn from_parts(
        namespace: String,
        method: String,
        args: Vec<(String, Value)>,
    ) -> SoapRequest {
        SoapRequest {
            namespace,
            method,
            args,
        }
    }

    /// Appends a named argument.
    pub fn arg(mut self, name: impl Into<String>, value: Value) -> SoapRequest {
        self.args.push((name.into(), value));
        self
    }

    /// Target namespace.
    pub fn namespace(&self) -> &str {
        &self.namespace
    }

    /// Method name.
    pub fn method(&self) -> &str {
        &self.method
    }

    /// Arguments in order.
    pub fn args(&self) -> &[(String, Value)] {
        &self.args
    }

    /// Serializes the request envelope.
    ///
    /// Allocation-sensitive callers should prefer
    /// [`crate::encode_request_into`], which reuses a caller-supplied
    /// buffer instead of returning a fresh `String`.
    pub fn to_xml(&self) -> String {
        let mut buf = Vec::with_capacity(256);
        stream::encode_request_into(
            &self.namespace,
            &self.method,
            self.args.iter().map(|(n, v)| (n.as_str(), v)),
            &mut buf,
        );
        String::from_utf8(buf).expect("codec emits UTF-8")
    }
}

/// A decoded SOAP response: either a return value or a fault.
#[derive(Debug, Clone, PartialEq)]
pub enum SoapResponse {
    /// Normal completion with the (possibly `Null`) return value.
    Ok(Value),
    /// A SOAP fault.
    Fault(SoapFault),
}

impl SoapResponse {
    /// Serializes a success response envelope for `method`.
    ///
    /// Allocation-sensitive callers should prefer
    /// [`crate::encode_ok_into`].
    pub fn encode_ok(method: &str, namespace: &str, value: &Value) -> String {
        let mut buf = Vec::with_capacity(256);
        stream::encode_ok_into(method, namespace, value, &mut buf);
        String::from_utf8(buf).expect("codec emits UTF-8")
    }

    /// Serializes a fault envelope.
    ///
    /// Allocation-sensitive callers should prefer
    /// [`crate::encode_fault_into`].
    pub fn encode_fault(fault: &SoapFault) -> String {
        let mut buf = Vec::with_capacity(256);
        stream::encode_fault_into(fault, &mut buf);
        String::from_utf8(buf).expect("codec emits UTF-8")
    }
}

/// Decodes a request envelope (the server side of Fig 1 step 2).
///
/// Runs on the zero-copy pull parser; the DOM-based reference decoder
/// is available as [`crate::domcodec::decode_request`].
///
/// # Errors
///
/// Returns [`SoapError::Malformed`] when the XML is not a SOAP request —
/// the condition the call handler reports as a *Malformed SOAP Request*
/// fault.
pub fn decode_request(xml: &str) -> Result<SoapRequest, SoapError> {
    stream::decode_request_stream(xml)
}

/// Decodes a response envelope (the client side of Fig 1 step 3).
///
/// Runs on the zero-copy pull parser; the DOM-based reference decoder
/// is available as [`crate::domcodec::decode_response`].
///
/// # Errors
///
/// Returns [`SoapError::Malformed`] for non-SOAP payloads.
pub fn decode_response(xml: &str) -> Result<SoapResponse, SoapError> {
    stream::decode_response_stream(xml)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jpie::{StructValue, TypeDesc};

    #[test]
    fn request_roundtrip() {
        let req = SoapRequest::new("urn:calc", "add")
            .arg("a", Value::Int(2))
            .arg("b", Value::Double(3.5))
            .arg("tag", Value::Str("x < y".into()));
        let xml = req.to_xml();
        assert!(xml.starts_with("<?xml"));
        let back = decode_request(&xml).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.namespace(), "urn:calc");
    }

    #[test]
    fn request_with_complex_args() {
        let req = SoapRequest::new("urn:mail", "send").arg(
            "msg",
            Value::Struct(
                StructValue::new("Message")
                    .with("to", Value::Str("kjg".into()))
                    .with(
                        "cc",
                        Value::Seq(TypeDesc::Str, vec![Value::Str("sajeeva".into())]),
                    ),
            ),
        );
        let back = decode_request(&req.to_xml()).unwrap();
        assert_eq!(back.args()[0].1, req.args()[0].1);
    }

    #[test]
    fn ok_response_roundtrip() {
        let xml = SoapResponse::encode_ok("add", "urn:calc", &Value::Int(5));
        match decode_response(&xml).unwrap() {
            SoapResponse::Ok(v) => assert_eq!(v, Value::Int(5)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn void_response_roundtrip() {
        let xml = SoapResponse::encode_ok("ping", "urn:x", &Value::Null);
        match decode_response(&xml).unwrap() {
            SoapResponse::Ok(v) => assert_eq!(v, Value::Null),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fault_roundtrip_all_standard_faults() {
        for fault in [
            SoapFault::server_not_initialized(),
            SoapFault::malformed_request("bad xml"),
            SoapFault::non_existent_method("add"),
            SoapFault::application_exception("kaboom"),
        ] {
            let xml = SoapResponse::encode_fault(&fault);
            match decode_response(&xml).unwrap() {
                SoapResponse::Fault(f) => assert_eq!(f, fault),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn non_existent_method_detection() {
        assert!(SoapFault::non_existent_method("m").is_non_existent_method());
        assert!(!SoapFault::server_not_initialized().is_non_existent_method());
    }

    #[test]
    fn fault_code_parsing() {
        assert_eq!(FaultCode::parse("soapenv:Client"), FaultCode::Client);
        assert_eq!(FaultCode::parse("soapenv:Server"), FaultCode::Server);
        assert_eq!(FaultCode::parse("anything"), FaultCode::Server);
    }

    #[test]
    fn malformed_payloads_rejected() {
        for bad in [
            "not xml at all",
            "<notsoap/>",
            "<soapenv:Envelope/>",
            "<soapenv:Envelope><soapenv:Body/></soapenv:Envelope>",
        ] {
            assert!(decode_request(bad).is_err(), "{bad}");
        }
        assert!(decode_response("<wrong/>").is_err());
    }

    #[test]
    fn fault_display() {
        let f = SoapFault::non_existent_method("add");
        let s = f.to_string();
        assert!(s.contains("Non existent Method"));
        assert!(s.contains("add"));
    }
}
