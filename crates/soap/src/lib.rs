//! # soap — SOAP 1.1 envelopes and WSDL 1.1 documents
//!
//! The Web Services substrate of the reproduction, standing in for Apache
//! Axis. Covers exactly what the paper's SOAP subsystem (§2.1, §5.1) needs:
//!
//! * [`encoding`] — mapping between [`jpie::Value`]s and SOAP-encoded XML
//!   (`xsi:type`-annotated elements, including user-defined complex types
//!   and arrays, which WSDL "permits ... using XML" per §2.1),
//! * [`SoapRequest`] / [`SoapResponse`] / [`SoapFault`] — envelope
//!   encoding and decoding for the request/response/fault paths, with the
//!   fault messages the paper enumerates (`Server not initialized`,
//!   `Malformed SOAP Request`, `Non existent Method`),
//! * [`WsdlDocument`] — a WSDL 1.1 model with both a generator (the server
//!   side's WSDL Generator, §5.1) and a parser (the client side's "WSDL
//!   compiler", Fig 1), including the *minimal WSDL document* that SDE
//!   publishes at initialization (§5.1.1: endpoint address, no
//!   operations).
//!
//! # Examples
//!
//! ```
//! use jpie::Value;
//! use soap::{SoapRequest, decode_request};
//!
//! # fn main() -> Result<(), soap::SoapError> {
//! let req = SoapRequest::new("urn:calc", "add")
//!     .arg("a", Value::Int(2))
//!     .arg("b", Value::Int(3));
//! let xml = req.to_xml();
//! let back = decode_request(&xml)?;
//! assert_eq!(back.method(), "add");
//! assert_eq!(back.args()[1].1, Value::Int(3));
//! # Ok(())
//! # }
//! ```

pub mod domcodec;
pub mod encoding;
mod envelope;
mod error;
mod stream;
mod wsdl;

pub use envelope::{
    decode_request, decode_response, FaultCode, SoapFault, SoapRequest, SoapResponse,
};
pub use error::SoapError;
pub use stream::{
    decode_request_traced, decode_request_with_id, encode_fault_into, encode_ok_into,
    encode_request_into, encode_request_traced_into, encode_request_with_id_into, CALL_ID_NS,
    REPLY_CACHE_HEADER, TRACE_NS,
};
pub use wsdl::{WsdlDocument, WsdlOperation};
