//! WSDL 1.1 documents: generation (server side) and parsing (client side).
//!
//! The WSDL Generator of the paper's SOAP subsystem (§5.1) creates these
//! documents from the current set of `distributed` methods; the client
//! side "WSDL compiler" (Fig 1) parses them back into method stubs.
//!
//! Two fidelity notes:
//!
//! * SDE publishes a **minimal WSDL document** at initialization — it
//!   "contains the SOAP Endpoint address but does not contain any server
//!   operation definitions" (§5.1.1 fn 1). [`WsdlDocument::minimal`]
//!   produces exactly that.
//! * The generator stamps the class's **interface version** into the
//!   document (`lr:interfaceVersion` attribute). The paper's §6 recency
//!   guarantee is stated in terms of "a published server interface at
//!   least as recent as the interface used by the server" — the version
//!   stamp is what makes recency observable (and testable).

use jpie::{SignatureView, TypeDesc};
use xmlrt::XmlNode;

use crate::encoding::{type_from_xsi, xsi_type};
use crate::error::SoapError;

/// One operation (remote method) in a WSDL document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WsdlOperation {
    /// Operation name.
    pub name: String,
    /// `(name, type)` of each parameter, in order.
    pub params: Vec<(String, TypeDesc)>,
    /// Return type ([`TypeDesc::Void`] for one-way results).
    pub return_ty: TypeDesc,
}

impl WsdlOperation {
    /// Builds an operation from a dynamic-class signature view.
    pub fn from_signature(sig: &SignatureView) -> WsdlOperation {
        WsdlOperation {
            name: sig.name.clone(),
            params: sig
                .params
                .iter()
                .map(|(_, n, t)| (n.clone(), t.clone()))
                .collect(),
            return_ty: sig.return_ty.clone(),
        }
    }
}

/// A WSDL 1.1 document: service name, endpoint address, operations, and
/// the interface version stamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WsdlDocument {
    /// Service (class) name.
    pub service_name: String,
    /// SOAP endpoint URL clients post requests to.
    pub endpoint: String,
    /// Published operations. Empty for the minimal document.
    pub operations: Vec<WsdlOperation>,
    /// Interface version of the dynamic class when this document was
    /// generated.
    pub version: u64,
}

impl WsdlDocument {
    /// The minimal document published at server initialization (§5.1.1):
    /// endpoint only, no operations, version 0.
    pub fn minimal(service_name: impl Into<String>, endpoint: impl Into<String>) -> WsdlDocument {
        WsdlDocument {
            service_name: service_name.into(),
            endpoint: endpoint.into(),
            operations: Vec::new(),
            version: 0,
        }
    }

    /// Builds a document from the distributed signatures of a class.
    pub fn from_signatures(
        service_name: impl Into<String>,
        endpoint: impl Into<String>,
        signatures: &[SignatureView],
        version: u64,
    ) -> WsdlDocument {
        WsdlDocument {
            service_name: service_name.into(),
            endpoint: endpoint.into(),
            operations: signatures
                .iter()
                .map(WsdlOperation::from_signature)
                .collect(),
            version,
        }
    }

    /// The target namespace (`urn:<service>`), used in SOAP request
    /// envelopes.
    pub fn namespace(&self) -> String {
        format!("urn:{}", self.service_name)
    }

    /// Looks up an operation by name.
    pub fn operation(&self, name: &str) -> Option<&WsdlOperation> {
        self.operations.iter().find(|o| o.name == name)
    }

    /// The SOAPAction value for an operation (`urn:Service#operation`),
    /// sent in the HTTP `SOAPAction` header as Axis did.
    pub fn soap_action(&self, operation: &str) -> String {
        format!("{}#{operation}", self.namespace())
    }

    /// Serializes this document as WSDL 1.1 XML.
    pub fn to_xml(&self) -> String {
        let mut defs = XmlNode::new("wsdl:definitions");
        defs.set_attr("xmlns:wsdl", "http://schemas.xmlsoap.org/wsdl/")
            .set_attr("xmlns:soap", "http://schemas.xmlsoap.org/wsdl/soap/")
            .set_attr("xmlns:xsd", "http://www.w3.org/2001/XMLSchema")
            .set_attr("xmlns:tns", self.namespace())
            .set_attr("targetNamespace", self.namespace())
            .set_attr("name", &self.service_name)
            .set_attr("lr:interfaceVersion", self.version.to_string());

        // Messages: one input and one output per operation.
        for op in &self.operations {
            let mut input = XmlNode::new("wsdl:message");
            input.set_attr("name", format!("{}Request", op.name));
            for (pname, pty) in &op.params {
                input.push_child(part_node(pname, pty));
            }
            defs.push_child(input);

            let mut output = XmlNode::new("wsdl:message");
            output.set_attr("name", format!("{}Response", op.name));
            if op.return_ty != TypeDesc::Void {
                output.push_child(part_node("return", &op.return_ty));
            }
            defs.push_child(output);
        }

        // Port type listing the operations.
        let mut port_type = XmlNode::new("wsdl:portType");
        port_type.set_attr("name", format!("{}PortType", self.service_name));
        for op in &self.operations {
            let mut operation = XmlNode::new("wsdl:operation");
            operation.set_attr("name", &op.name);
            let mut input = XmlNode::new("wsdl:input");
            input.set_attr("message", format!("tns:{}Request", op.name));
            operation.push_child(input);
            let mut output = XmlNode::new("wsdl:output");
            output.set_attr("message", format!("tns:{}Response", op.name));
            operation.push_child(output);
            port_type.push_child(operation);
        }
        defs.push_child(port_type);

        // RPC/encoded binding (what Axis produced in 2004), with a
        // soap:operation carrying the SOAPAction for each operation.
        let mut binding = XmlNode::new("wsdl:binding");
        binding
            .set_attr("name", format!("{}Binding", self.service_name))
            .set_attr("type", format!("tns:{}PortType", self.service_name));
        let mut soap_binding = XmlNode::new("soap:binding");
        soap_binding
            .set_attr("style", "rpc")
            .set_attr("transport", "http://schemas.xmlsoap.org/soap/http");
        binding.push_child(soap_binding);
        for op in &self.operations {
            let mut operation = XmlNode::new("wsdl:operation");
            operation.set_attr("name", &op.name);
            let mut soap_op = XmlNode::new("soap:operation");
            soap_op.set_attr("soapAction", self.soap_action(&op.name));
            operation.push_child(soap_op);
            binding.push_child(operation);
        }
        defs.push_child(binding);

        // Service with the endpoint address.
        let mut service = XmlNode::new("wsdl:service");
        service.set_attr("name", &self.service_name);
        let mut port = XmlNode::new("wsdl:port");
        port.set_attr("name", format!("{}Port", self.service_name))
            .set_attr("binding", format!("tns:{}Binding", self.service_name));
        let mut address = XmlNode::new("soap:address");
        address.set_attr("location", &self.endpoint);
        port.push_child(address);
        service.push_child(port);
        defs.push_child(service);

        format!(
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>{}",
            defs.to_xml()
        )
    }

    /// Parses a WSDL document produced by [`WsdlDocument::to_xml`] (the
    /// client-side WSDL compiler of Fig 1).
    ///
    /// # Errors
    ///
    /// Returns [`SoapError::BadWsdl`] when required elements are missing,
    /// or [`SoapError::Malformed`] for non-XML input.
    pub fn parse(xml: &str) -> Result<WsdlDocument, SoapError> {
        let doc = XmlNode::parse(xml)?;
        if doc.local_name() != "definitions" {
            return Err(SoapError::BadWsdl(format!(
                "root element <{}> is not wsdl:definitions",
                doc.name()
            )));
        }
        let service_name = doc
            .attr("name")
            .ok_or_else(|| SoapError::BadWsdl("definitions has no name".into()))?
            .to_string();
        let version = doc
            .attr("interfaceVersion")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let endpoint = doc
            .child("service")
            .and_then(|s| s.child("port"))
            .and_then(|p| p.child("address"))
            .and_then(|a| a.attr("location"))
            .ok_or_else(|| SoapError::BadWsdl("no soap:address location".into()))?
            .to_string();

        let mut operations = Vec::new();
        if let Some(port_type) = doc.child("portType") {
            for op_node in port_type.children_named("operation") {
                let name = op_node
                    .attr("name")
                    .ok_or_else(|| SoapError::BadWsdl("operation without name".into()))?
                    .to_string();
                let params = Self::message_parts(&doc, &format!("{name}Request"))?;
                let outputs = Self::message_parts(&doc, &format!("{name}Response"))?;
                let return_ty = outputs
                    .into_iter()
                    .find(|(n, _)| n == "return")
                    .map(|(_, t)| t)
                    .unwrap_or(TypeDesc::Void);
                operations.push(WsdlOperation {
                    name,
                    params,
                    return_ty,
                });
            }
        }
        Ok(WsdlDocument {
            service_name,
            endpoint,
            operations,
            version,
        })
    }

    fn message_parts(
        doc: &XmlNode,
        message_name: &str,
    ) -> Result<Vec<(String, TypeDesc)>, SoapError> {
        let message = doc
            .children_named("message")
            .find(|m| m.attr("name") == Some(message_name))
            .ok_or_else(|| SoapError::BadWsdl(format!("missing message {message_name}")))?;
        let mut parts = Vec::new();
        for part in message.children_named("part") {
            let name = part
                .attr("name")
                .ok_or_else(|| SoapError::BadWsdl("part without name".into()))?
                .to_string();
            let ty_name = part
                .attr("type")
                .ok_or_else(|| SoapError::BadWsdl("part without type".into()))?;
            let ty = if ty_name == "soapenc:Array" {
                // Arrays in part types carry the item type in lr:itemType.
                let item = part
                    .attr("itemType")
                    .ok_or_else(|| SoapError::BadWsdl("array part without itemType".into()))?;
                TypeDesc::Seq(Box::new(
                    crate::encoding::parse_item_type(item)
                        .map_err(|e| SoapError::BadWsdl(e.to_string()))?,
                ))
            } else {
                type_from_xsi(ty_name)?
            };
            parts.push((name, ty));
        }
        Ok(parts)
    }
}

/// Builds a `wsdl:part` element for one parameter, writing the item type
/// alongside array types so they survive the round trip.
fn part_node(name: &str, ty: &TypeDesc) -> XmlNode {
    let mut part = XmlNode::new("wsdl:part");
    part.set_attr("name", name);
    if let TypeDesc::Seq(elem) = ty {
        part.set_attr("type", "soapenc:Array")
            .set_attr("lr:itemType", crate::encoding::array_item_type(elem));
    } else {
        part.set_attr("type", xsi_type(ty));
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WsdlDocument {
        WsdlDocument {
            service_name: "Calc".into(),
            endpoint: "mem://calc/soap".into(),
            operations: vec![
                WsdlOperation {
                    name: "add".into(),
                    params: vec![("a".into(), TypeDesc::Int), ("b".into(), TypeDesc::Int)],
                    return_ty: TypeDesc::Int,
                },
                WsdlOperation {
                    name: "describe".into(),
                    params: vec![("p".into(), TypeDesc::Named("Point".into()))],
                    return_ty: TypeDesc::Str,
                },
                WsdlOperation {
                    name: "reset".into(),
                    params: vec![],
                    return_ty: TypeDesc::Void,
                },
            ],
            version: 7,
        }
    }

    #[test]
    fn roundtrip() {
        let doc = sample();
        let xml = doc.to_xml();
        let back = WsdlDocument::parse(&xml).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn minimal_document_has_endpoint_but_no_operations() {
        let doc = WsdlDocument::minimal("Calc", "tcp://127.0.0.1:9999/soap");
        let xml = doc.to_xml();
        let back = WsdlDocument::parse(&xml).unwrap();
        assert_eq!(back.endpoint, "tcp://127.0.0.1:9999/soap");
        assert!(back.operations.is_empty());
        assert_eq!(back.version, 0);
    }

    #[test]
    fn namespace_derived_from_service() {
        assert_eq!(sample().namespace(), "urn:Calc");
    }

    #[test]
    fn operation_lookup() {
        let doc = sample();
        assert!(doc.operation("add").is_some());
        assert!(doc.operation("sub").is_none());
    }

    #[test]
    fn version_survives_roundtrip() {
        let mut doc = sample();
        doc.version = 123;
        assert_eq!(WsdlDocument::parse(&doc.to_xml()).unwrap().version, 123);
    }

    #[test]
    fn array_params_roundtrip() {
        let mut doc = sample();
        doc.operations.push(WsdlOperation {
            name: "sum".into(),
            params: vec![("xs".into(), TypeDesc::Seq(Box::new(TypeDesc::Int)))],
            return_ty: TypeDesc::Int,
        });
        let back = WsdlDocument::parse(&doc.to_xml()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn nested_array_params_roundtrip() {
        let mut doc = sample();
        doc.operations.push(WsdlOperation {
            name: "grid".into(),
            params: vec![(
                "g".into(),
                TypeDesc::Seq(Box::new(TypeDesc::Seq(Box::new(TypeDesc::Int)))),
            )],
            return_ty: TypeDesc::Seq(Box::new(TypeDesc::Str)),
        });
        let back = WsdlDocument::parse(&doc.to_xml()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn rejects_non_wsdl() {
        assert!(WsdlDocument::parse("<html/>").is_err());
        assert!(WsdlDocument::parse("garbage").is_err());
    }

    #[test]
    fn rejects_missing_address() {
        let xml = "<wsdl:definitions name=\"X\"/>";
        assert!(matches!(
            WsdlDocument::parse(xml),
            Err(SoapError::BadWsdl(_))
        ));
    }

    #[test]
    fn from_signatures_maps_params() {
        use jpie::{ClassHandle, MethodBuilder};
        let class = ClassHandle::new("Svc");
        class
            .add_method(
                MethodBuilder::new("greet", TypeDesc::Str)
                    .param("who", TypeDesc::Str)
                    .distributed(true),
            )
            .unwrap();
        class
            .add_method(MethodBuilder::new("hidden", TypeDesc::Void))
            .unwrap();
        let doc = WsdlDocument::from_signatures(
            "Svc",
            "mem://svc",
            &class.distributed_signatures(),
            class.interface_version(),
        );
        assert_eq!(doc.operations.len(), 1);
        assert_eq!(doc.operations[0].name, "greet");
        assert_eq!(
            doc.operations[0].params,
            vec![("who".into(), TypeDesc::Str)]
        );
    }
}
