use std::error::Error;
use std::fmt;

use xmlrt::XmlError;

/// Error produced while encoding or decoding SOAP/WSDL documents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SoapError {
    /// The bytes are not well-formed XML, or not a SOAP envelope — the
    /// condition the paper's call handler answers with a *"Malformed SOAP
    /// Request"* fault (§5.1.3).
    Malformed(String),
    /// Well-formed XML, but an unknown or inconsistent `xsi:type`.
    BadType(String),
    /// A WSDL document missing a required element.
    BadWsdl(String),
}

impl fmt::Display for SoapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoapError::Malformed(m) => write!(f, "malformed soap message: {m}"),
            SoapError::BadType(m) => write!(f, "bad soap value type: {m}"),
            SoapError::BadWsdl(m) => write!(f, "bad wsdl document: {m}"),
        }
    }
}

impl Error for SoapError {}

impl From<XmlError> for SoapError {
    fn from(e: XmlError) -> Self {
        SoapError::Malformed(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xml_error_converts() {
        let xml_err = xmlrt::XmlNode::parse("<oops").unwrap_err();
        let e: SoapError = xml_err.into();
        assert!(matches!(e, SoapError::Malformed(_)));
    }

    #[test]
    fn error_traits() {
        fn assert_traits<T: Send + Sync + Error + 'static>() {}
        assert_traits::<SoapError>();
    }
}
