//! Reference DOM-based SOAP codec.
//!
//! This is the original tree-building implementation of the envelope
//! codec, kept public after the hot path moved to the streaming codec
//! in `stream.rs`. It serves two purposes:
//!
//! * **differential oracle** — `tests/props.rs` asserts the streaming
//!   encoder produces byte-identical envelopes and the streaming
//!   decoder equal values across generated `Value` trees, and
//! * **tooling** — code that wants an [`XmlNode`] view of an envelope
//!   (inspectors, the development environment) can keep using the DOM.
//!
//! The crate-level `decode_request`/`decode_response` and the envelope
//! types' `to_xml`/`encode_*` methods delegate to the streaming codec;
//! nothing on the RMI hot path goes through here.

use jpie::Value;
use xmlrt::{XmlNode, XmlWriter};

use crate::encoding::{decode_value, encode_value};
use crate::envelope::{
    FaultCode, SoapFault, SoapRequest, SoapResponse, ENVELOPE_NS, SOAPENC_NS, XSD_NS, XSI_NS,
};
use crate::error::SoapError;

/// Serializes a request envelope by building the element tree.
pub fn encode_request(req: &SoapRequest) -> String {
    let mut body = XmlNode::new(format!("ns1:{}", req.method()));
    body.set_attr("xmlns:ns1", req.namespace());
    for (name, value) in req.args() {
        encode_value(&mut body, name, value);
    }
    envelope_around(body)
}

/// Serializes a success response envelope for `method`.
pub fn encode_ok(method: &str, namespace: &str, value: &Value) -> String {
    let mut body = XmlNode::new(format!("ns1:{method}Response"));
    body.set_attr("xmlns:ns1", namespace);
    encode_value(&mut body, "return", value);
    envelope_around(body)
}

/// Serializes a fault envelope.
pub fn encode_fault(fault: &SoapFault) -> String {
    let mut node = XmlNode::new("soapenv:Fault");
    let mut code = XmlNode::new("faultcode");
    code.set_text(fault.code.as_str());
    node.push_child(code);
    let mut fs = XmlNode::new("faultstring");
    fs.set_text(fault.fault_string.clone());
    node.push_child(fs);
    if let Some(d) = &fault.detail {
        let mut detail = XmlNode::new("detail");
        detail.set_text(d.clone());
        node.push_child(detail);
    }
    envelope_around(node)
}

fn envelope_around(body_content: XmlNode) -> String {
    let mut w = XmlWriter::new();
    w.declaration().expect("fresh writer");
    let mut env = XmlNode::new("soapenv:Envelope");
    env.set_attr("xmlns:soapenv", ENVELOPE_NS)
        .set_attr("xmlns:xsd", XSD_NS)
        .set_attr("xmlns:xsi", XSI_NS)
        .set_attr("xmlns:soapenc", SOAPENC_NS);
    let mut body = XmlNode::new("soapenv:Body");
    body.push_child(body_content);
    env.push_child(body);
    let mut out = w.finish();
    out.push_str(&env.to_xml());
    out
}

fn body_of(xml: &str) -> Result<XmlNode, SoapError> {
    let doc = XmlNode::parse(xml)?;
    if doc.local_name() != "Envelope" {
        return Err(SoapError::Malformed(format!(
            "root element is <{}>, not a SOAP Envelope",
            doc.name()
        )));
    }
    let body = doc
        .child("Body")
        .ok_or_else(|| SoapError::Malformed("envelope has no Body".into()))?;
    Ok(body.clone())
}

/// Decodes a request envelope through the DOM.
///
/// # Errors
///
/// Returns [`SoapError::Malformed`] when the XML is not a SOAP request.
pub fn decode_request(xml: &str) -> Result<SoapRequest, SoapError> {
    let body = body_of(xml)?;
    let call = body
        .children()
        .first()
        .ok_or_else(|| SoapError::Malformed("empty Body".into()))?;
    let namespace = call
        .attr("xmlns:ns1")
        .or_else(|| call.attr("ns1"))
        .unwrap_or("")
        .to_string();
    let mut args = Vec::new();
    for child in call.children() {
        args.push((child.local_name().to_string(), decode_value(child)?));
    }
    Ok(SoapRequest::from_parts(
        namespace,
        call.local_name().to_string(),
        args,
    ))
}

/// Decodes a response envelope through the DOM.
///
/// # Errors
///
/// Returns [`SoapError::Malformed`] for non-SOAP payloads.
pub fn decode_response(xml: &str) -> Result<SoapResponse, SoapError> {
    let body = body_of(xml)?;
    if let Some(fault) = body.child("Fault") {
        let code = fault.child("faultcode").map(|c| c.text()).unwrap_or("");
        let fault_string = fault
            .child("faultstring")
            .map(|c| c.text().to_string())
            .unwrap_or_default();
        let detail = fault.child("detail").map(|c| c.text().to_string());
        return Ok(SoapResponse::Fault(SoapFault {
            code: FaultCode::parse(code),
            fault_string,
            detail,
        }));
    }
    let resp = body
        .children()
        .first()
        .ok_or_else(|| SoapError::Malformed("empty Body".into()))?;
    match resp.child("return") {
        Some(ret) => Ok(SoapResponse::Ok(decode_value(ret)?)),
        None => Ok(SoapResponse::Ok(Value::Null)),
    }
}
