//! The router proper: shard lifecycle, the front HTTP proxy, health
//! checking, and the failover state machine.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cde::{BreakerState, CircuitBreaker};
use corba::Ior;
use httpd::{ConnectionPool, Handler, HttpClient, HttpServer, Method, Request, Response, Status};
use jpie::Value;
use obs::rng::XorShift64;
use obs::sync::{Mutex, RwLock};
use sde::{PublicationStrategy, SdeConfig, SdeManager, SdeServerGateway, TransportKind};
use sde::{WalFollower, WalReplicator};

use crate::migrate::{self, MigrationCtl, MigrationEvent, MigrationHandle, MoveOpts};
use crate::proxy::GiopProxy;
use crate::ring::HashRing;

/// Which wire a class serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wire {
    /// SOAP over HTTP (WSDL interface document).
    Soap,
    /// CORBA/GIOP (IDL + IOR interface documents).
    Corba,
}

/// A class the fleet serves: name, jpie source, and wire. The source
/// travels with the router so a promoted follower can rebuild the class
/// from scratch — its version floor then genuinely comes from the
/// replicated WAL, not from shared in-memory state.
#[derive(Debug, Clone)]
pub struct ClassSpec {
    pub name: String,
    pub source: String,
    pub wire: Wire,
}

impl ClassSpec {
    /// A SOAP-served class.
    pub fn soap(name: impl Into<String>, source: impl Into<String>) -> ClassSpec {
        ClassSpec {
            name: name.into(),
            source: source.into(),
            wire: Wire::Soap,
        }
    }

    /// A CORBA-served class.
    pub fn corba(name: impl Into<String>, source: impl Into<String>) -> ClassSpec {
        ClassSpec {
            name: name.into(),
            source: source.into(),
            wire: Wire::Corba,
        }
    }
}

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Number of shards (each gets a leader backend + a WAL follower).
    pub shards: usize,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// Transport for every bound address.
    pub transport: TransportKind,
    /// Root directory for per-shard WALs and replicas.
    pub wal_root: PathBuf,
    /// Distinguishes this router's `mem://` namespace; must be unique
    /// per live router in a process.
    pub tag: String,
    /// Interval between health probes of each shard.
    pub health_interval: Duration,
    /// Consecutive failure signals (probe or forward) that open a
    /// shard's breaker and trigger failover.
    pub failure_threshold: u32,
    /// Probe connect timeout.
    pub probe_timeout: Duration,
    /// Bound on the drain phase of a planned migration: quiescence
    /// (zero in-flight calls on the moving class) must be reached
    /// within this window or the migration aborts with the source
    /// untouched.
    pub drain_deadline: Duration,
    /// Base Retry-After hint handed to clients parked by a drain or a
    /// failover. Each response adds seeded jitter in `[0, base)` so a
    /// parked herd does not reconverge on the new backend in one
    /// synchronized wave.
    pub retry_after: Duration,
    /// Seed for the Retry-After jitter stream (deterministic runs).
    pub seed: u64,
    /// Optional per-shard vnode weights — relative placement capacity.
    /// `None` means a uniform `vnodes` points per shard; a zero weight
    /// keeps the shard running but homes no classes on it.
    pub weights: Option<Vec<usize>>,
}

impl RouterConfig {
    /// Defaults tuned for sub-second failover: 20ms probes, breaker
    /// opens on the 2nd consecutive failure.
    pub fn new(
        shards: usize,
        transport: TransportKind,
        wal_root: impl Into<PathBuf>,
        tag: impl Into<String>,
    ) -> RouterConfig {
        RouterConfig {
            shards,
            vnodes: 32,
            transport,
            wal_root: wal_root.into(),
            tag: tag.into(),
            health_interval: Duration::from_millis(20),
            failure_threshold: 2,
            probe_timeout: Duration::from_millis(100),
            drain_deadline: Duration::from_secs(2),
            retry_after: Duration::from_millis(25),
            seed: 0x5DE0_2005,
            weights: None,
        }
    }
}

/// Router failures.
#[derive(Debug)]
pub struct RouterError(pub String);

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "router: {}", self.0)
    }
}

impl std::error::Error for RouterError {}

pub(crate) fn rerr(e: impl std::fmt::Display) -> RouterError {
    RouterError(e.to_string())
}

/// One completed failover, with its phase latencies.
#[derive(Debug, Clone)]
pub struct FailoverEvent {
    pub shard: usize,
    /// Generation the shard was promoted to.
    pub generation: u64,
    /// Kill (or first failure signal) → failover start.
    pub detect_ms: f64,
    /// WAL adoption + replay on the promoted follower.
    pub replay_ms: f64,
    /// Class redeploys + forced republication + route swap.
    pub republish_ms: f64,
    /// detect + replay + republish.
    pub total_ms: f64,
    pub classes: Vec<String>,
}

/// A point-in-time view of one shard, for the REPL `shards` command
/// and the chaos sweep.
#[derive(Debug, Clone)]
pub struct ShardStatus {
    pub id: usize,
    pub generation: u64,
    pub alive: bool,
    pub doc_authority: String,
    pub classes: Vec<String>,
    /// Records in the leader's WAL.
    pub leader_records: u64,
    /// Records the follower has durably applied.
    pub follower_records: u64,
    pub follower_connected: bool,
    /// Replication lag in records (leader − follower).
    pub lag_records: u64,
}

/// One live backend process-equivalent: an SDE manager plus its
/// replication chain.
pub(crate) struct Backend {
    pub(crate) manager: Arc<SdeManager>,
    pub(crate) doc_authority: String,
    /// Backend SOAP endpoint per class: (authority, full URL).
    pub(crate) soap_endpoints: HashMap<String, (String, String)>,
    pub(crate) replicator: WalReplicator,
    pub(crate) follower: Option<WalFollower>,
    pub(crate) follower_dir: PathBuf,
}

pub(crate) struct Shard {
    pub(crate) generation: u64,
    pub(crate) classes: Vec<ClassSpec>,
    pub(crate) backend: Backend,
    pub(crate) dead: bool,
}

/// What the front handler needs per class, snapshotted under RwLock so
/// the hot path never touches a shard mutex.
#[derive(Clone)]
pub(crate) struct Route {
    pub(crate) shard: usize,
    pub(crate) wire: Wire,
    pub(crate) doc_authority: String,
    /// Authority of the backend SOAP endpoint (forward target).
    pub(crate) soap_authority: String,
    /// Full backend endpoint URL (the needle rewritten out of WSDL).
    pub(crate) soap_url: String,
}

/// Per-class admission gate at the front proxy. A drain sets
/// `draining` and waits for `in_flight` to reach zero; the hot path
/// increments `in_flight` *before* checking the flag, so under SeqCst
/// ordering no call can slip past an observed-quiescent gate
/// (Matevska-Meyer quiescence, at the routing tier).
#[derive(Default)]
pub(crate) struct ClassGate {
    pub(crate) draining: AtomicBool,
    pub(crate) in_flight: AtomicU64,
    /// Calls answered 503 while draining (the "pause" the client saw).
    pub(crate) parked: AtomicU64,
}

pub(crate) struct RouterInner {
    pub(crate) cfg: RouterConfig,
    pub(crate) ring: HashRing,
    pub(crate) shards: Vec<Mutex<Shard>>,
    pub(crate) routes: RwLock<HashMap<String, Route>>,
    /// Stable GIOP front per CORBA class.
    pub(crate) giop: HashMap<String, Arc<GiopProxy>>,
    pub(crate) pool: ConnectionPool,
    pub(crate) front_base: RwLock<String>,
    pub(crate) breakers: Vec<RwLock<Arc<CircuitBreaker>>>,
    pub(crate) failing_over: Vec<AtomicBool>,
    /// First failure signal per shard since the last success, for the
    /// detect segment of failover latency.
    pub(crate) suspected_at: Vec<Mutex<Option<Instant>>>,
    pub(crate) last_failover: Mutex<Option<FailoverEvent>>,
    /// Front admission gates for planned drains, one per class.
    pub(crate) class_gates: RwLock<HashMap<String, Arc<ClassGate>>>,
    /// Pool generations already purged, per shard. Failover purges a
    /// retired generation wholesale; a migration's deferred purge
    /// consults this set (and the live generation) first, so the two
    /// paths can race without ever double-purging connections a newer
    /// healthy backend has since warmed at a reused authority.
    pub(crate) purged_gens: Vec<Mutex<HashSet<u64>>>,
    /// Serializes planned operations (one migration at a time).
    pub(crate) migration_lock: Mutex<()>,
    pub(crate) migration_seq: AtomicU64,
    pub(crate) last_migration: Mutex<Option<MigrationEvent>>,
    /// Seeded jitter stream for Retry-After hints.
    pub(crate) retry_jitter: Mutex<XorShift64>,
    pub(crate) stop: AtomicBool,
}

/// The sharded authority router.
pub struct Router {
    inner: Arc<RouterInner>,
    front: HttpServer,
    health: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("front", &self.front.base_url())
            .field("shards", &self.inner.cfg.shards)
            .finish_non_exhaustive()
    }
}

pub(crate) fn fresh_addr(transport: TransportKind, tag: &str, what: &str) -> String {
    match transport {
        TransportKind::Mem => format!("mem://rt-{tag}-{what}"),
        TransportKind::Tcp => "tcp://127.0.0.1:0".to_string(),
    }
}

impl Router {
    /// Starts the fleet: one leader + follower per shard, classes
    /// assigned by the ring, both wire fronts bound, health loop
    /// running.
    ///
    /// # Errors
    ///
    /// Fails if any address cannot be bound or any class source does
    /// not parse.
    pub fn start(cfg: RouterConfig, classes: Vec<ClassSpec>) -> Result<Router, RouterError> {
        std::fs::create_dir_all(&cfg.wal_root).map_err(rerr)?;
        let ring = match &cfg.weights {
            Some(weights) => {
                if weights.len() != cfg.shards {
                    return Err(rerr(format!(
                        "weights has {} entries for {} shards",
                        weights.len(),
                        cfg.shards
                    )));
                }
                HashRing::with_weights(weights)
            }
            None => HashRing::new(cfg.shards, cfg.vnodes),
        };
        let mut per_shard: Vec<Vec<ClassSpec>> = (0..cfg.shards).map(|_| Vec::new()).collect();
        for spec in classes {
            per_shard[ring.shard_for(&spec.name)].push(spec);
        }

        let mut shards = Vec::with_capacity(cfg.shards);
        let mut routes = HashMap::new();
        let mut giop = HashMap::new();
        let mut breakers = Vec::with_capacity(cfg.shards);
        for (i, specs) in per_shard.into_iter().enumerate() {
            let ifc_addr = fresh_addr(cfg.transport, &cfg.tag, &format!("s{i}g0-ifc"));
            let leader_dir = cfg.wal_root.join(format!("s{i}-leader"));
            let manager = Arc::new(
                SdeManager::with_interface_addr(
                    SdeConfig {
                        transport: cfg.transport,
                        strategy: PublicationStrategy::ChangeDriven,
                        wal_dir: Some(leader_dir),
                    },
                    &ifc_addr,
                )
                .map_err(rerr)?,
            );
            let backend = start_backend(&cfg, i, 0, &specs, manager)?;
            for spec in &specs {
                if spec.wire == Wire::Corba {
                    let orb = backend
                        .manager
                        .corba_server(&spec.name)
                        .map(|s| s.ior().address)
                        .ok_or_else(|| rerr(format!("{} has no ORB", spec.name)))?;
                    let front_addr =
                        fresh_addr(cfg.transport, &cfg.tag, &format!("giop-{}", spec.name));
                    giop.insert(
                        spec.name.clone(),
                        GiopProxy::start(&front_addr, orb).map_err(rerr)?,
                    );
                }
                routes.insert(spec.name.clone(), route_for(i, spec, &backend));
            }
            breakers.push(RwLock::new(Arc::new(CircuitBreaker::new(
                &backend.doc_authority,
                cfg.failure_threshold,
                Duration::from_millis(100),
            ))));
            shards.push(Mutex::new(Shard {
                generation: 0,
                classes: specs,
                backend,
                dead: false,
            }));
        }

        let inner = Arc::new(RouterInner {
            ring,
            shards,
            routes: RwLock::new(routes),
            giop,
            pool: ConnectionPool::new(HttpClient::new().with_read_timeout(Duration::from_secs(5))),
            front_base: RwLock::new(String::new()),
            breakers,
            failing_over: (0..cfg.shards).map(|_| AtomicBool::new(false)).collect(),
            suspected_at: (0..cfg.shards).map(|_| Mutex::new(None)).collect(),
            last_failover: Mutex::new(None),
            class_gates: RwLock::new(HashMap::new()),
            purged_gens: (0..cfg.shards)
                .map(|_| Mutex::new(HashSet::new()))
                .collect(),
            migration_lock: Mutex::new(()),
            migration_seq: AtomicU64::new(0),
            last_migration: Mutex::new(None),
            retry_jitter: Mutex::new(XorShift64::seed_from_u64(cfg.seed)),
            stop: AtomicBool::new(false),
            cfg,
        });

        for (name, proxy) in &inner.giop {
            let weak = Arc::downgrade(&inner);
            let shard = inner.routes.read().get(name).expect("route exists").shard;
            proxy.set_on_error(Arc::new(move || {
                if let Some(inner) = weak.upgrade() {
                    inner.note_failure(shard);
                }
            }));
        }

        let front_addr = fresh_addr(inner.cfg.transport, &inner.cfg.tag, "front");
        let front = HttpServer::bind(
            &front_addr,
            FrontHandler {
                inner: inner.clone(),
            },
        )
        .map_err(rerr)?;
        *inner.front_base.write() = front.base_url();

        let health = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("router-health".into())
                .spawn(move || health_loop(&inner))
                .expect("spawn router health thread")
        };

        Ok(Router {
            inner,
            front,
            health: Mutex::new(Some(health)),
        })
    }

    /// The front base URL clients fetch documents from.
    pub fn front_url(&self) -> String {
        self.front.base_url()
    }

    /// Front WSDL URL for `class`.
    pub fn wsdl_url(&self, class: &str) -> String {
        format!("{}/{class}.wsdl", self.front.base_url())
    }

    /// Front IDL URL for `class`.
    pub fn idl_url(&self, class: &str) -> String {
        format!("{}/{class}.idl", self.front.base_url())
    }

    /// Front IOR URL for `class`.
    pub fn ior_url(&self, class: &str) -> String {
        format!("{}/{class}.ior", self.front.base_url())
    }

    /// The shard currently serving `class` — the routing table when
    /// the class is placed (migrations move placement away from its
    /// ring home), the ring otherwise.
    pub fn shard_of(&self, class: &str) -> usize {
        if let Some(route) = self.inner.routes.read().get(class) {
            return route.shard;
        }
        self.inner.ring.shard_for(class)
    }

    /// Ring assignments: (class, shard), sorted by class name.
    pub fn assignments(&self) -> Vec<(String, usize)> {
        let mut v: Vec<(String, usize)> = self
            .inner
            .routes
            .read()
            .iter()
            .map(|(name, r)| (name.clone(), r.shard))
            .collect();
        v.sort();
        v
    }

    /// Kills shard `n`'s backend in place: the SDE process and its
    /// replication listener go away, exactly like a machine death. The
    /// follower (a separate process in real deployments) survives and
    /// the health loop drives promotion.
    pub fn kill_shard(&self, n: usize) {
        let shard = self.inner.shards[n].lock();
        shard.backend.manager.shutdown();
        shard.backend.replicator.shutdown();
        drop(shard);
        *self.inner.suspected_at[n].lock() = Some(Instant::now());
        obs::registry().counter("router_shards_killed_total").inc();
        obs::trace::event("router", "shard-killed", format!("shard={n}"));
    }

    /// Point-in-time status of every shard.
    pub fn status(&self) -> Vec<ShardStatus> {
        (0..self.inner.cfg.shards)
            .map(|i| {
                let shard = self.inner.shards[i].lock();
                let leader_records = shard
                    .backend
                    .manager
                    .wal()
                    .map(|w| w.record_count())
                    .unwrap_or(0);
                let (follower_records, follower_connected) = shard
                    .backend
                    .follower
                    .as_ref()
                    .map(|f| (f.records_applied(), f.is_connected()))
                    .unwrap_or((0, false));
                ShardStatus {
                    id: i,
                    generation: shard.generation,
                    alive: !shard.dead,
                    doc_authority: shard.backend.doc_authority.clone(),
                    classes: shard.classes.iter().map(|c| c.name.clone()).collect(),
                    leader_records,
                    follower_records,
                    follower_connected,
                    lag_records: leader_records.saturating_sub(follower_records),
                }
            })
            .collect()
    }

    /// The most recent completed failover, if any.
    pub fn last_failover(&self) -> Option<FailoverEvent> {
        self.inner.last_failover.lock().clone()
    }

    /// The most recent completed migration, if any.
    pub fn last_migration(&self) -> Option<MigrationEvent> {
        self.inner.last_migration.lock().clone()
    }

    /// Moves `class` to `to_shard` as a planned, loss-free operation:
    /// catch-up replication while the source keeps serving, a bounded
    /// drain to quiescence, then an atomic handoff of version floors,
    /// reply cache, instance state, documents and routes. Blocks until
    /// the migration completes (or aborts with the source untouched).
    ///
    /// # Errors
    ///
    /// Fails if the class is unknown, already home, the drain deadline
    /// expires, or a concurrent failover of the source wins the race —
    /// in every case clients keep getting served (by whichever shard
    /// won).
    pub fn move_class(&self, class: &str, to_shard: usize) -> Result<MigrationEvent, RouterError> {
        migrate::run_migration(
            &self.inner,
            class,
            to_shard,
            &MoveOpts::default(),
            &MigrationCtl::new(),
        )
    }

    /// Starts `move_class` on its own thread and returns a cancellable
    /// handle. `opts.settle` inserts a dwell between catch-up and drain
    /// — the window chaos tests use to kill the source or cancel the
    /// move deterministically.
    pub fn begin_move(&self, class: &str, to_shard: usize, opts: MoveOpts) -> MigrationHandle {
        migrate::begin_move(&self.inner, class, to_shard, opts)
    }

    /// Drains shard `n`: migrates every class it serves to that
    /// class's ring placement with shard `n` excluded. After a
    /// successful drain the shard is alive but empty — ready for
    /// `rolling_restart` style maintenance.
    pub fn drain_shard(&self, n: usize) -> Result<Vec<MigrationEvent>, RouterError> {
        migrate::drain_shard(&self.inner, n)
    }

    /// Restarts every shard in sequence with zero failed calls: drain
    /// the shard, bounce its backend to a fresh generation, then move
    /// each displaced class whose ring home is the restarted shard
    /// back. Returns the migrations performed, in order.
    pub fn rolling_restart(&self) -> Result<Vec<MigrationEvent>, RouterError> {
        migrate::rolling_restart(&self.inner)
    }

    /// Current integer value of `field` on `class`'s live instance —
    /// the exactly-once accounting probe.
    pub fn field_value(&self, class: &str, field: &str) -> Option<i64> {
        let shard_id = self.inner.routes.read().get(class)?.shard;
        let shard = self.inner.shards[shard_id].lock();
        let m = &shard.backend.manager;
        let instance = m
            .soap_server(class)
            .and_then(|s| s.instance())
            .or_else(|| m.corba_server(class).and_then(|s| s.instance()))?;
        match instance.field(field).ok()? {
            Value::Int(n) => Some(i64::from(n)),
            Value::Long(n) => Some(n),
            _ => None,
        }
    }

    /// Published interface-document version for `class` on its current
    /// backend.
    pub fn doc_version(&self, class: &str) -> Option<u64> {
        let (shard_id, wire) = {
            let routes = self.inner.routes.read();
            let r = routes.get(class)?;
            (r.shard, r.wire)
        };
        let shard = self.inner.shards[shard_id].lock();
        let path = match wire {
            Wire::Soap => format!("/{class}.wsdl"),
            Wire::Corba => format!("/{class}.idl"),
        };
        shard.backend.manager.store().get(&path).map(|d| d.version)
    }

    /// Waits until every shard is alive with a connected, fully
    /// caught-up follower. Returns false on timeout.
    pub fn wait_converged(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let ok = self
                .status()
                .iter()
                .all(|s| s.alive && s.follower_connected && s.lag_records == 0)
                && !self
                    .inner
                    .failing_over
                    .iter()
                    .any(|f| f.load(Ordering::SeqCst));
            if ok {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Stops everything: health loop, fronts, every backend and
    /// follower.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.health.lock().take() {
            let _ = h.join();
        }
        self.front.shutdown();
        for proxy in self.inner.giop.values() {
            proxy.shutdown();
        }
        for shard in &self.inner.shards {
            let mut shard = shard.lock();
            shard.backend.manager.shutdown();
            shard.backend.replicator.shutdown();
            if let Some(f) = shard.backend.follower.take() {
                f.stop();
            }
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.shutdown();
    }
}

pub(crate) fn route_for(shard: usize, spec: &ClassSpec, backend: &Backend) -> Route {
    let (soap_authority, soap_url) = backend
        .soap_endpoints
        .get(&spec.name)
        .cloned()
        .unwrap_or_default();
    Route {
        shard,
        wire: spec.wire,
        doc_authority: backend.doc_authority.clone(),
        soap_authority,
        soap_url,
    }
}

/// Deploys `specs` on `manager` and wires the replication chain:
/// leader-side streamer plus a fresh follower replicating into
/// `s{shard}-replica-g{generation}`.
pub(crate) fn start_backend(
    cfg: &RouterConfig,
    shard: usize,
    generation: u64,
    specs: &[ClassSpec],
    manager: Arc<SdeManager>,
) -> Result<Backend, RouterError> {
    let mut soap_endpoints = HashMap::new();
    for spec in specs {
        let class = jpie::parse::parse_class(&spec.source)
            .map_err(|e| rerr(format!("{}: {e}", spec.name)))?;
        match spec.wire {
            Wire::Soap => {
                let server = manager.deploy_soap(class).map_err(rerr)?;
                server.create_instance().map_err(rerr)?;
                let url = server.endpoint_url();
                soap_endpoints.insert(spec.name.clone(), (authority_of(&url), url));
            }
            Wire::Corba => {
                let server = manager.deploy_corba(class).map_err(rerr)?;
                server.create_instance().map_err(rerr)?;
            }
        }
        // Publish the full document now: clients must never fetch a
        // pre-floor version from a promoted backend.
        manager.force_publish(&spec.name).map_err(rerr)?;
    }
    let wal = manager
        .wal()
        .ok_or_else(|| rerr("backend manager has no WAL"))?;
    let repl_addr = fresh_addr(
        cfg.transport,
        &cfg.tag,
        &format!("s{shard}g{generation}-repl"),
    );
    let replicator = WalReplicator::serve(wal, &repl_addr).map_err(rerr)?;
    let follower_dir = cfg.wal_root.join(format!("s{shard}-replica-g{generation}"));
    std::fs::create_dir_all(&follower_dir).map_err(rerr)?;
    let follower = WalFollower::start(replicator.addr(), &follower_dir.join("replica.wal"));
    Ok(Backend {
        doc_authority: manager.interface_server().base_url(),
        manager,
        soap_endpoints,
        replicator,
        follower: Some(follower),
        follower_dir,
    })
}

pub(crate) fn authority_of(url: &str) -> String {
    if let Some(scheme_end) = url.find("://") {
        let rest = &url[scheme_end + 3..];
        if let Some(slash) = rest.find('/') {
            return url[..scheme_end + 3 + slash].to_string();
        }
    }
    url.to_string()
}

impl RouterInner {
    /// Records a shard failure signal; opens the breaker and triggers
    /// failover once the threshold is crossed.
    pub(crate) fn note_failure(self: &Arc<RouterInner>, shard: usize) {
        if self.stop.load(Ordering::SeqCst) {
            return;
        }
        {
            let mut suspected = self.suspected_at[shard].lock();
            suspected.get_or_insert_with(Instant::now);
        }
        let breaker = self.breakers[shard].read().clone();
        breaker.on_failure();
        if breaker.state() == BreakerState::Open {
            self.trigger_failover(shard);
        }
    }

    fn note_success(&self, shard: usize) {
        *self.suspected_at[shard].lock() = None;
        self.breakers[shard].read().on_success();
    }

    /// The front admission gate for `class`, created on first use.
    pub(crate) fn class_gate(&self, class: &str) -> Arc<ClassGate> {
        if let Some(gate) = self.class_gates.read().get(class) {
            return gate.clone();
        }
        self.class_gates
            .write()
            .entry(class.to_string())
            .or_default()
            .clone()
    }

    /// Retry-After hint for a parked call: the configured base plus
    /// seeded jitter in `[0, base)`, so a herd of parked clients
    /// re-arrives spread over a full base-interval instead of as one
    /// synchronized wave.
    pub(crate) fn jittered_retry_after(&self) -> Duration {
        let base_ms = self.cfg.retry_after.as_millis().max(1) as u64;
        let extra = self.retry_jitter.lock().next_u64() % base_ms;
        Duration::from_millis(base_ms + extra)
    }

    /// Purges a retired generation's pooled connections wholesale,
    /// exactly once per (shard, generation): a failover racing a
    /// migration — or a duplicated failure signal — must not re-purge
    /// an authority a newer healthy generation has since re-bound and
    /// warmed.
    pub(crate) fn purge_retired_generation(
        &self,
        shard: usize,
        generation: u64,
        authorities: &[String],
    ) {
        if !self.purged_gens[shard].lock().insert(generation) {
            obs::registry()
                .counter("router_pool_purges_skipped_total")
                .inc();
            return;
        }
        for auth in authorities {
            self.pool.purge(auth);
        }
    }

    /// A migration's deferred purge of one authority, valid only while
    /// `generation` is still the shard's live generation. If a
    /// failover already retired (and purged) that generation, or the
    /// shard has moved on, this is a no-op — the connections at that
    /// authority now belong to someone else.
    pub(crate) fn purge_if_generation_live(&self, shard: usize, generation: u64, authority: &str) {
        if self.purged_gens[shard].lock().contains(&generation) {
            obs::registry()
                .counter("router_pool_purges_skipped_total")
                .inc();
            return;
        }
        let guard = self.shards[shard].lock();
        if guard.generation != generation {
            obs::registry()
                .counter("router_pool_purges_skipped_total")
                .inc();
            return;
        }
        self.pool.purge(authority);
    }

    /// Kicks off failover on a dedicated thread (callers hold no shard
    /// lock and must not block — this is called from the proxy hot
    /// path).
    fn trigger_failover(self: &Arc<RouterInner>, shard: usize) {
        if self.failing_over[shard]
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return;
        }
        let inner = self.clone();
        let _ = std::thread::Builder::new()
            .name(format!("router-failover-s{shard}"))
            .spawn(move || {
                let result = failover(&inner, shard);
                inner.failing_over[shard].store(false, Ordering::SeqCst);
                if let Err(e) = result {
                    obs::registry()
                        .counter("router_failover_errors_total")
                        .inc();
                    obs::trace::event("router", "failover-failed", format!("shard={shard} {e}"));
                }
            });
    }
}

/// The failover state machine: fence the dead leader, promote the
/// follower's replica under a fresh authority, redeploy + republish,
/// swap routes, re-arm replication.
fn failover(inner: &Arc<RouterInner>, shard_id: usize) -> Result<(), RouterError> {
    let started = Instant::now();
    let mut shard = inner.shards[shard_id].lock();
    let detect_ms = inner.suspected_at[shard_id]
        .lock()
        .map(|t| t.elapsed().as_secs_f64() * 1e3)
        .unwrap_or(0.0);
    shard.dead = true;

    // Fence: the old backend must never serve (or replicate) again.
    shard.backend.manager.shutdown();
    shard.backend.replicator.shutdown();
    let follower_dir = shard.backend.follower_dir.clone();
    if let Some(f) = shard.backend.follower.take() {
        f.stop(); // joins; the replica file is durable and quiescent
    }
    let old_doc_authority = shard.backend.doc_authority.clone();
    let old_soap: Vec<String> = shard
        .backend
        .soap_endpoints
        .values()
        .map(|(auth, _)| auth.clone())
        .collect();

    // Replay: adopt the replica WAL under a brand-new authority.
    let generation = shard.generation + 1;
    let replay_started = Instant::now();
    let ifc_addr = fresh_addr(
        inner.cfg.transport,
        &inner.cfg.tag,
        &format!("s{shard_id}g{generation}-ifc"),
    );
    let manager = Arc::new(SdeManager::with_authority(&ifc_addr, &follower_dir).map_err(rerr)?);
    let replay_ms = replay_started.elapsed().as_secs_f64() * 1e3;

    // Republish: rebuild every class from source (floors come from the
    // replicated WAL via restore_version_floor), force-publish, swap
    // the routing table and the GIOP targets.
    let republish_started = Instant::now();
    let backend = start_backend(&inner.cfg, shard_id, generation, &shard.classes, manager)?;
    {
        let mut routes = inner.routes.write();
        for spec in &shard.classes {
            routes.insert(spec.name.clone(), route_for(shard_id, spec, &backend));
            if spec.wire == Wire::Corba {
                if let (Some(proxy), Some(server)) = (
                    inner.giop.get(&spec.name),
                    backend.manager.corba_server(&spec.name),
                ) {
                    proxy.set_target(server.ior().address);
                }
            }
        }
    }
    *inner.breakers[shard_id].write() = Arc::new(CircuitBreaker::new(
        &backend.doc_authority,
        inner.cfg.failure_threshold,
        Duration::from_millis(100),
    ));
    let mut retired = old_soap;
    retired.push(old_doc_authority);
    inner.purge_retired_generation(shard_id, shard.generation, &retired);
    let republish_ms = republish_started.elapsed().as_secs_f64() * 1e3;

    shard.generation = generation;
    shard.backend = backend;
    shard.dead = false;
    *inner.suspected_at[shard_id].lock() = None;
    drop(shard);

    let event = FailoverEvent {
        shard: shard_id,
        generation,
        detect_ms,
        replay_ms,
        republish_ms,
        total_ms: detect_ms + replay_ms + republish_ms,
        classes: {
            let shard = inner.shards[shard_id].lock();
            shard.classes.iter().map(|c| c.name.clone()).collect()
        },
    };
    obs::registry().counter("router_failovers_total").inc();
    obs::registry()
        .histogram("router_failover_ns")
        .record((event.total_ms * 1e6) as u64);
    obs::trace::event(
        "router",
        "failover",
        format!(
            "shard={shard_id} gen={generation} detect={:.1}ms replay={:.1}ms republish={:.1}ms",
            event.detect_ms, event.replay_ms, event.republish_ms
        ),
    );
    let _ = started; // total wall time folded into the event fields
    *inner.last_failover.lock() = Some(event);
    Ok(())
}

/// Probes every shard's interface server each interval; failures feed
/// the shard breaker exactly like forward failures do.
/// Health-probes a shard's interface server with a real HTTP request
/// (any response — even a 404 — counts as alive). A connect-only probe
/// is too weak: a listener left in `LISTEN` state keeps completing
/// handshakes into the kernel backlog, so a dead backend passes the
/// probe and every spurious success resets the failure breaker that
/// data-path errors are trying to open.
fn probe_shard(authority: &str, timeout: Duration) -> bool {
    HttpClient::new()
        .with_read_timeout(timeout)
        .head(&format!("{authority}/"))
        .is_ok()
}

fn health_loop(inner: &Arc<RouterInner>) {
    while !inner.stop.load(Ordering::SeqCst) {
        for i in 0..inner.cfg.shards {
            if inner.stop.load(Ordering::SeqCst) {
                return;
            }
            if inner.failing_over[i].load(Ordering::SeqCst) {
                continue;
            }
            let authority = inner.shards[i].lock().backend.doc_authority.clone();
            obs::registry().counter("router_probes_total").inc();
            if probe_shard(&authority, inner.cfg.probe_timeout) {
                inner.note_success(i);
            } else {
                obs::registry().counter("router_probe_failures_total").inc();
                inner.note_failure(i);
            }
        }
        std::thread::sleep(inner.cfg.health_interval);
    }
}

struct FrontHandler {
    inner: Arc<RouterInner>,
}

impl Handler for FrontHandler {
    fn handle(&self, req: &Request) -> Response {
        let path = req.path();
        let path = path.split('?').next().unwrap_or(path).to_string();
        if let Some(class) = doc_class(&path) {
            return self.proxy_doc(&class, &path, req);
        }
        if req.method() == Method::Post {
            return self.proxy_call(&path, req);
        }
        Response::not_found("router: unknown path")
    }
}

/// `/Calc.wsdl` → `Calc` (also `.idl` / `.ior`).
fn doc_class(path: &str) -> Option<String> {
    let name = path.strip_prefix('/')?;
    for ext in [".wsdl", ".idl", ".ior"] {
        if let Some(class) = name.strip_suffix(ext) {
            if !class.is_empty() && !class.contains('/') {
                return Some(class.to_string());
            }
        }
    }
    None
}

impl FrontHandler {
    /// Forwards an interface-document fetch to the owning shard,
    /// rewriting endpoint addresses so clients only ever see router
    /// addresses.
    fn proxy_doc(&self, class: &str, path: &str, req: &Request) -> Response {
        let Some(route) = self.inner.routes.read().get(class).cloned() else {
            return Response::not_found("router: unknown class");
        };
        let _span = obs::trace::span("router_doc_forward_ns");
        let mut fwd = if req.method() == Method::Head {
            Request::head(path)
        } else {
            Request::get(path)
        };
        if let Some(tag) = req.headers().get("If-None-Match") {
            fwd.headers_mut().set("If-None-Match", tag);
        }
        let resp = match self.inner.pool.send(&route.doc_authority, &fwd) {
            Ok(resp) => resp,
            Err(e) => return self.forward_failed(route.shard, "doc", &e),
        };
        self.inner.note_success(route.shard);
        obs::registry()
            .counter_with("router_forward_total", &[("kind", "doc")])
            .inc();
        let mut body = resp.body().to_vec();
        if resp.status() == 200 {
            if path.ends_with(".wsdl") && !route.soap_url.is_empty() {
                // The backend's WSDL advertises its own endpoint; clients
                // must call through the router instead.
                let front = self.inner.front_base.read().clone();
                body = String::from_utf8_lossy(&body)
                    .replace(&route.soap_url, &format!("{front}/{class}"))
                    .into_bytes();
            } else if path.ends_with(".ior") {
                // Same for the IOR: swap the backend ORB address for the
                // class's stable GIOP proxy front.
                if let (Some(proxy), Ok(text)) =
                    (self.inner.giop.get(class), std::str::from_utf8(&body))
                {
                    if let Ok(mut ior) = Ior::parse(text) {
                        ior.address = proxy.addr().to_string();
                        body = ior.to_ior_string().into_bytes();
                    }
                }
            }
        }
        rebuild_response(&resp, body)
    }

    /// Forwards a SOAP call to the owning shard's endpoint. Headers
    /// (call IDs ride in the SOAP body, trace context and reply-cache
    /// advertisement in headers) pass through both ways, so the
    /// exactly-once machinery is completely unaware of the proxy.
    fn proxy_call(&self, path: &str, req: &Request) -> Response {
        let class = path.trim_start_matches('/');
        let Some(route) = self.inner.routes.read().get(class).cloned() else {
            return Response::not_found("router: unknown class");
        };
        if route.wire != Wire::Soap || route.soap_authority.is_empty() {
            return Response::bad_request("router: not a SOAP class");
        }
        // Drain admission: count ourselves in-flight *before* reading
        // the flag, so a drainer that observes in_flight == 0 after
        // setting `draining` knows no further call can reach the
        // backend (SeqCst totally orders the two).
        let gate = self.inner.class_gate(class);
        gate.in_flight.fetch_add(1, Ordering::SeqCst);
        let resp = if gate.draining.load(Ordering::SeqCst) {
            gate.parked.fetch_add(1, Ordering::SeqCst);
            obs::registry().counter("router_drain_parked_total").inc();
            Response::unavailable(
                "router: class migrating, retry shortly",
                self.inner.jittered_retry_after(),
            )
        } else {
            self.forward_call(&route, path, req)
        };
        gate.in_flight.fetch_sub(1, Ordering::SeqCst);
        resp
    }

    fn forward_call(&self, route: &Route, path: &str, req: &Request) -> Response {
        let _span = obs::trace::span("router_call_forward_ns");
        let content_type = req.headers().get("Content-Type").unwrap_or("text/xml");
        let mut fwd = Request::post(path, req.body().to_vec(), content_type);
        copy_headers(req.headers(), fwd.headers_mut());
        let resp = match self.inner.pool.send(&route.soap_authority, &fwd) {
            Ok(resp) => resp,
            Err(e) => return self.forward_failed(route.shard, "call", &e),
        };
        self.inner.note_success(route.shard);
        obs::registry()
            .counter_with("router_forward_total", &[("kind", "call")])
            .inc();
        rebuild_response(&resp, resp.body().to_vec())
    }

    /// A forward that failed at the transport level: the backend either
    /// never saw the call or executed it on in-memory state that dies
    /// with the shard — so answering 503 (retry shortly) preserves
    /// exactly-once over surviving state, and the failure doubles as a
    /// health signal.
    fn forward_failed(&self, shard: usize, kind: &str, e: &httpd::HttpError) -> Response {
        obs::registry()
            .counter_with("router_forward_errors_total", &[("kind", kind)])
            .inc();
        obs::trace::event("router", "forward-failed", format!("shard={shard} {e}"));
        self.inner.note_failure(shard);
        Response::unavailable(
            "router: shard failing over",
            self.inner.jittered_retry_after(),
        )
    }
}

/// Copies headers across a proxy hop, skipping the ones that describe
/// the connection rather than the message.
fn copy_headers(src: &httpd::Headers, dst: &mut httpd::Headers) {
    for (name, value) in src.iter() {
        let hop = name.eq_ignore_ascii_case("host")
            || name.eq_ignore_ascii_case("content-length")
            || name.eq_ignore_ascii_case("content-type")
            || name.eq_ignore_ascii_case("connection");
        if !hop {
            dst.set(name, value);
        }
    }
}

fn rebuild_response(resp: &Response, body: Vec<u8>) -> Response {
    let content_type = resp
        .headers()
        .get("Content-Type")
        .unwrap_or("application/octet-stream")
        .to_string();
    let mut out = Response::new(Status(resp.status()), body, &content_type);
    copy_headers(resp.headers(), out.headers_mut());
    out
}
