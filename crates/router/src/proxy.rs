//! Byte-level GIOP proxy: the stable CORBA front for one class.
//!
//! SOAP calls proxy at the HTTP layer, but GIOP is a binary
//! request-reply stream, so the router fronts each CORBA class with an
//! L4 shuttle: the published IOR carries the proxy's address, clients
//! connect here, and every accepted connection is spliced to the
//! class's *current* backend ORB. At failover only the target swaps —
//! the IOR (and therefore every client stub) keeps pointing at the same
//! proxy address, and the dead backend's EOF propagates to clients,
//! whose resilience layer reconnects straight onto the promoted shard.
//!
//! Streams are shuttled by paired threads rather than the epoll
//! reactor: `mem://` streams carry no file descriptor (the reactor
//! serves only `tcp://`), and the proxy must behave identically on both
//! transports for the chaos suite to exercise it deterministically.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use httpd::transport::{connect_with, Listener, Stream};
use obs::sync::{Mutex, RwLock};

type ErrorHook = Arc<dyn Fn() + Send + Sync>;

/// One class's GIOP front.
pub struct GiopProxy {
    listener: Arc<Listener>,
    addr: String,
    target: RwLock<String>,
    stop: Arc<AtomicBool>,
    /// Client-side handles of live splices, so a retarget can sever
    /// connections still pinned to the old backend.
    splices: Arc<Mutex<HashMap<u64, Stream>>>,
    next_splice: AtomicU64,
    /// Invoked when a backend connect fails — the router uses it as a
    /// health signal feeding the shard's circuit breaker.
    on_error: RwLock<Option<ErrorHook>>,
}

impl GiopProxy {
    /// Binds `addr` and starts splicing connections to `target`.
    ///
    /// # Errors
    ///
    /// Fails if `addr` cannot be bound.
    pub fn start(addr: &str, target: String) -> Result<Arc<GiopProxy>, httpd::HttpError> {
        let listener = Arc::new(Listener::bind(addr)?);
        let proxy = Arc::new(GiopProxy {
            addr: listener.local_addr().to_string(),
            listener,
            target: RwLock::new(target),
            stop: Arc::new(AtomicBool::new(false)),
            splices: Arc::new(Mutex::new(HashMap::new())),
            next_splice: AtomicU64::new(0),
            on_error: RwLock::new(None),
        });
        let accept = proxy.clone();
        std::thread::Builder::new()
            .name("giop-proxy-accept".into())
            .spawn(move || accept.accept_loop())
            .expect("spawn giop proxy accept thread");
        Ok(proxy)
    }

    /// The stable address clients connect to (what the rewritten IOR
    /// carries).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Points new connections at a different backend ORB (failover) and
    /// severs every in-flight splice: connections still pinned to the
    /// old backend must not linger — a half-dead backend could keep
    /// answering on them, and clients only re-handshake (and land on the
    /// promoted shard) once their stream drops.
    pub fn set_target(&self, target: String) {
        *self.target.write() = target;
        for (_, s) in self.splices.lock().drain() {
            s.shutdown();
        }
    }

    /// Installs the backend-connect-failure hook.
    pub fn set_on_error(&self, hook: ErrorHook) {
        *self.on_error.write() = Some(hook);
    }

    /// Stops accepting and severs in-flight splices.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.listener.close();
        for (_, s) in self.splices.lock().drain() {
            s.shutdown();
        }
    }

    fn accept_loop(self: Arc<GiopProxy>) {
        while !self.stop.load(Ordering::SeqCst) {
            let Ok(client) = self.listener.accept() else {
                break;
            };
            if self.stop.load(Ordering::SeqCst) {
                client.shutdown();
                break;
            }
            let target = self.target.read().clone();
            match connect_with(&target, None) {
                Ok(backend) => {
                    obs::registry().counter("router_giop_splices_total").inc();
                    let id = self.next_splice.fetch_add(1, Ordering::Relaxed);
                    if let Ok(handle) = client.try_clone() {
                        self.splices.lock().insert(id, handle);
                    }
                    let splices = self.splices.clone();
                    splice(client, backend, move || {
                        splices.lock().remove(&id);
                    });
                }
                Err(_) => {
                    obs::registry()
                        .counter("router_giop_connect_errors_total")
                        .inc();
                    client.shutdown();
                    if let Some(hook) = self.on_error.read().clone() {
                        hook();
                    }
                }
            }
        }
    }
}

/// Splices two streams with a pair of copy threads. Each direction runs
/// until EOF or error, then shuts both streams down so the twin thread
/// unblocks too; `done` untracks the splice once the downstream copy
/// (backend → client) finishes.
fn splice(client: Stream, backend: Stream, done: impl FnOnce() + Send + 'static) {
    let (Ok(client_r), Ok(backend_r)) = (client.try_clone(), backend.try_clone()) else {
        client.shutdown();
        backend.shutdown();
        done();
        return;
    };
    spawn_copy("giop-proxy-up", client_r, backend, || {});
    spawn_copy("giop-proxy-down", backend_r, client, done);
}

fn spawn_copy(name: &str, mut from: Stream, mut to: Stream, done: impl FnOnce() + Send + 'static) {
    let _ = std::thread::Builder::new()
        .name(name.into())
        .spawn(move || {
            let mut buf = [0u8; 16 * 1024];
            loop {
                match from.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        if to.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                }
            }
            from.shutdown();
            to.shutdown();
            done();
        });
}
