//! Sharded authority router: the front tier that turns one-process SDE
//! into a fleet.
//!
//! The paper's §5.7 recency machinery — republish the interface
//! document, and every client stub reconverges on its next call — is
//! exactly the hook horizontal scale-out needs. This crate
//! consistent-hashes classes across N SDE backends (shards), fronts
//! both wires behind stable addresses (an HTTP reverse proxy for
//! SOAP + interface documents, an L4 splice per CORBA class for GIOP),
//! health-checks every shard with the PR 3 circuit-breaker machinery,
//! and — when a shard dies — promotes its WAL-replicating follower:
//!
//! 1. **detect** — probe/forward failures trip the shard's breaker;
//! 2. **replay** — [`sde::SdeManager::with_authority`] adopts the
//!    follower's replica log and floors every class at
//!    `version >= pre-crash`;
//! 3. **republish** — classes redeploy on the promoted backend and
//!    force-publish, so document versions advance past everything any
//!    client ever saw;
//! 4. **reconverge** — in-flight refetches are answered at the same
//!    router addresses with bodies rewritten to the new backend, and
//!    exactly-once accounting holds because call IDs and the reply
//!    cache are per-logical-call, not per-connection.
//!
//! Distribution policy lives entirely in this tier — application
//! classes are unchanged — which is the RAFDA separation the ROADMAP
//! points at.
//!
//! The same machinery also runs as a *planned* operation
//! ([`Router::move_class`], [`Router::drain_shard`],
//! [`Router::rolling_restart`]): catch-up replication while the source
//! serves, a bounded drain to quiescence, and an atomic handoff — live
//! rebalancing and rolling restarts with zero failed calls.

mod migrate;
mod proxy;
mod ring;
#[allow(clippy::module_inception)]
mod router;

pub use migrate::{MigrationCtl, MigrationEvent, MigrationHandle, MoveOpts};
pub use proxy::GiopProxy;
pub use ring::HashRing;
pub use router::{ClassSpec, FailoverEvent, Router, RouterConfig, RouterError, ShardStatus, Wire};
