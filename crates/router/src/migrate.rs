//! Planned operations: live class migration, shard drain, and rolling
//! restarts — the failover machinery of the sharded router re-run as a
//! *scheduled* event with zero failed calls.
//!
//! A migration moves one class between shards in three phases:
//!
//! 1. **Catch-up** — a private [`WalFollower`] streams the source
//!    shard's WAL to a replica over the normal replication protocol
//!    while the source keeps serving. No client notices anything.
//! 2. **Drain** — the front admission gate for the class flips to
//!    draining (new SOAP calls get 503 + a jittered Retry-After, which
//!    the CDE client stack already honors), the source backend's own
//!    gates follow (the ORB answers `TRANSIENT` with the same hint for
//!    the CORBA wire), and the migration waits for every in-flight
//!    call to complete — Matevska-Meyer quiescence, bounded by
//!    `drain_deadline`. With the class quiescent the WAL is frozen, so
//!    the replica converges *exactly*.
//! 3. **Handoff** — version floors are read from the streamed replica
//!    (not from source memory) and appended to the target's WAL, the
//!    class — dynamic class, live instance, exactly-once reply cache —
//!    is exported and imported, the target force-publishes (§5.7
//!    recency: the first document clients fetch is at `version >=
//!    source`), and the routing table plus the stable GIOP proxy swap
//!    in one step under the source shard's lock.
//!
//! Everything before the handoff commit is non-destructive: a cancel,
//! a timeout, or a real source death at any earlier point aborts the
//! migration with the source untouched — and a death simply degrades
//! into the unplanned failover path, which serves the class from the
//! promoted follower exactly as if no migration had been attempted.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cde::CircuitBreaker;
use sde::{PublicationStrategy, SdeConfig, SdeManager, VersionWal, WalFollower};

use crate::router::{
    authority_of, fresh_addr, rerr, route_for, start_backend, ClassSpec, RouterError, RouterInner,
    Wire,
};

/// Ceiling on the initial catch-up phase; generous because it runs
/// while the source still serves every call.
const CATCHUP_TIMEOUT: Duration = Duration::from_secs(10);

/// One completed migration, with its phase latencies.
#[derive(Debug, Clone)]
pub struct MigrationEvent {
    pub class: String,
    pub from_shard: usize,
    pub to_shard: usize,
    /// WAL streaming while the source still served.
    pub catchup_ms: f64,
    /// Drain start → quiescence + exact WAL convergence. Together with
    /// `handoff_ms` this is the pause clients can observe.
    pub drain_ms: f64,
    /// Export, floor transfer, import, republish, route + proxy swap.
    pub handoff_ms: f64,
    pub total_ms: f64,
    /// Calls answered 503 at the front gate while the class drained.
    pub parked_calls: u64,
    /// Records in the streamed catch-up replica at handoff.
    pub wal_records: u64,
}

/// Options for [`crate::Router::begin_move`].
#[derive(Debug, Clone, Default)]
pub struct MoveOpts {
    /// Dwell between catch-up and drain, checked for cancellation (and
    /// source failover) every couple of milliseconds — the
    /// deterministic window chaos tests use to cancel the move or kill
    /// the source mid-migration.
    pub settle: Duration,
}

/// Cancellation token for an in-progress migration.
#[derive(Debug, Default)]
pub struct MigrationCtl {
    cancelled: AtomicBool,
}

impl MigrationCtl {
    pub(crate) fn new() -> MigrationCtl {
        MigrationCtl::default()
    }

    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }
}

/// Handle on a migration running on its own thread.
pub struct MigrationHandle {
    ctl: Arc<MigrationCtl>,
    thread: Option<JoinHandle<Result<MigrationEvent, RouterError>>>,
}

impl MigrationHandle {
    /// Requests cancellation; honored at every pre-commit checkpoint.
    /// Past the handoff commit the migration completes regardless —
    /// cancelling can never strand a half-moved class.
    pub fn cancel(&self) {
        self.ctl.cancel();
    }

    /// Waits for the migration to finish.
    ///
    /// # Errors
    ///
    /// Returns the migration's own error: cancelled, drain timeout, or
    /// superseded by a real failover.
    pub fn join(mut self) -> Result<MigrationEvent, RouterError> {
        self.thread
            .take()
            .expect("join consumes the handle")
            .join()
            .map_err(|_| rerr("migration thread panicked"))?
    }
}

pub(crate) fn begin_move(
    inner: &Arc<RouterInner>,
    class: &str,
    to_shard: usize,
    opts: MoveOpts,
) -> MigrationHandle {
    let ctl = Arc::new(MigrationCtl::new());
    let thread = {
        let inner = inner.clone();
        let class = class.to_string();
        let ctl = ctl.clone();
        std::thread::Builder::new()
            .name(format!("router-migrate-{class}"))
            .spawn(move || run_migration(&inner, &class, to_shard, &opts, &ctl))
            .expect("spawn migration thread")
    };
    MigrationHandle {
        ctl,
        thread: Some(thread),
    }
}

/// The migration state machine. Serialized by `migration_lock`; every
/// abort path leaves routes, gates, and the source backend exactly as
/// they were.
pub(crate) fn run_migration(
    inner: &Arc<RouterInner>,
    class: &str,
    to_shard: usize,
    opts: &MoveOpts,
    ctl: &MigrationCtl,
) -> Result<MigrationEvent, RouterError> {
    let _serial = inner.migration_lock.lock();
    let started = Instant::now();
    if to_shard >= inner.cfg.shards {
        return Err(rerr(format!("no shard {to_shard}")));
    }
    let from_shard = inner
        .routes
        .read()
        .get(class)
        .map(|r| r.shard)
        .ok_or_else(|| rerr(format!("unknown class {class}")))?;
    if from_shard == to_shard {
        return Err(rerr(format!("{class} already on shard {to_shard}")));
    }
    if inner.failing_over[from_shard].load(Ordering::SeqCst)
        || inner.failing_over[to_shard].load(Ordering::SeqCst)
    {
        return Err(rerr("shard failing over; retry the move later"));
    }

    // Snapshot the source. `src_gen` is the fencepost for the whole
    // operation: any later generation bump means a real failover ran,
    // and the failover's view wins over ours.
    let (spec, src_gen, repl_addr, src_wal, src_manager) = {
        let shard = inner.shards[from_shard].lock();
        if shard.dead {
            return Err(rerr(format!("shard {from_shard} is dead")));
        }
        let spec = shard
            .classes
            .iter()
            .find(|c| c.name == class)
            .cloned()
            .ok_or_else(|| rerr(format!("{class} not homed on shard {from_shard}")))?;
        let wal = shard
            .backend
            .manager
            .wal()
            .ok_or_else(|| rerr("source backend has no WAL"))?;
        (
            spec,
            shard.generation,
            shard.backend.replicator.addr().to_string(),
            wal,
            shard.backend.manager.clone(),
        )
    };
    let seq = inner.migration_seq.fetch_add(1, Ordering::SeqCst);
    obs::trace::event(
        "router",
        "migration-start",
        format!("class={class} from={from_shard} to={to_shard} gen={src_gen}"),
    );

    // ---- Phase 1: catch-up -------------------------------------------
    let catchup_started = Instant::now();
    let mig_dir = inner.cfg.wal_root.join(format!("mig-{seq}-{class}"));
    std::fs::create_dir_all(&mig_dir).map_err(rerr)?;
    let replica_path = mig_dir.join("replica.wal");
    let catchup = WalFollower::start(&repl_addr, &replica_path);
    if !catchup.wait_caught_up(src_wal.durable_len(), CATCHUP_TIMEOUT) {
        catchup.stop();
        let _ = std::fs::remove_dir_all(&mig_dir);
        return Err(rerr(format!("catch-up for {class} timed out")));
    }
    let catchup_ms = catchup_started.elapsed().as_secs_f64() * 1e3;

    // Settle dwell: cancellation (and source-death) checkpoint.
    let settle_deadline = Instant::now() + opts.settle;
    loop {
        if ctl.is_cancelled() {
            catchup.stop();
            let _ = std::fs::remove_dir_all(&mig_dir);
            obs::trace::event("router", "migration-cancelled", format!("class={class}"));
            return Err(rerr(format!("move of {class} cancelled; source untouched")));
        }
        if source_superseded(inner, from_shard, src_gen) {
            catchup.stop();
            let _ = std::fs::remove_dir_all(&mig_dir);
            return Err(rerr(format!(
                "source shard {from_shard} failed over during catch-up; failover won"
            )));
        }
        if Instant::now() >= settle_deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    // ---- Phase 2: drain ----------------------------------------------
    let drain_started = Instant::now();
    let drain_deadline = drain_started + inner.cfg.drain_deadline;
    let gate = inner.class_gate(class);
    let parked_before = gate.parked.load(Ordering::SeqCst);
    // The backend's own gates close too: a front call that snapshotted
    // its route before our flag flipped — or a CORBA call, which rides
    // the GIOP proxy and never sees the front gate — gets a retryable
    // refusal from the source itself.
    let soap_gate = src_manager.soap_server(class).map(|s| s.gate().clone());
    let orb_gate = src_manager.corba_server(class).map(|s| s.gate().clone());
    gate.draining.store(true, Ordering::SeqCst);
    if let Some(g) = &soap_gate {
        g.begin_drain(inner.cfg.retry_after);
    }
    if let Some(g) = &orb_gate {
        g.begin_drain(inner.cfg.retry_after.as_millis().max(1) as u64);
    }
    let reopen = || {
        if let Some(g) = &soap_gate {
            g.end_drain();
        }
        if let Some(g) = &orb_gate {
            g.end_drain();
        }
        gate.draining.store(false, Ordering::SeqCst);
    };

    // Quiescence: no call in flight at the front for this class, none
    // inside the source backend's servers.
    loop {
        let quiescent = gate.in_flight.load(Ordering::SeqCst) == 0
            && soap_gate.as_ref().is_none_or(|g| g.in_flight() == 0)
            && orb_gate.as_ref().is_none_or(|g| g.in_flight() == 0);
        if quiescent {
            break;
        }
        if ctl.is_cancelled() || Instant::now() >= drain_deadline {
            reopen();
            catchup.stop();
            let _ = std::fs::remove_dir_all(&mig_dir);
            return Err(if ctl.is_cancelled() {
                rerr(format!("move of {class} cancelled; source untouched"))
            } else {
                rerr(format!(
                    "drain of {class} missed the {}ms deadline; source untouched",
                    inner.cfg.drain_deadline.as_millis()
                ))
            });
        }
        std::thread::sleep(Duration::from_micros(500));
    }
    // The class is quiescent, so its WAL is frozen: demand *exact*
    // convergence before moving anything.
    if !catchup.wait_caught_up(
        src_wal.durable_len(),
        drain_deadline.saturating_duration_since(Instant::now()),
    ) {
        reopen();
        catchup.stop();
        let _ = std::fs::remove_dir_all(&mig_dir);
        return Err(rerr(format!(
            "replica did not converge while {class} drained; source untouched"
        )));
    }
    let drain_ms = drain_started.elapsed().as_secs_f64() * 1e3;

    // ---- Phase 3: handoff --------------------------------------------
    let handoff_started = Instant::now();
    // Floors travel via the replica the walrepl protocol built — not
    // via shared memory — so what moves is exactly what was streamed.
    catchup.stop();
    let replica = VersionWal::open(&replica_path).map_err(rerr)?;
    let wal_records = replica.record_count();
    let floors: Vec<(String, u64)> = [format!("/{class}.wsdl"), format!("/{class}.idl")]
        .into_iter()
        .filter_map(|p| replica.floor(&p).map(|v| (p, v)))
        .collect();
    drop(replica);

    if ctl.is_cancelled() {
        reopen();
        let _ = std::fs::remove_dir_all(&mig_dir);
        return Err(rerr(format!("move of {class} cancelled; source untouched")));
    }

    // Export → import → commit, all under the source shard's lock: a
    // failover either completed before we got the lock (generation
    // moved — it wins, we abort untouched) or queues behind us and
    // finds the class already gone from `classes` (nothing to
    // redeploy).
    let from_guard = inner.shards[from_shard].lock();
    if from_guard.generation != src_gen || from_guard.dead {
        drop(from_guard);
        reopen();
        let _ = std::fs::remove_dir_all(&mig_dir);
        return Err(rerr(format!(
            "source shard {from_shard} failed over during drain; failover won"
        )));
    }
    let export = match from_guard.backend.manager.export_class(class) {
        Ok(e) => e,
        Err(e) => {
            drop(from_guard);
            reopen();
            let _ = std::fs::remove_dir_all(&mig_dir);
            return Err(rerr(format!("export of {class} failed: {e}")));
        }
    };
    let imported = import_at_target(inner, to_shard, &spec, &floors, export);
    let (new_route, target_orb) = match imported {
        Ok(v) => v,
        Err(e) => {
            drop(from_guard);
            reopen();
            let _ = std::fs::remove_dir_all(&mig_dir);
            return Err(e);
        }
    };

    // Commit: route and GIOP proxy swap. From here the migration
    // always completes.
    inner.routes.write().insert(class.to_string(), new_route);
    if let (Some(proxy), Some(orb)) = (inner.giop.get(class), target_orb) {
        proxy.set_target(orb);
        let weak = Arc::downgrade(inner);
        proxy.set_on_error(Arc::new(move || {
            if let Some(inner) = weak.upgrade() {
                inner.note_failure(to_shard);
            }
        }));
    }

    // Retire the source copy.
    let mut from_guard = from_guard;
    from_guard.classes.retain(|c| c.name != class);
    let old_soap = from_guard.backend.soap_endpoints.remove(class);
    let src_manager = from_guard.backend.manager.clone();
    drop(from_guard);
    let _ = src_manager.undeploy(class);
    if let Some((auth, _)) = old_soap {
        inner.purge_if_generation_live(from_shard, src_gen, &auth);
    }
    reopen();
    let _ = std::fs::remove_dir_all(&mig_dir);
    let handoff_ms = handoff_started.elapsed().as_secs_f64() * 1e3;

    let event = MigrationEvent {
        class: class.to_string(),
        from_shard,
        to_shard,
        catchup_ms,
        drain_ms,
        handoff_ms,
        total_ms: started.elapsed().as_secs_f64() * 1e3,
        parked_calls: gate.parked.load(Ordering::SeqCst) - parked_before,
        wal_records,
    };
    obs::registry().counter("router_migrations_total").inc();
    obs::registry()
        .histogram("router_migration_ns")
        .record((event.total_ms * 1e6) as u64);
    obs::trace::event(
        "router",
        "migration",
        format!(
            "class={class} {from_shard}->{to_shard} catchup={:.1}ms drain={:.1}ms handoff={:.1}ms parked={}",
            event.catchup_ms, event.drain_ms, event.handoff_ms, event.parked_calls
        ),
    );
    *inner.last_migration.lock() = Some(event.clone());
    Ok(event)
}

/// True once shard `n` is no longer serving generation `gen` (a real
/// failover superseded the planned operation).
fn source_superseded(inner: &Arc<RouterInner>, n: usize, gen: u64) -> bool {
    if inner.failing_over[n].load(Ordering::SeqCst) {
        return true;
    }
    let shard = inner.shards[n].lock();
    shard.generation != gen || shard.dead
}

/// Installs an exported class on the target shard: floors into the
/// WAL first (deployment applies them via the restart path), then
/// import, republish, endpoint bookkeeping. Rolls the target back on
/// any partial failure.
fn import_at_target(
    inner: &Arc<RouterInner>,
    to_shard: usize,
    spec: &ClassSpec,
    floors: &[(String, u64)],
    export: sde::ClassExport,
) -> Result<(crate::router::Route, Option<String>), RouterError> {
    let mut to_guard = inner.shards[to_shard].lock();
    if to_guard.dead {
        return Err(rerr(format!("target shard {to_shard} is dead")));
    }
    let manager = to_guard.backend.manager.clone();
    let target_wal = manager
        .wal()
        .ok_or_else(|| rerr("target backend has no WAL"))?;
    for (path, version) in floors {
        target_wal.append(path, *version).map_err(rerr)?;
    }
    manager
        .import_class(export)
        .map_err(|e| rerr(format!("import of {} failed: {e}", spec.name)))?;
    if let Err(e) = manager.force_publish(&spec.name) {
        let _ = manager.undeploy(&spec.name);
        return Err(rerr(format!("republish of {} failed: {e}", spec.name)));
    }
    let mut target_orb = None;
    match spec.wire {
        Wire::Soap => {
            let url = manager
                .soap_server(&spec.name)
                .map(|s| s.endpoint_url())
                .ok_or_else(|| rerr("imported SOAP class has no endpoint"))?;
            to_guard
                .backend
                .soap_endpoints
                .insert(spec.name.clone(), (authority_of(&url), url));
        }
        Wire::Corba => {
            target_orb = Some(
                manager
                    .corba_server(&spec.name)
                    .map(|s| s.ior().address)
                    .ok_or_else(|| rerr("imported CORBA class has no ORB"))?,
            );
        }
    }
    to_guard.classes.push(spec.clone());
    Ok((route_for(to_shard, spec, &to_guard.backend), target_orb))
}

/// Migrates every class off shard `n` to its ring placement with `n`
/// excluded. The shard stays alive and empty afterwards.
pub(crate) fn drain_shard(
    inner: &Arc<RouterInner>,
    n: usize,
) -> Result<Vec<MigrationEvent>, RouterError> {
    if n >= inner.cfg.shards {
        return Err(rerr(format!("no shard {n}")));
    }
    let classes: Vec<String> = {
        let shard = inner.shards[n].lock();
        shard.classes.iter().map(|c| c.name.clone()).collect()
    };
    let mut events = Vec::with_capacity(classes.len());
    for class in classes {
        let to = inner
            .ring
            .shard_for_excluding(&class, &[n])
            .ok_or_else(|| rerr("no other shard to drain to"))?;
        events.push(run_migration(
            inner,
            &class,
            to,
            &MoveOpts::default(),
            &MigrationCtl::new(),
        )?);
    }
    obs::trace::event("router", "shard-drained", format!("shard={n}"));
    Ok(events)
}

/// Restarts every shard in turn: drain, bounce the backend to a fresh
/// generation, move the displaced ring-homed classes back. Zero failed
/// calls end to end — each class is always served by *some* live
/// backend, pausing only for its own bounded drains.
pub(crate) fn rolling_restart(
    inner: &Arc<RouterInner>,
) -> Result<Vec<MigrationEvent>, RouterError> {
    if inner.cfg.shards < 2 {
        return Err(rerr("rolling restart needs at least two shards"));
    }
    let mut events = Vec::new();
    for n in 0..inner.cfg.shards {
        events.extend(drain_shard(inner, n)?);
        restart_shard(inner, n)?;
        let displaced: Vec<(String, usize)> = {
            let routes = inner.routes.read();
            routes
                .iter()
                .filter(|(name, r)| r.shard != n && inner.ring.shard_for(name) == n)
                .map(|(name, r)| (name.clone(), r.shard))
                .collect()
        };
        for (class, _) in displaced {
            events.push(run_migration(
                inner,
                &class,
                n,
                &MoveOpts::default(),
                &MigrationCtl::new(),
            )?);
        }
    }
    obs::registry()
        .counter("router_rolling_restarts_total")
        .inc();
    Ok(events)
}

/// Bounces a drained shard's backend to generation + 1 — the planned
/// twin of failover's promotion, with nothing to replay because the
/// shard serves no classes. The `failing_over` flag is held across the
/// bounce so the health loop doesn't mistake the intentional outage
/// for a death.
fn restart_shard(inner: &Arc<RouterInner>, n: usize) -> Result<(), RouterError> {
    if inner.failing_over[n]
        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        return Err(rerr(format!("shard {n} is failing over")));
    }
    let result = do_restart(inner, n);
    inner.failing_over[n].store(false, Ordering::SeqCst);
    result
}

fn do_restart(inner: &Arc<RouterInner>, n: usize) -> Result<(), RouterError> {
    let mut shard = inner.shards[n].lock();
    if !shard.classes.is_empty() {
        return Err(rerr(format!("shard {n} must be drained before restart")));
    }
    let old_gen = shard.generation;
    let old_doc_authority = shard.backend.doc_authority.clone();
    shard.backend.manager.shutdown();
    shard.backend.replicator.shutdown();
    if let Some(f) = shard.backend.follower.take() {
        f.stop();
    }
    let generation = old_gen + 1;
    let ifc_addr = fresh_addr(
        inner.cfg.transport,
        &inner.cfg.tag,
        &format!("s{n}g{generation}-ifc"),
    );
    let manager = Arc::new(
        SdeManager::with_interface_addr(
            SdeConfig {
                transport: inner.cfg.transport,
                strategy: PublicationStrategy::ChangeDriven,
                wal_dir: Some(inner.cfg.wal_root.join(format!("s{n}-leader"))),
            },
            &ifc_addr,
        )
        .map_err(rerr)?,
    );
    let backend = start_backend(&inner.cfg, n, generation, &[], manager)?;
    *inner.breakers[n].write() = Arc::new(CircuitBreaker::new(
        &backend.doc_authority,
        inner.cfg.failure_threshold,
        Duration::from_millis(100),
    ));
    shard.generation = generation;
    shard.backend = backend;
    shard.dead = false;
    drop(shard);
    *inner.suspected_at[n].lock() = None;
    inner.purge_retired_generation(n, old_gen, &[old_doc_authority]);
    obs::registry().counter("router_restarts_total").inc();
    obs::trace::event(
        "router",
        "shard-restarted",
        format!("shard={n} gen={generation}"),
    );
    Ok(())
}
