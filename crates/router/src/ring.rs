//! Consistent-hash ring mapping class names onto shards.
//!
//! Each shard owns `vnodes` points on a 64-bit ring; a class lands on
//! the first point clockwise of its own hash. Virtual nodes smooth the
//! distribution, and the layout is a pure function of (shard count,
//! vnode count) — every router replica computes identical assignments
//! with no coordination.

/// FNV-1a, 64-bit. Deterministic across platforms and dependency-free.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64 finalizer. Raw FNV-1a of near-identical short strings
/// (`Class0`, `Class1`, …) clusters in the high bits, which a sorted
/// ring keys on — without this avalanche step, sequential class names
/// can all land on a couple of shards.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

fn ring_hash(bytes: &[u8]) -> u64 {
    mix(fnv1a(bytes))
}

/// The ring: sorted (point, shard) pairs.
#[derive(Debug, Clone)]
pub struct HashRing {
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// Builds a ring of `shards` shards with `vnodes` points each.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `vnodes` is zero.
    pub fn new(shards: usize, vnodes: usize) -> HashRing {
        assert!(vnodes > 0, "a ring needs at least one vnode per shard");
        HashRing::with_weights(&vec![vnodes; shards])
    }

    /// Builds a ring with an explicit vnode count per shard — the
    /// runtime-policy knob RAFDA argues for: placement capacity is a
    /// deployment decision, so a beefier shard simply carries more
    /// points. A zero weight removes the shard from the ring (it owns
    /// nothing) while keeping its index stable for the router.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or every weight is zero.
    pub fn with_weights(weights: &[usize]) -> HashRing {
        assert!(!weights.is_empty(), "a ring needs at least one shard");
        assert!(
            weights.iter().any(|&w| w > 0),
            "a ring needs at least one vnode somewhere"
        );
        let mut points = Vec::with_capacity(weights.iter().sum());
        for (shard, &vnodes) in weights.iter().enumerate() {
            for vnode in 0..vnodes {
                points.push((
                    ring_hash(format!("shard-{shard}/vnode-{vnode}").as_bytes()),
                    shard,
                ));
            }
        }
        points.sort_unstable();
        HashRing {
            points,
            shards: weights.len(),
        }
    }

    /// The shard owning `class`.
    pub fn shard_for(&self, class: &str) -> usize {
        let h = ring_hash(class.as_bytes());
        let idx = self.points.partition_point(|&(p, _)| p < h);
        self.points[idx % self.points.len()].1
    }

    /// The shard owning `class` when the shards in `excluded` are off
    /// the ring — where a class lands while its home shard drains. The
    /// walk continues clockwise from the class's own point, so every
    /// non-excluded placement is stable under repeated exclusion.
    /// Returns `None` when exclusion empties the ring.
    pub fn shard_for_excluding(&self, class: &str, excluded: &[usize]) -> Option<usize> {
        let h = ring_hash(class.as_bytes());
        let start = self.points.partition_point(|&(p, _)| p < h);
        (0..self.points.len())
            .map(|i| self.points[(start + i) % self.points.len()].1)
            .find(|s| !excluded.contains(s))
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_deterministic_and_in_range() {
        let a = HashRing::new(3, 32);
        let b = HashRing::new(3, 32);
        for name in ["Calc", "Echo", "Counter", "Inventory", "X", "Y9"] {
            let s = a.shard_for(name);
            assert!(s < 3);
            assert_eq!(s, b.shard_for(name), "same layout must agree");
        }
    }

    #[test]
    fn exclusion_rehomes_only_the_excluded_shards_classes() {
        let ring = HashRing::new(3, 32);
        for i in 0..48 {
            let name = format!("Class{i}");
            let home = ring.shard_for(&name);
            let moved = ring.shard_for_excluding(&name, &[0]).unwrap();
            assert_ne!(moved, 0, "excluded shard must own nothing");
            if home != 0 {
                assert_eq!(moved, home, "unaffected classes must not move");
            }
        }
        assert_eq!(ring.shard_for_excluding("Any", &[0, 1, 2]), None);
    }

    #[test]
    fn weighted_ring_skews_ownership_and_zero_weight_owns_nothing() {
        let ring = HashRing::with_weights(&[96, 8, 0]);
        let mut counts = [0usize; 3];
        for i in 0..200 {
            counts[ring.shard_for(&format!("Class{i}"))] += 1;
        }
        assert_eq!(counts[2], 0, "zero-weight shard must own nothing");
        assert!(
            counts[0] > counts[1] * 3,
            "12x the vnodes should attract most classes: {counts:?}"
        );
    }

    #[test]
    fn classes_spread_across_shards() {
        let ring = HashRing::new(4, 64);
        let mut seen = [false; 4];
        for i in 0..64 {
            seen[ring.shard_for(&format!("Class{i}"))] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "64 classes over 4 shards should hit every shard: {seen:?}"
        );
    }
}
