//! Consistent-hash ring mapping class names onto shards.
//!
//! Each shard owns `vnodes` points on a 64-bit ring; a class lands on
//! the first point clockwise of its own hash. Virtual nodes smooth the
//! distribution, and the layout is a pure function of (shard count,
//! vnode count) — every router replica computes identical assignments
//! with no coordination.

/// FNV-1a, 64-bit. Deterministic across platforms and dependency-free.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64 finalizer. Raw FNV-1a of near-identical short strings
/// (`Class0`, `Class1`, …) clusters in the high bits, which a sorted
/// ring keys on — without this avalanche step, sequential class names
/// can all land on a couple of shards.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

fn ring_hash(bytes: &[u8]) -> u64 {
    mix(fnv1a(bytes))
}

/// The ring: sorted (point, shard) pairs.
#[derive(Debug, Clone)]
pub struct HashRing {
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// Builds a ring of `shards` shards with `vnodes` points each.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `vnodes` is zero.
    pub fn new(shards: usize, vnodes: usize) -> HashRing {
        assert!(shards > 0, "a ring needs at least one shard");
        assert!(vnodes > 0, "a ring needs at least one vnode per shard");
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for vnode in 0..vnodes {
                points.push((
                    ring_hash(format!("shard-{shard}/vnode-{vnode}").as_bytes()),
                    shard,
                ));
            }
        }
        points.sort_unstable();
        HashRing { points, shards }
    }

    /// The shard owning `class`.
    pub fn shard_for(&self, class: &str) -> usize {
        let h = ring_hash(class.as_bytes());
        let idx = self.points.partition_point(|&(p, _)| p < h);
        self.points[idx % self.points.len()].1
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_deterministic_and_in_range() {
        let a = HashRing::new(3, 32);
        let b = HashRing::new(3, 32);
        for name in ["Calc", "Echo", "Counter", "Inventory", "X", "Y9"] {
            let s = a.shard_for(name);
            assert!(s < 3);
            assert_eq!(s, b.shard_for(name), "same layout must agree");
        }
    }

    #[test]
    fn classes_spread_across_shards() {
        let ring = HashRing::new(4, 64);
        let mut seen = [false; 4];
        for i in 0..64 {
            seen[ring.shard_for(&format!("Class{i}"))] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "64 classes over 4 shards should hit every shard: {seen:?}"
        );
    }
}
