//! Structured trace events and RAII spans.
//!
//! Events land in a bounded in-process ring buffer the REPL's `trace`
//! command drains; spans additionally record their duration into a
//! histogram. Lifecycle sites (deploys, edits, publications, stale
//! recoveries) trace unconditionally — they are rare. Per-request sites
//! should record metrics only, or gate on [`verbose`].

use crate::metrics::Histogram;
use crate::sync::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const RING_CAPACITY: usize = 1024;

#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Monotonic sequence number, process-wide.
    pub seq: u64,
    /// Microseconds since process start (see [`crate::uptime_micros`]).
    pub at_micros: u64,
    /// Subsystem: `"httpd"`, `"gateway"`, `"publisher"`, `"cde"`, …
    pub target: &'static str,
    /// Event name within the subsystem, e.g. `"stale_call"`.
    pub name: String,
    /// Free-form detail, e.g. the class and method involved.
    pub detail: String,
}

static SEQ: AtomicU64 = AtomicU64::new(0);
static VERBOSE: AtomicBool = AtomicBool::new(false);

fn ring() -> &'static Mutex<VecDeque<TraceEvent>> {
    static RING: std::sync::OnceLock<Mutex<VecDeque<TraceEvent>>> = std::sync::OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(RING_CAPACITY)))
}

/// Record a trace event. A no-op while [`crate::recording`] is off.
pub fn event(target: &'static str, name: impl Into<String>, detail: impl Into<String>) {
    if !crate::recording() {
        return;
    }
    let ev = TraceEvent {
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        at_micros: crate::uptime_micros(),
        target,
        name: name.into(),
        detail: detail.into(),
    };
    // Unify the two trace streams: when a distributed-tracing context
    // is active on this thread, the ring event also lands on the
    // active span as an annotation, so a sampled trace carries the
    // events that happened inside it.
    if crate::tracectx::has_active() {
        crate::tracectx::annotate_active(
            "event",
            crate::tracectx::AnnValue::Owned(format!("{}: {}", ev.name, ev.detail)),
        );
    }
    let mut ring = ring().lock();
    if ring.len() == RING_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(ev);
}

/// Record a per-request event only when verbose tracing is on.
pub fn verbose_event(target: &'static str, name: impl Into<String>, detail: impl Into<String>) {
    if verbose() {
        event(target, name, detail);
    }
}

/// Toggle per-request ("verbose") trace events. Lifecycle events are
/// always recorded; this only affects hot-path sites.
pub fn set_verbose(on: bool) {
    VERBOSE.store(on, Ordering::Relaxed);
}

pub fn verbose() -> bool {
    VERBOSE.load(Ordering::Relaxed)
}

/// The most recent `n` events, oldest first.
pub fn recent(n: usize) -> Vec<TraceEvent> {
    let ring = ring().lock();
    let skip = ring.len().saturating_sub(n);
    ring.iter().skip(skip).cloned().collect()
}

pub fn clear() {
    ring().lock().clear();
}

/// An RAII span: on drop, records its elapsed nanoseconds into the
/// histogram it was opened with.
pub struct Span {
    start: Instant,
    hist: Option<Arc<Histogram>>,
}

impl Span {
    /// A span that records into `hist` when dropped.
    pub fn timed(hist: Arc<Histogram>) -> Span {
        Span {
            start: Instant::now(),
            hist: Some(hist),
        }
    }

    /// Elapsed nanoseconds so far (saturating at `u64::MAX`).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Close the span early, returning the recorded duration.
    pub fn finish(mut self) -> u64 {
        let ns = self.elapsed_ns();
        if let Some(h) = self.hist.take() {
            h.record(ns);
        }
        ns
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(h) = self.hist.take() {
            h.record(self.elapsed_ns());
        }
    }
}

/// Open a span recording into the named global histogram.
pub fn span(hist_key: &str) -> Span {
    Span::timed(crate::registry().histogram(hist_key))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The ring is global; serialize the tests that mutate it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn ring_keeps_most_recent_events() {
        let _g = TEST_LOCK.lock();
        clear();
        for i in 0..(RING_CAPACITY + 10) {
            event("test", "tick", format!("{i}"));
        }
        let all = recent(usize::MAX);
        assert_eq!(all.len(), RING_CAPACITY);
        assert_eq!(
            all.last().expect("last").detail,
            format!("{}", RING_CAPACITY + 9)
        );
        // Oldest ten were evicted.
        assert_eq!(all.first().expect("first").detail, "10");
        clear();
    }

    #[test]
    fn recent_returns_tail_in_order() {
        let _g = TEST_LOCK.lock();
        clear();
        for i in 0..5 {
            event("test", "n", format!("{i}"));
        }
        let tail = recent(2);
        assert_eq!(tail.len(), 2);
        assert!(tail[0].seq < tail[1].seq);
        assert_eq!(tail[1].detail, "4");
        clear();
    }

    #[test]
    fn span_records_into_histogram() {
        let h = Arc::new(Histogram::new());
        {
            let _s = Span::timed(h.clone());
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn verbose_gate() {
        let _g = TEST_LOCK.lock();
        clear();
        set_verbose(false);
        verbose_event("test", "hot", "skipped");
        assert!(recent(usize::MAX).is_empty());
        set_verbose(true);
        verbose_event("test", "hot", "kept");
        assert_eq!(recent(usize::MAX).len(), 1);
        set_verbose(false);
        clear();
    }
}
