//! A small deterministic xorshift64* generator.
//!
//! Used by tests and benches that need reproducible pseudo-randomness
//! without pulling in an external RNG crate. Not cryptographic.

#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seed the generator. A zero seed is remapped to a fixed non-zero
    /// constant (xorshift has an all-zero fixed point).
    pub fn seed_from_u64(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, n)`. `n` must be non-zero.
    pub fn gen_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_usize(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform in `[lo, hi)`. `lo < hi` required.
    pub fn gen_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as i64
    }

    /// Bernoulli with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            // Advance the stream either way so schedules stay aligned.
            self.next_u64();
            return true;
        }
        self.gen_f64() < p.max(0.0)
    }

    /// A uniformly random finite `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fill `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Pick a random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_usize(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShift64::seed_from_u64(42);
        let mut b = XorShift64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64::seed_from_u64(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = XorShift64::seed_from_u64(1);
        for _ in 0..64 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = XorShift64::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-3, 4);
            assert!((-3..4).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = XorShift64::seed_from_u64(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
