//! Atomic counters, gauges, and log-bucketed latency histograms behind a
//! global name→handle registry.
//!
//! Handles are `Arc`s resolved once (at construction time of whatever is
//! being instrumented) so the hot path is a relaxed atomic op — no map
//! lookup, no allocation. Names follow the Prometheus convention:
//! `sde_dispatch_ns{class="Calc"}`; label sets are part of the key.
//!
//! Histograms are log-linear: exact buckets for values `< 4`, then four
//! sub-buckets per power of two, giving a worst-case relative error of
//! 25% across the full `u64` range with a fixed 252-slot table.

use crate::sync::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

// -------------------------------------------------------------- Counter

#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------- Gauge

#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub const fn new() -> Self {
        Self {
            value: AtomicI64::new(0),
        }
    }

    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if it is below it (high-water mark).
    pub fn set_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

// ------------------------------------------------------------ Histogram

/// Exact buckets for 0..3, then 4 sub-buckets per octave up to 2^63.
pub const N_BUCKETS: usize = 252;

/// Map a value to its bucket index.
pub fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // >= 2
    let sub = ((v >> (msb - 2)) & 3) as usize;
    (msb - 1) * 4 + sub
}

/// Inclusive `(low, high)` bounds of bucket `idx`.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < 4 {
        return (idx as u64, idx as u64);
    }
    let msb = idx / 4 + 1;
    let sub = (idx % 4) as u64;
    let width = 1u64 << (msb - 2);
    let lo = (1u64 << msb) + sub * width;
    // `lo + width` overflows u64 in the topmost bucket; subtract first.
    (lo, lo + (width - 1))
}

pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; N_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation. A no-op while [`crate::recording`] is off
    /// (the bench crate's instrumentation-off baseline).
    pub fn record(&self, v: u64) {
        if !crate::recording() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u16, n));
            }
        }
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish()
    }
}

/// A point-in-time copy of a histogram: sparse bucket list plus
/// aggregates. Percentiles are computed lazily so deltas stay exact.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// `(bucket_index, count)` pairs, ascending, zero buckets omitted.
    pub buckets: Vec<(u16, u64)>,
}

impl HistogramSnapshot {
    /// The value at quantile `q` in `[0, 1]`, reported as the upper bound
    /// of the containing bucket (≤ 25% relative error). Zero if empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(idx, n) in &self.buckets {
            cum += n;
            if cum >= rank {
                return bucket_bounds(idx as usize).1.min(self.max);
            }
        }
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Observations added since `base` was taken (same histogram,
    /// earlier snapshot).
    pub fn delta(&self, base: &HistogramSnapshot) -> HistogramSnapshot {
        let mut old: BTreeMap<u16, u64> = base.buckets.iter().copied().collect();
        let mut buckets = Vec::new();
        for &(idx, n) in &self.buckets {
            let prev = old.remove(&idx).unwrap_or(0);
            if n > prev {
                buckets.push((idx, n - prev));
            }
        }
        HistogramSnapshot {
            count: self.count.saturating_sub(base.count),
            sum: self.sum.saturating_sub(base.sum),
            min: self.min,
            max: self.max,
            buckets,
        }
    }
}

// -------------------------------------------------------------- Registry

/// Build a registry key from a metric name and label pairs:
/// `key("x", &[("class", "Calc")])` → `x{class="Calc"}`.
pub fn key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
    out
}

#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

macro_rules! get_or_create {
    ($map:expr, $key:expr, $ty:ty) => {{
        if let Some(h) = $map.read().get($key) {
            return h.clone();
        }
        $map.write()
            .entry($key.to_string())
            .or_insert_with(|| Arc::new(<$ty>::default()))
            .clone()
    }};
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter registered under `name` (which may
    /// already contain a `{label="…"}` suffix — see [`key`]).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create!(self.counters, name, Counter)
    }

    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.counter(&key(name, labels))
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create!(self.gauges, name, Gauge)
    }

    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.gauge(&key(name, labels))
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create!(self.histograms, name, Histogram)
    }

    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram(&key(name, labels))
    }

    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// The process-wide registry every instrumented crate records into.
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

// -------------------------------------------------------------- Snapshot

/// A point-in-time copy of every metric in a registry. Supports delta
/// arithmetic (for per-stage breakdowns around a workload) and
/// Prometheus text rendering (for `GET /metrics`).
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Counter value by exact key, zero if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sum of all counters whose base name (before any `{`) is `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| base_name(k) == name)
            .map(|(_, v)| v)
            .sum()
    }

    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Everything that happened between `base` (earlier) and `self`.
    pub fn delta(&self, base: &Snapshot) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.saturating_sub(base.counter(k))))
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| {
                    let d = match base.histograms.get(k) {
                        Some(b) => v.delta(b),
                        None => v.clone(),
                    };
                    (k.clone(), d)
                })
                .collect(),
        }
    }

    /// Render in the Prometheus text exposition format. Histograms are
    /// rendered as summaries with `quantile` labels plus `_sum`/`_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_base = "";
        for (k, v) in &self.counters {
            let base = base_name(k);
            if base != last_base {
                out.push_str(&format!("# TYPE {base} counter\n"));
                last_base = base;
            }
            out.push_str(&format!("{k} {v}\n"));
        }
        last_base = "";
        for (k, v) in &self.gauges {
            let base = base_name(k);
            if base != last_base {
                out.push_str(&format!("# TYPE {base} gauge\n"));
                last_base = base;
            }
            out.push_str(&format!("{k} {v}\n"));
        }
        last_base = "";
        for (k, h) in &self.histograms {
            let base = base_name(k);
            if base != last_base {
                out.push_str(&format!("# TYPE {base} summary\n"));
                last_base = base;
            }
            for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                out.push_str(&format!(
                    "{} {}\n",
                    with_label(k, "quantile", label),
                    h.percentile(q)
                ));
            }
            let (name, labels) = split_key(k);
            out.push_str(&format!("{name}_sum{labels} {}\n", h.sum));
            out.push_str(&format!("{name}_count{labels} {}\n", h.count));
        }
        out
    }
}

/// `sde_dispatch_ns{class="Calc"}` → `sde_dispatch_ns`.
pub fn base_name(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

/// `("sde_dispatch_ns", "{class=\"Calc\"}")` — labels include braces,
/// empty string when unlabeled.
fn split_key(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(i) => key.split_at(i),
        None => (key, ""),
    }
}

/// Merge one more label into a possibly-labeled key.
fn with_label(key: &str, label: &str, value: &str) -> String {
    let (name, labels) = split_key(key);
    if labels.is_empty() {
        format!("{name}{{{label}=\"{value}\"}}")
    } else {
        let inner = &labels[1..labels.len() - 1];
        format!("{name}{{{inner},{label}=\"{value}\"}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..4u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bucket_bounds_partition_the_range() {
        // Every bucket's low bound is the previous bucket's high + 1.
        for i in 1..N_BUCKETS {
            let (lo, _) = bucket_bounds(i);
            let (_, prev_hi) = bucket_bounds(i - 1);
            assert_eq!(lo, prev_hi + 1, "gap/overlap at bucket {i}");
        }
        // And indexing round-trips: v falls inside its own bucket.
        for v in [
            0,
            1,
            3,
            4,
            5,
            7,
            8,
            9,
            15,
            16,
            100,
            1000,
            1 << 20,
            u64::MAX / 3,
        ] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn bucket_error_is_bounded() {
        for v in [10u64, 100, 999, 12345, 1 << 30] {
            let (_, hi) = bucket_bounds(bucket_index(v));
            assert!(hi as f64 <= v as f64 * 1.25, "{v} → {hi}");
        }
    }

    #[test]
    fn percentiles_on_known_distribution() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        // p50 of 1..=100 is 50; bucket upper bound may overshoot ≤ 25%.
        let p50 = s.percentile(0.5);
        assert!((50..=63).contains(&p50), "p50 = {p50}");
        let p99 = s.percentile(0.99);
        assert!((99..=100).contains(&p99), "p99 = {p99}");
        // Extremes clamp to real observations.
        assert_eq!(s.percentile(0.0), 1);
        assert_eq!(s.percentile(1.0), 100);
    }

    #[test]
    fn percentile_of_empty_histogram_is_zero() {
        assert_eq!(Histogram::new().snapshot().percentile(0.5), 0);
    }

    #[test]
    fn single_observation_dominates_every_quantile() {
        let h = Histogram::new();
        h.record(42);
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.99, 1.0] {
            let p = s.percentile(q);
            let (lo, hi) = bucket_bounds(bucket_index(42));
            assert!(p >= lo && p <= hi.min(s.max), "q={q} p={p}");
        }
    }

    #[test]
    fn histogram_delta_subtracts_buckets() {
        let h = Histogram::new();
        h.record(5);
        h.record(5);
        let base = h.snapshot();
        h.record(5);
        h.record(1000);
        let d = h.snapshot().delta(&base);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 1005);
        assert_eq!(d.buckets.iter().map(|&(_, n)| n).sum::<u64>(), 2);
    }

    #[test]
    fn counters_are_correct_under_contention() {
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("incrementer");
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn registry_returns_same_handle_for_same_key() {
        let r = Registry::new();
        let a = r.counter_with("x_total", &[("class", "Calc")]);
        let b = r.counter("x_total{class=\"Calc\"}");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_delta_and_lookup() {
        let r = Registry::new();
        r.counter("a_total").add(3);
        let base = r.snapshot();
        r.counter("a_total").add(2);
        r.histogram("h_ns").record(7);
        let d = r.snapshot().delta(&base);
        assert_eq!(d.counter("a_total"), 2);
        assert_eq!(d.histogram("h_ns").expect("h_ns").count, 1);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let r = Registry::new();
        r.counter_with("req_total", &[("class", "Calc")]).add(4);
        r.gauge("depth").set(2);
        r.histogram_with("lat_ns", &[("class", "Calc")]).record(100);
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("# TYPE req_total counter"));
        assert!(text.contains("req_total{class=\"Calc\"} 4"));
        assert!(text.contains("# TYPE depth gauge"));
        assert!(text.contains("lat_ns{class=\"Calc\",quantile=\"0.5\"}"));
        assert!(text.contains("lat_ns_sum{class=\"Calc\"} 100"));
        assert!(text.contains("lat_ns_count{class=\"Calc\"} 1"));
    }

    #[test]
    fn counter_total_sums_across_labels() {
        let r = Registry::new();
        r.counter_with("t_total", &[("class", "A")]).add(1);
        r.counter_with("t_total", &[("class", "B")]).add(2);
        assert_eq!(r.snapshot().counter_total("t_total"), 3);
    }
}
