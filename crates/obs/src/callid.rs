//! Per-call identifiers for at-most-once RMI delivery.
//!
//! A [`CallId`] names one *logical* remote call: every transport-level
//! retry of that call carries the same id, so a server-side reply cache
//! can recognize a redelivery and return the stored reply instead of
//! executing the method body a second time.
//!
//! The id is two 64-bit words:
//!
//! * `client` — a per-process random identity drawn once from
//!   [`crate::rng::XorShift64`], seeded from the process uptime clock and
//!   a stack address so concurrently started clients diverge;
//! * `seq` — a process-wide monotonic sequence number.
//!
//! Wire formats (both alloc-free to produce):
//!
//! * text (SOAP header): `<client-hex>-<seq-hex>`, two fixed-width
//!   16-digit lowercase hex words joined by `-` (33 bytes total);
//! * binary (GIOP service context): 16 bytes, `client` then `seq`, both
//!   big-endian.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Identity of one logical remote call (stable across retries).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CallId {
    /// Random per-client-process identity.
    pub client: u64,
    /// Monotonic per-process sequence number.
    pub seq: u64,
}

/// Length of the fixed-width text form: 16 + 1 + 16.
pub const TEXT_LEN: usize = 33;

/// Length of the binary form: two big-endian u64 words.
pub const WIRE_LEN: usize = 16;

fn client_identity() -> u64 {
    static CLIENT: OnceLock<u64> = OnceLock::new();
    *CLIENT.get_or_init(|| {
        // Mix the uptime clock with an address from this frame: cheap
        // entropy that separates processes started in the same microsecond.
        let marker = 0u8;
        let seed = crate::uptime_micros()
            ^ (&marker as *const u8 as u64).rotate_left(17)
            ^ (std::process::id() as u64).rotate_left(41);
        crate::rng::XorShift64::seed_from_u64(seed | 1).next_u64()
    })
}

impl CallId {
    /// Mints a fresh id for a new logical call.
    pub fn fresh() -> CallId {
        static SEQ: AtomicU64 = AtomicU64::new(1);
        CallId {
            client: client_identity(),
            seq: SEQ.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Fixed-width text form, written into a stack buffer — the caller
    /// appends the returned slice to its (recycled) encode buffer, so the
    /// hot path stays allocation-free.
    pub fn write_text<'a>(&self, buf: &'a mut [u8; TEXT_LEN]) -> &'a str {
        const HEX: &[u8; 16] = b"0123456789abcdef";
        for i in 0..16 {
            buf[i] = HEX[((self.client >> (60 - 4 * i)) & 0xf) as usize];
            buf[17 + i] = HEX[((self.seq >> (60 - 4 * i)) & 0xf) as usize];
        }
        buf[16] = b'-';
        // Only ASCII hex and '-' were written.
        std::str::from_utf8(buf).expect("ascii")
    }

    /// Parses the fixed-width text form.
    pub fn parse_text(s: &str) -> Option<CallId> {
        let b = s.as_bytes();
        if b.len() != TEXT_LEN || b[16] != b'-' {
            return None;
        }
        let word = |part: &[u8]| -> Option<u64> {
            let mut v = 0u64;
            for &c in part {
                v = (v << 4) | (c as char).to_digit(16)? as u64;
            }
            Some(v)
        };
        Some(CallId {
            client: word(&b[..16])?,
            seq: word(&b[17..])?,
        })
    }

    /// Binary wire form: `client` then `seq`, big-endian.
    pub fn to_wire(&self) -> [u8; WIRE_LEN] {
        let mut out = [0u8; WIRE_LEN];
        out[..8].copy_from_slice(&self.client.to_be_bytes());
        out[8..].copy_from_slice(&self.seq.to_be_bytes());
        out
    }

    /// Parses the binary wire form.
    pub fn from_wire(bytes: &[u8]) -> Option<CallId> {
        if bytes.len() != WIRE_LEN {
            return None;
        }
        Some(CallId {
            client: u64::from_be_bytes(bytes[..8].try_into().ok()?),
            seq: u64::from_be_bytes(bytes[8..].try_into().ok()?),
        })
    }
}

impl std::fmt::Display for CallId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut buf = [0u8; TEXT_LEN];
        f.write_str(self.write_text(&mut buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_unique_and_monotonic() {
        let a = CallId::fresh();
        let b = CallId::fresh();
        assert_eq!(a.client, b.client);
        assert!(b.seq > a.seq);
        assert_ne!(a, b);
    }

    #[test]
    fn text_round_trip() {
        let id = CallId {
            client: 0x0123_4567_89ab_cdef,
            seq: 42,
        };
        let mut buf = [0u8; TEXT_LEN];
        let s = id.write_text(&mut buf);
        assert_eq!(s, "0123456789abcdef-000000000000002a");
        assert_eq!(CallId::parse_text(s), Some(id));
        assert_eq!(CallId::parse_text(&id.to_string()), Some(id));
    }

    #[test]
    fn wire_round_trip() {
        let id = CallId::fresh();
        assert_eq!(CallId::from_wire(&id.to_wire()), Some(id));
        assert_eq!(CallId::from_wire(&[0u8; 15]), None);
    }

    #[test]
    fn malformed_text_is_rejected() {
        assert_eq!(CallId::parse_text(""), None);
        assert_eq!(CallId::parse_text("xyz"), None);
        assert_eq!(
            CallId::parse_text("0123456789abcdefX000000000000002a"),
            None
        );
        assert_eq!(
            CallId::parse_text("0123456789abcdeg-000000000000002a"),
            None
        );
    }
}
