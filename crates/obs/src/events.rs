//! The queryable version-event log.
//!
//! The publisher (paper §5.6–5.7) records every step of an interface's
//! life here — edit observed, stability timer armed/reset, timeout
//! fired, document generation, publication (forced or timed), and stale
//! calls — tagged with the class and interface version. The REPL's
//! `events` command and the end-to-end tests query it to reconstruct
//! exactly when a version became visible.

use crate::sync::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

const LOG_CAPACITY: usize = 4096;

#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub enum VersionEventKind {
    /// A live edit changed the distributed interface.
    InterfaceEdit,
    /// The stability timer was armed or pushed back by a fresh edit.
    TimerReset,
    /// The stability timeout elapsed with no further edits.
    StabilityTimeout,
    /// Interface documents (WSDL/IDL) were generated for a version.
    Generation,
    /// A version became visible to clients.
    Publication,
    /// A publication forced by a stale call (§5.7 reactive strategy).
    ForcedPublication,
    /// A client call arrived under an outdated interface.
    StaleCall,
}

impl VersionEventKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            VersionEventKind::InterfaceEdit => "interface_edit",
            VersionEventKind::TimerReset => "timer_reset",
            VersionEventKind::StabilityTimeout => "stability_timeout",
            VersionEventKind::Generation => "generation",
            VersionEventKind::Publication => "publication",
            VersionEventKind::ForcedPublication => "forced_publication",
            VersionEventKind::StaleCall => "stale_call",
        }
    }
}

#[derive(Clone, Debug)]
pub struct VersionEvent {
    pub seq: u64,
    pub at_micros: u64,
    pub class: String,
    pub kind: VersionEventKind,
    /// The interface version the event concerns (0 when unknown).
    pub version: u64,
}

static SEQ: AtomicU64 = AtomicU64::new(0);

fn log() -> &'static Mutex<VecDeque<VersionEvent>> {
    static LOG: OnceLock<Mutex<VecDeque<VersionEvent>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(VecDeque::with_capacity(256)))
}

/// Append an event to the log and bump the matching
/// `sde_version_events_total{kind="…"}` counter.
pub fn record(class: &str, kind: VersionEventKind, version: u64) {
    crate::registry()
        .counter_with("sde_version_events_total", &[("kind", kind.as_str())])
        .inc();
    if !crate::recording() {
        return;
    }
    let ev = VersionEvent {
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        at_micros: crate::uptime_micros(),
        class: class.to_string(),
        kind,
        version,
    };
    let mut log = log().lock();
    if log.len() == LOG_CAPACITY {
        log.pop_front();
    }
    log.push_back(ev);
}

/// Events for one class (or all classes when `class` is `None`),
/// oldest first.
pub fn query(class: Option<&str>) -> Vec<VersionEvent> {
    log()
        .lock()
        .iter()
        .filter(|e| class.is_none_or(|c| e.class == c))
        .cloned()
        .collect()
}

/// How many events of `kind` the log currently holds for `class`.
pub fn count(class: &str, kind: VersionEventKind) -> usize {
    log()
        .lock()
        .iter()
        .filter(|e| e.class == class && e.kind == kind)
        .count()
}

/// The latest published version recorded for `class`, if any.
pub fn latest_published_version(class: &str) -> Option<u64> {
    log()
        .lock()
        .iter()
        .rev()
        .find(|e| {
            e.class == class
                && matches!(
                    e.kind,
                    VersionEventKind::Publication | VersionEventKind::ForcedPublication
                )
        })
        .map(|e| e.version)
}

pub fn clear() {
    log().lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_query_and_count() {
        let class = "ObsEventsUnitTestClass"; // unique to avoid cross-test noise
        record(class, VersionEventKind::InterfaceEdit, 1);
        record(class, VersionEventKind::Publication, 1);
        record(class, VersionEventKind::ForcedPublication, 2);
        let evs = query(Some(class));
        assert_eq!(evs.len(), 3);
        assert!(evs.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(count(class, VersionEventKind::Publication), 1);
        assert_eq!(latest_published_version(class), Some(2));
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(
            VersionEventKind::StabilityTimeout.as_str(),
            "stability_timeout"
        );
        assert_eq!(VersionEventKind::StaleCall.as_str(), "stale_call");
    }
}
