//! Observability substrate for the live-RMI workspace.
//!
//! `obs` is deliberately dependency-free: it provides the few pieces of
//! infrastructure the rest of the workspace would otherwise pull from
//! crates.io, plus the tracing/metrics layer the §7 evaluation needs.
//!
//! * [`sync`] — `parking_lot`-style wrappers over `std::sync` (no lock
//!   poisoning in the API, guards returned directly from `lock()`).
//! * [`rng`] — a tiny deterministic xorshift generator for tests and
//!   benchmarks.
//! * [`metrics`] — atomic counters, gauges, and log-bucketed latency
//!   histograms behind a global name→handle registry, with snapshot /
//!   delta arithmetic and Prometheus text rendering.
//! * [`trace`] — a bounded in-process ring of structured trace events
//!   plus RAII spans that record durations into histograms.
//! * [`tracectx`] — cross-process distributed tracing: wire-propagated
//!   trace context, span trees, and a tail-sampled bounded span store.
//! * [`events`] — the queryable version-event log: interface edits,
//!   stability timeouts, generations, publications, and stale calls,
//!   in arrival order per class.

pub mod callid;
pub mod events;
pub mod metrics;
pub mod rng;
pub mod sync;
pub mod trace;
pub mod tracectx;

pub use callid::CallId;
pub use metrics::{registry, Counter, Gauge, Histogram, Registry, Snapshot};
pub use trace::{span, Span};
pub use tracectx::{SpanId, TraceContext, TraceId};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static RECORDING: AtomicBool = AtomicBool::new(true);

/// Globally enable or disable the *expensive* parts of observability
/// (histogram recording and trace events). Counters and gauges stay on —
/// a relaxed atomic increment is cheaper than the branch would be worth.
///
/// The bench crate uses this to measure the instrumentation-on vs
/// instrumentation-off RTT delta.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// Whether histogram recording and trace events are currently enabled.
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Microseconds elapsed since the first call into `obs` in this process.
/// Used to timestamp trace and version events without a wall clock.
pub fn uptime_micros() -> u64 {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_micros() as u64
}
