//! `parking_lot`-flavoured wrappers over `std::sync`.
//!
//! The workspace was written against the `parking_lot` API: `lock()`
//! returns a guard directly (no `Result`), and a poisoned lock is not an
//! error state. These wrappers preserve that contract on top of the
//! standard library — a panic while holding a lock simply leaves the
//! protected data as-is for the next locker.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- Mutex

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A guard that owns the underlying `std` guard in an `Option` so the
/// [`Condvar`] can temporarily take it during a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard active")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard active")
    }
}

// -------------------------------------------------------------- Condvar

#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard active");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard active");
        let (g, timed_out) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r.timed_out()),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r.timed_out())
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(timed_out)
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

// --------------------------------------------------------------- RwLock

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_survives_panic_while_held() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, c) = &*pair2;
            let mut done = m.lock();
            while !*done {
                c.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        let (m, c) = &*pair;
        *m.lock() = true;
        c.notify_all();
        t.join().expect("waiter");
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn wait_until_past_deadline_returns_immediately() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_until(&mut g, Instant::now() - Duration::from_secs(1));
        assert!(r.timed_out());
    }
}
