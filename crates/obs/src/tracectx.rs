//! Cross-process distributed tracing: wire-propagated trace context,
//! span trees, and tail-based sampling.
//!
//! The [`crate::trace`] ring answers "what happened recently in this
//! process"; this module answers "where did *this call* spend its
//! time, across processes". Every logical RMI call opens a **root
//! span** on the client ([`client_root`]); each transport attempt,
//! server dispatch, reply-cache admission, and marshal step nests
//! under it as a child span. The context (128-bit trace id + parent
//! span id + flags) rides both wires next to the PR-5 call ID — a
//! `urn:live-rmi:trace` SOAP header and GIOP service context
//! `0x53444503` — so server-side spans parent correctly under the
//! client's attempt span even in separate processes.
//!
//! Completed traces buffer in a bounded per-process [`SpanStore`] and
//! are **tail-sampled**: on root-span completion the trace is retained
//! only if it errored, retried, carried an injected fault, was slow
//! relative to the recent p99, or won a random sample (seeded via
//! [`crate::rng`]). Everything else is recycled, bounding memory while
//! never losing the interesting traces.
//!
//! The hot path is engineered to add near-zero allocations per call:
//! span names and error kinds are `&'static str`, annotation vectors
//! are lazily allocated, completed span buffers are pooled in a
//! freelist, and the pending-trace map reaches a steady-state capacity.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::callid::CallId;
use crate::rng::XorShift64;
use crate::sync::Mutex;

// ---------------------------------------------------------------------------
// Identifiers and wire context
// ---------------------------------------------------------------------------

/// 128-bit trace identifier: one per *logical* call, shared by every
/// span of that call on every process it touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u128);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// 64-bit span identifier, unique within its process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The propagated context: which trace the receiver should join, and
/// which span its own spans should parent under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace every downstream span joins.
    pub trace: TraceId,
    /// The sender's active span — the parent for receiver-side spans.
    pub parent: SpanId,
    /// Propagation flags; bit 0 ([`FLAG_SAMPLED`]) is always set by
    /// senders today and reserved for a future head-sampling veto.
    pub flags: u8,
}

/// Flag bit 0: the sender is recording this trace.
pub const FLAG_SAMPLED: u8 = 0x01;

/// Text form length: `<32 hex trace>:<16 hex span>:<2 hex flags>`.
pub const TEXT_LEN: usize = 52;

/// Binary form length: 16-byte trace + 8-byte span + 1 flag byte,
/// big-endian — the GIOP service-context payload.
pub const WIRE_LEN: usize = 25;

impl TraceContext {
    /// Formats the canonical `traceid:parent-spanid:flags` text form
    /// into a caller-provided stack buffer (no allocation), mirroring
    /// [`CallId::write_text`].
    pub fn write_text<'a>(&self, buf: &'a mut [u8; TEXT_LEN]) -> &'a str {
        const HEX: &[u8; 16] = b"0123456789abcdef";
        let t = self.trace.0;
        for (i, b) in buf[..32].iter_mut().enumerate() {
            *b = HEX[((t >> ((31 - i) * 4)) & 0xf) as usize];
        }
        buf[32] = b':';
        let s = self.parent.0;
        for i in 0..16 {
            buf[33 + i] = HEX[((s >> ((15 - i) * 4)) & 0xf) as usize];
        }
        buf[49] = b':';
        buf[50] = HEX[(self.flags >> 4) as usize];
        buf[51] = HEX[(self.flags & 0xf) as usize];
        std::str::from_utf8(buf).expect("hex digits are ASCII")
    }

    /// Parses the text form. Malformed input (wrong length, bad hex,
    /// zero ids) yields `None` — receivers treat it as "no context".
    pub fn parse_text(s: &str) -> Option<TraceContext> {
        let b = s.as_bytes();
        if b.len() != TEXT_LEN || b[32] != b':' || b[49] != b':' {
            return None;
        }
        let trace = u128::from_str_radix(&s[..32], 16).ok()?;
        let parent = u64::from_str_radix(&s[33..49], 16).ok()?;
        let flags = u8::from_str_radix(&s[50..52], 16).ok()?;
        if trace == 0 || parent == 0 {
            return None;
        }
        Some(TraceContext {
            trace: TraceId(trace),
            parent: SpanId(parent),
            flags,
        })
    }

    /// Binary wire form for the GIOP service context.
    pub fn to_wire(&self) -> [u8; WIRE_LEN] {
        let mut out = [0u8; WIRE_LEN];
        out[..16].copy_from_slice(&self.trace.0.to_be_bytes());
        out[16..24].copy_from_slice(&self.parent.0.to_be_bytes());
        out[24] = self.flags;
        out
    }

    /// Decodes the binary wire form; wrong length or zero ids → `None`.
    pub fn from_wire(data: &[u8]) -> Option<TraceContext> {
        if data.len() != WIRE_LEN {
            return None;
        }
        let trace = u128::from_be_bytes(data[..16].try_into().ok()?);
        let parent = u64::from_be_bytes(data[16..24].try_into().ok()?);
        if trace == 0 || parent == 0 {
            return None;
        }
        Some(TraceContext {
            trace: TraceId(trace),
            parent: SpanId(parent),
            flags: data[24],
        })
    }
}

// ---------------------------------------------------------------------------
// Global switch and id generation
// ---------------------------------------------------------------------------

static TRACING: AtomicBool = AtomicBool::new(true);

/// Globally enable or disable distributed tracing. Independent of
/// [`crate::set_recording`] so the bench crate can measure the tracing
/// RTT delta in isolation. On by default.
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// Whether distributed tracing is currently enabled.
pub fn tracing() -> bool {
    TRACING.load(Ordering::Relaxed)
}

fn id_seed() -> u64 {
    static STREAM: AtomicU64 = AtomicU64::new(0);
    let n = STREAM.fetch_add(1, Ordering::Relaxed);
    // Process entropy (monotonic clock + a static's address under ASLR)
    // mixed with a per-thread stream counter: unique per thread, and
    // overwhelmingly unlikely to collide across processes.
    let entropy = crate::uptime_micros() ^ ((&STREAM as *const AtomicU64 as u64).rotate_left(32));
    entropy
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(n.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1)
}

thread_local! {
    static IDS: RefCell<XorShift64> = RefCell::new(XorShift64::seed_from_u64(id_seed()));
}

fn next_id() -> u64 {
    IDS.with(|r| {
        let mut g = r.borrow_mut();
        loop {
            let v = g.next_u64();
            if v != 0 {
                return v;
            }
        }
    })
}

fn next_trace_id() -> u128 {
    ((next_id() as u128) << 64) | next_id() as u128
}

// ---------------------------------------------------------------------------
// Spans: annotation values, records, the thread-local stack
// ---------------------------------------------------------------------------

/// A typed annotation value; `Str` keeps hot-path annotations
/// allocation-free, `Owned` carries dynamic detail (event payloads,
/// method names).
#[derive(Debug, Clone, PartialEq)]
pub enum AnnValue {
    /// An unsigned integer (attempt numbers, delays, depths).
    U64(u64),
    /// A static string (fault kinds, outcomes).
    Str(&'static str),
    /// A dynamically built string.
    Owned(String),
}

impl fmt::Display for AnnValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnnValue::U64(v) => write!(f, "{v}"),
            AnnValue::Str(s) => f.write_str(s),
            AnnValue::Owned(s) => f.write_str(s),
        }
    }
}

/// One completed span as stored in the [`SpanStore`].
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// The owning trace.
    pub trace: TraceId,
    /// This span's id.
    pub id: SpanId,
    /// Parent span id; `None` for the trace root. A `Some` parent that
    /// is absent from the local store belongs to a remote process.
    pub parent: Option<SpanId>,
    /// Span name from the fixed taxonomy (`client.call`,
    /// `client.attempt`, `server.soap`, `dispatch`, ...).
    pub name: &'static str,
    /// Start/end, microseconds since process start
    /// ([`crate::uptime_micros`]).
    pub start_us: u64,
    /// End tick; `end_us - start_us` is the span duration.
    pub end_us: u64,
    /// Error kind if the span failed.
    pub error: Option<&'static str>,
    /// The logical call id, when this span maps to one.
    pub call_id: Option<CallId>,
    /// Structured key/value annotations, in recording order.
    pub annotations: Vec<(&'static str, AnnValue)>,
}

impl SpanRecord {
    /// Span duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// Cap on annotations per span, bounding event-storm memory.
const MAX_ANNOTATIONS: usize = 32;

struct ActiveSpan {
    trace: u128,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start_us: u64,
    local_root: bool,
    call_id: Option<CallId>,
    error: Option<&'static str>,
    annotations: Vec<(&'static str, AnnValue)>,
}

thread_local! {
    static STACK: RefCell<Vec<ActiveSpan>> = const { RefCell::new(Vec::new()) };
    /// Finished spans awaiting the batched store handoff; the `bool`
    /// marks a trace root whose arrival completes the trace.
    static FINISHED: RefCell<Vec<(SpanRecord, bool)>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for an active span: records the span into the
/// [`SpanStore`] on drop, and (for the trace root) triggers the
/// tail-sampling decision.
#[must_use = "a span guard records its span when dropped"]
pub struct SpanGuard {
    /// The guarded span's id; `None` for a disabled (no-op) guard.
    id: Option<u64>,
}

impl SpanGuard {
    /// A guard that records nothing (tracing off / no context).
    pub fn disabled() -> SpanGuard {
        SpanGuard { id: None }
    }

    /// Whether this guard records a real span.
    pub fn is_active(&self) -> bool {
        self.id.is_some()
    }

    fn with_span(&self, f: impl FnOnce(&mut ActiveSpan)) {
        let Some(id) = self.id else { return };
        STACK.with(|s| {
            if let Some(a) = s.borrow_mut().iter_mut().rev().find(|a| a.id == id) {
                f(a);
            }
        });
    }

    /// Attaches a key/value annotation to this span.
    pub fn annotate(&self, key: &'static str, value: AnnValue) {
        self.with_span(|a| {
            if a.annotations.len() < MAX_ANNOTATIONS {
                a.annotations.push((key, value));
            }
        });
    }

    /// Marks the span failed with an error kind.
    pub fn fail(&self, kind: &'static str) {
        self.with_span(|a| a.error = Some(kind));
    }

    /// Renames the span once its outcome is known (e.g. a reply-cache
    /// admission becoming `replycache.hit`).
    pub fn rename(&self, name: &'static str) {
        self.with_span(|a| a.name = name);
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(id) = self.id.take() else { return };
        // Pop until our own frame comes off: a panic that unwound past
        // inner guards leaves their frames behind; record those too so
        // the stack cannot wedge.
        loop {
            let (popped, emptied) = STACK.with(|s| {
                let mut st = s.borrow_mut();
                let p = st.pop();
                let emptied = st.is_empty();
                (p, emptied)
            });
            match popped {
                Some(a) => {
                    let ours = a.id == id;
                    submit(a);
                    // Batch the store handoff: spans buffer thread-
                    // locally while outer frames are still open and hit
                    // the global store lock once per thread-bottom span
                    // (once per call on each side of the wire), not
                    // once per span.
                    if emptied {
                        flush_finished();
                    }
                    if ours {
                        return;
                    }
                }
                None => {
                    flush_finished();
                    return;
                }
            }
        }
    }
}

fn submit(a: ActiveSpan) {
    let rec = SpanRecord {
        trace: TraceId(a.trace),
        id: SpanId(a.id),
        parent: a.parent.map(SpanId),
        name: a.name,
        start_us: a.start_us,
        end_us: crate::uptime_micros(),
        error: a.error,
        call_id: a.call_id,
        annotations: a.annotations,
    };
    FINISHED.with(|f| f.borrow_mut().push((rec, a.local_root)));
}

/// Drains this thread's finished-span buffer into the store under a
/// single lock. Children buffered before their root pop first, so by
/// the time a root record completes its trace the subtree is in place.
fn flush_finished() {
    FINISHED.with(|f| {
        let mut recs = f.borrow_mut();
        if !recs.is_empty() {
            store().record_drain(&mut recs);
        }
    });
}

fn push_span(
    trace: u128,
    parent: Option<u64>,
    name: &'static str,
    local_root: bool,
    call_id: Option<CallId>,
) -> SpanGuard {
    let id = next_id();
    STACK.with(|s| {
        s.borrow_mut().push(ActiveSpan {
            trace,
            id,
            parent,
            name,
            start_us: crate::uptime_micros(),
            local_root,
            call_id,
            error: None,
            annotations: Vec::new(),
        })
    });
    SpanGuard { id: Some(id) }
}

/// Opens the root span of a fresh trace — one per *logical* client
/// call. When this guard drops, the trace completes and tail-sampling
/// decides whether to keep it.
pub fn client_root(name: &'static str, call_id: Option<CallId>) -> SpanGuard {
    if !tracing() {
        return SpanGuard::disabled();
    }
    push_span(next_trace_id(), None, name, true, call_id)
}

/// Opens a child of the innermost active span; a no-op guard when no
/// context is active or tracing is off.
pub fn child(name: &'static str) -> SpanGuard {
    if !tracing() {
        return SpanGuard::disabled();
    }
    let Some((trace, parent)) = STACK.with(|s| s.borrow().last().map(|a| (a.trace, a.id))) else {
        return SpanGuard::disabled();
    };
    push_span(trace, Some(parent), name, false, None)
}

/// Opens a server-side span joining a wire-propagated context. With no
/// context (untraced caller, malformed header) this is a no-op guard —
/// a trace that will never complete here must not pin pending memory.
pub fn server_root(
    name: &'static str,
    ctx: Option<TraceContext>,
    call_id: Option<CallId>,
) -> SpanGuard {
    if !tracing() {
        return SpanGuard::disabled();
    }
    let Some(ctx) = ctx else {
        return SpanGuard::disabled();
    };
    push_span(ctx.trace.0, Some(ctx.parent.0), name, false, call_id)
}

/// The context to propagate on the wire: the innermost active span
/// becomes the remote spans' parent. `None` when nothing is active.
pub fn current() -> Option<TraceContext> {
    if !tracing() {
        return None;
    }
    STACK.with(|s| {
        s.borrow().last().map(|a| TraceContext {
            trace: TraceId(a.trace),
            parent: SpanId(a.id),
            flags: FLAG_SAMPLED,
        })
    })
}

/// Annotates the innermost active span, if any — the hook used by
/// fault injection and [`crate::trace::event`], which do not hold a
/// guard.
pub fn annotate_active(key: &'static str, value: AnnValue) {
    if !tracing() {
        return;
    }
    STACK.with(|s| {
        if let Some(a) = s.borrow_mut().last_mut() {
            if a.annotations.len() < MAX_ANNOTATIONS {
                a.annotations.push((key, value));
            }
        }
    });
}

/// Whether a span is active on this thread (cheap pre-check for
/// callers that would otherwise build an `Owned` annotation value).
pub fn has_active() -> bool {
    tracing() && STACK.with(|s| !s.borrow().is_empty())
}

// ---------------------------------------------------------------------------
// SpanStore: bounded buffering + tail-based sampling
// ---------------------------------------------------------------------------

/// Cap on traces buffering toward completion; beyond it the oldest
/// pending trace is evicted (covers remote roots that never complete
/// locally).
pub const MAX_PENDING_TRACES: usize = 512;

/// Cap on retained (sampled) traces; beyond it the oldest retained
/// trace is recycled.
pub const MAX_RETAINED_TRACES: usize = 64;

/// Cap on spans per trace; non-root spans beyond it are counted but
/// dropped.
pub const MAX_SPANS_PER_TRACE: usize = 256;

/// Default random tail-sample probability.
pub const DEFAULT_RANDOM_SAMPLE: f64 = 0.01;

/// Default slow threshold: keep traces ≥ this factor × recent p99.
pub const DEFAULT_SLOW_FACTOR: f64 = 2.0;

/// Always keep the first few completed traces, so a fresh process has
/// something to show before the sampler has statistics.
const WARMUP_KEEP: u64 = 16;

/// Root-duration window for the p99 estimate.
const DURATION_WINDOW: usize = 128;

/// Recompute the cached p99 every this many completions.
const P99_REFRESH: u64 = 32;

/// Freelist cap for recycled span buffers.
const FREELIST_CAP: usize = 32;

struct PendingTrace {
    spans: Vec<SpanRecord>,
    truncated: u32,
}

/// A tail-sampled trace retained for inspection.
#[derive(Debug, Clone)]
pub struct RetainedTrace {
    /// The trace id.
    pub trace: TraceId,
    /// Every recorded span, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Spans dropped by the per-trace cap.
    pub truncated: u32,
    /// Why the sampler kept it: `error`, `retried`, `fault`, `slow`,
    /// `warmup`, or `random`.
    pub reason: &'static str,
    /// Root-span duration in microseconds.
    pub root_duration_us: u64,
    /// Completion tick ([`crate::uptime_micros`]).
    pub completed_us: u64,
}

impl RetainedTrace {
    /// The root span (parent `None`), if present.
    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.parent.is_none())
    }
}

struct StoreInner {
    pending: HashMap<u128, PendingTrace>,
    pending_order: VecDeque<u128>,
    retained: VecDeque<RetainedTrace>,
    freelist: Vec<Vec<SpanRecord>>,
    durations_us: VecDeque<u64>,
    scratch: Vec<u64>,
    completions: u64,
    cached_p99_us: u64,
    rng: XorShift64,
    random_sample: f64,
    slow_factor: f64,
    /// Histogram bucket (ns scale) → most recent retained exemplar
    /// `(trace, root duration ns)`.
    exemplars: HashMap<usize, (u128, u64)>,
}

/// Counts of the store's current contents, for bound checks and the
/// REPL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Traces still buffering toward completion.
    pub pending_traces: usize,
    /// Spans held by pending traces.
    pub pending_spans: usize,
    /// Retained (tail-sampled) traces.
    pub retained_traces: usize,
    /// Spans held by retained traces.
    pub retained_spans: usize,
    /// Root completions seen since start/clear.
    pub completions: u64,
}

/// The bounded per-process span store.
pub struct SpanStore {
    inner: Mutex<StoreInner>,
}

impl SpanStore {
    fn new() -> SpanStore {
        SpanStore {
            inner: Mutex::new(StoreInner {
                pending: HashMap::new(),
                pending_order: VecDeque::new(),
                retained: VecDeque::new(),
                freelist: Vec::new(),
                durations_us: VecDeque::with_capacity(DURATION_WINDOW),
                scratch: Vec::new(),
                completions: 0,
                cached_p99_us: 0,
                rng: XorShift64::seed_from_u64(0x7261_6365_5f73_7472), // "race_str"
                random_sample: DEFAULT_RANDOM_SAMPLE,
                slow_factor: DEFAULT_SLOW_FACTOR,
                exemplars: HashMap::new(),
            }),
        }
    }

    /// Drains a thread's finished-span buffer under one lock, keeping
    /// the buffer's capacity for reuse. Records arrive children-first,
    /// so a root's completion sees its whole local subtree.
    fn record_drain(&self, recs: &mut Vec<(SpanRecord, bool)>) {
        let mut g = self.inner.lock();
        for (rec, complete_root) in recs.drain(..) {
            record_locked(&mut g, rec, complete_root);
        }
    }

    /// Records a completed span; `complete_root` marks the trace-root
    /// record whose arrival finishes the trace.
    pub fn record(&self, rec: SpanRecord, complete_root: bool) {
        let mut g = self.inner.lock();
        record_locked(&mut g, rec, complete_root);
    }

    /// Sets the random tail-sample probability (tests pin it to 1.0
    /// for determinism, 0.0 to isolate the rule-based reasons).
    pub fn set_random_sample(&self, p: f64) {
        self.inner.lock().random_sample = p.clamp(0.0, 1.0);
    }

    /// Sets the slow-trace threshold factor relative to the recent p99.
    pub fn set_slow_factor(&self, f: f64) {
        self.inner.lock().slow_factor = f.max(1.0);
    }

    /// Drops all state (tests).
    pub fn clear(&self) {
        let mut g = self.inner.lock();
        g.pending.clear();
        g.pending_order.clear();
        g.retained.clear();
        g.freelist.clear();
        g.durations_us.clear();
        g.completions = 0;
        g.cached_p99_us = 0;
        g.exemplars.clear();
    }

    /// Clones the retained traces, oldest first.
    pub fn retained(&self) -> Vec<RetainedTrace> {
        self.inner.lock().retained.iter().cloned().collect()
    }

    /// Finds a retained trace by trace-id hex prefix or call-id text
    /// prefix (most recent match wins).
    pub fn find(&self, prefix: &str) -> Option<RetainedTrace> {
        let prefix = prefix.to_ascii_lowercase();
        let g = self.inner.lock();
        g.retained
            .iter()
            .rev()
            .find(|t| {
                if format!("{}", t.trace).starts_with(&prefix) {
                    return true;
                }
                t.spans.iter().any(|s| {
                    s.call_id.is_some_and(|id| {
                        let mut buf = [0u8; crate::callid::TEXT_LEN];
                        id.write_text(&mut buf).starts_with(prefix.as_str())
                    })
                })
            })
            .cloned()
    }

    /// Current content counts.
    pub fn stats(&self) -> StoreStats {
        let g = self.inner.lock();
        StoreStats {
            pending_traces: g.pending.len(),
            pending_spans: g.pending.values().map(|p| p.spans.len()).sum(),
            retained_traces: g.retained.len(),
            retained_spans: g.retained.iter().map(|t| t.spans.len()).sum(),
            completions: g.completions,
        }
    }

    /// Approximate heap footprint of buffered spans, for the
    /// allocation-budget gate.
    pub fn approx_bytes(&self) -> usize {
        let g = self.inner.lock();
        let span = std::mem::size_of::<SpanRecord>();
        let ann = std::mem::size_of::<(&'static str, AnnValue)>();
        let vec_bytes = |v: &Vec<SpanRecord>| {
            v.capacity() * span
                + v.iter()
                    .map(|s| {
                        s.annotations.capacity() * ann
                            + s.annotations
                                .iter()
                                .map(|(_, a)| match a {
                                    AnnValue::Owned(s) => s.capacity(),
                                    _ => 0,
                                })
                                .sum::<usize>()
                    })
                    .sum::<usize>()
        };
        g.pending
            .values()
            .map(|p| vec_bytes(&p.spans))
            .sum::<usize>()
            + g.retained
                .iter()
                .map(|t| vec_bytes(&t.spans))
                .sum::<usize>()
            + g.freelist.iter().map(vec_bytes).sum::<usize>()
            + g.durations_us.capacity() * 8
            + g.exemplars.len() * (8 + 24)
    }

    /// The most recent retained exemplar per latency bucket, as
    /// `(bucket upper bound ns, trace id, duration ns)` sorted by
    /// bucket.
    pub fn exemplars(&self) -> Vec<(u64, TraceId, u64)> {
        let g = self.inner.lock();
        let mut out: Vec<(u64, TraceId, u64)> = g
            .exemplars
            .iter()
            .map(|(&idx, &(trace, ns))| (crate::metrics::bucket_bounds(idx).1, TraceId(trace), ns))
            .collect();
        out.sort_by_key(|e| e.0);
        out
    }
}

fn record_locked(g: &mut StoreInner, rec: SpanRecord, complete_root: bool) {
    let trace = rec.trace.0;
    if !g.pending.contains_key(&trace) {
        if g.pending.len() >= MAX_PENDING_TRACES {
            // Evict the oldest pending trace (a remote root that
            // never completed here, or an abandoned trace).
            while let Some(old) = g.pending_order.pop_front() {
                if let Some(p) = g.pending.remove(&old) {
                    recycle(g, p.spans);
                    break;
                }
            }
        }
        let spans = g.freelist.pop().unwrap_or_default();
        g.pending.insert(
            trace,
            PendingTrace {
                spans,
                truncated: 0,
            },
        );
        g.pending_order.push_back(trace);
    }
    let entry = g.pending.get_mut(&trace).expect("just inserted");
    if entry.spans.len() >= MAX_SPANS_PER_TRACE && !complete_root {
        entry.truncated += 1;
    } else {
        entry.spans.push(rec);
    }
    if complete_root {
        complete_locked(g, trace);
    }
}

fn recycle(g: &mut StoreInner, mut spans: Vec<SpanRecord>) {
    if g.freelist.len() < FREELIST_CAP {
        spans.clear();
        g.freelist.push(spans);
    }
}

fn complete_locked(g: &mut StoreInner, trace: u128) {
    let Some(p) = g.pending.remove(&trace) else {
        return;
    };
    if let Some(pos) = g.pending_order.iter().position(|&t| t == trace) {
        g.pending_order.remove(pos);
    }
    g.completions += 1;
    let root_duration_us = p
        .spans
        .iter()
        .find(|s| s.parent.is_none())
        .map(|s| s.duration_us())
        .unwrap_or(0);

    if g.durations_us.len() >= DURATION_WINDOW {
        g.durations_us.pop_front();
    }
    g.durations_us.push_back(root_duration_us);
    if g.completions.is_multiple_of(P99_REFRESH) {
        let mut scratch = std::mem::take(&mut g.scratch);
        scratch.clear();
        scratch.extend(g.durations_us.iter().copied());
        scratch.sort_unstable();
        let idx = (scratch.len().saturating_sub(1)) * 99 / 100;
        g.cached_p99_us = scratch[idx];
        g.scratch = scratch;
    }

    match retention_reason(g, &p.spans, root_duration_us) {
        Some(reason) => {
            let completed_us = crate::uptime_micros();
            let ns = root_duration_us.saturating_mul(1000);
            g.exemplars
                .insert(crate::metrics::bucket_index(ns), (trace, ns));
            g.retained.push_back(RetainedTrace {
                trace: TraceId(trace),
                spans: p.spans,
                truncated: p.truncated,
                reason,
                root_duration_us,
                completed_us,
            });
            if g.retained.len() > MAX_RETAINED_TRACES {
                if let Some(old) = g.retained.pop_front() {
                    recycle(g, old.spans);
                }
            }
        }
        None => recycle(g, p.spans),
    }
}

fn retention_reason(
    g: &mut StoreInner,
    spans: &[SpanRecord],
    root_duration_us: u64,
) -> Option<&'static str> {
    if spans.iter().any(|s| s.error.is_some()) {
        return Some("error");
    }
    if spans
        .iter()
        .any(|s| s.annotations.iter().any(|(k, _)| *k == "attempts"))
    {
        return Some("retried");
    }
    if spans
        .iter()
        .any(|s| s.annotations.iter().any(|(k, _)| *k == "fault_injected"))
    {
        return Some("fault");
    }
    if g.completions > u64::try_from(DURATION_WINDOW / 2).expect("small const")
        && g.cached_p99_us > 0
        && (root_duration_us as f64) >= g.slow_factor * g.cached_p99_us as f64
    {
        return Some("slow");
    }
    if g.completions <= WARMUP_KEEP {
        return Some("warmup");
    }
    if g.random_sample > 0.0 && g.rng.gen_bool(g.random_sample) {
        return Some("random");
    }
    None
}

/// The process-global span store.
pub fn store() -> &'static SpanStore {
    static STORE: OnceLock<SpanStore> = OnceLock::new();
    STORE.get_or_init(SpanStore::new)
}

// ---------------------------------------------------------------------------
// Rendering: waterfall text, JSON, exemplars
// ---------------------------------------------------------------------------

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// JSON list of retained traces (newest last):
/// `{"traces":[{...summary...}]}`.
pub fn traces_json() -> String {
    let traces = store().retained();
    let mut out = String::with_capacity(64 + traces.len() * 128);
    out.push_str("{\"traces\":[");
    for (i, t) in traces.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let root = t.root();
        out.push_str(&format!(
            "{{\"id\":\"{}\",\"root\":\"{}\",\"reason\":\"{}\",\
             \"duration_us\":{},\"spans\":{},\"completed_us\":{}}}",
            t.trace,
            root.map(|r| r.name).unwrap_or("?"),
            t.reason,
            t.root_duration_us,
            t.spans.len(),
            t.completed_us
        ));
    }
    out.push_str("]}");
    out
}

/// Full JSON form of one retained trace, spans in start order.
pub fn trace_json(t: &RetainedTrace) -> String {
    let mut out = String::with_capacity(128 + t.spans.len() * 192);
    out.push_str(&format!(
        "{{\"id\":\"{}\",\"reason\":\"{}\",\"duration_us\":{},\
         \"truncated\":{},\"spans\":[",
        t.trace, t.reason, t.root_duration_us, t.truncated
    ));
    let mut spans: Vec<&SpanRecord> = t.spans.iter().collect();
    spans.sort_by_key(|s| (s.start_us, s.id.0));
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":\"{}\",\"parent\":{},\"name\":\"{}\",\
             \"start_us\":{},\"end_us\":{},\"error\":{},\"call_id\":{},\
             \"annotations\":[",
            s.id,
            s.parent
                .map(|p| format!("\"{p}\""))
                .unwrap_or_else(|| "null".into()),
            s.name,
            s.start_us,
            s.end_us,
            s.error
                .map(|e| format!("\"{e}\""))
                .unwrap_or_else(|| "null".into()),
            s.call_id
                .map(|c| {
                    let mut buf = [0u8; crate::callid::TEXT_LEN];
                    format!("\"{}\"", c.write_text(&mut buf))
                })
                .unwrap_or_else(|| "null".into()),
        ));
        for (j, (k, v)) in s.annotations.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("[\"");
            json_escape(k, &mut out);
            out.push_str("\",\"");
            json_escape(&v.to_string(), &mut out);
            out.push_str("\"]");
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Renders a retained trace as an indented text waterfall: one line
/// per span, children nested under parents, offsets relative to the
/// earliest span.
pub fn render_waterfall(t: &RetainedTrace) -> String {
    let mut out = format!(
        "trace {}  reason={}  duration={}us  spans={}{}\n",
        t.trace,
        t.reason,
        t.root_duration_us,
        t.spans.len(),
        if t.truncated > 0 {
            format!(" (+{} truncated)", t.truncated)
        } else {
            String::new()
        }
    );
    let base = t.spans.iter().map(|s| s.start_us).min().unwrap_or(0);
    let index: HashMap<u64, usize> = t
        .spans
        .iter()
        .enumerate()
        .map(|(i, s)| (s.id.0, i))
        .collect();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); t.spans.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in t.spans.iter().enumerate() {
        match s.parent.and_then(|p| index.get(&p.0).copied()) {
            Some(pi) if pi != i => children[pi].push(i),
            _ => roots.push(i),
        }
    }
    let by_start = |spans: &[SpanRecord], v: &mut Vec<usize>| {
        v.sort_by_key(|&i| (spans[i].start_us, spans[i].id.0));
    };
    by_start(&t.spans, &mut roots);
    for c in &mut children {
        by_start(&t.spans, c);
    }
    fn emit(
        out: &mut String,
        t: &RetainedTrace,
        children: &[Vec<usize>],
        base: u64,
        i: usize,
        depth: usize,
    ) {
        let s = &t.spans[i];
        out.push_str(&format!(
            "{:>8} +{:<7}{}{}",
            format!("{}us", s.start_us.saturating_sub(base)),
            format!("{}us", s.duration_us()),
            "  ".repeat(depth + 1),
            s.name
        ));
        if let Some(id) = s.call_id {
            let mut buf = [0u8; crate::callid::TEXT_LEN];
            out.push_str(&format!(" call={}", id.write_text(&mut buf)));
        }
        if let Some(e) = s.error {
            out.push_str(&format!(" ERROR={e}"));
        }
        for (k, v) in &s.annotations {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        if depth < MAX_SPANS_PER_TRACE {
            for &c in &children[i] {
                emit(out, t, children, base, c, depth + 1);
            }
        }
    }
    for &r in &roots {
        emit(&mut out, t, &children, base, r, 0);
    }
    out
}

/// Renders histogram→trace exemplar links as Prometheus comment lines,
/// appended to the `/metrics` text so a slow bucket points at a
/// retained trace that landed in it.
pub fn render_exemplars() -> String {
    let ex = store().exemplars();
    if ex.is_empty() {
        return String::new();
    }
    let mut out =
        String::from("# Tail-sampled trace exemplars (root-span duration bucket -> trace id)\n");
    for (le_ns, trace, ns) in ex {
        out.push_str(&format!(
            "# exemplar{{le_ns=\"{le_ns}\"}} trace={trace} duration_ns={ns}\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests share the process-global store and sampler knobs; run the
    /// store-touching ones serially.
    fn store_guard() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn context_text_round_trips() {
        let ctx = TraceContext {
            trace: TraceId(0x0123_4567_89ab_cdef_fedc_ba98_7654_3210),
            parent: SpanId(0xdead_beef_1234_5678),
            flags: 0x01,
        };
        let mut buf = [0u8; TEXT_LEN];
        let text = ctx.write_text(&mut buf);
        assert_eq!(text.len(), TEXT_LEN);
        assert_eq!(text, "0123456789abcdeffedcba9876543210:deadbeef12345678:01");
        assert_eq!(TraceContext::parse_text(text), Some(ctx));
    }

    #[test]
    fn context_wire_round_trips() {
        let ctx = TraceContext {
            trace: TraceId(42),
            parent: SpanId(7),
            flags: 0xff,
        };
        assert_eq!(TraceContext::from_wire(&ctx.to_wire()), Some(ctx));
    }

    #[test]
    fn malformed_contexts_parse_as_absent() {
        assert_eq!(TraceContext::parse_text(""), None);
        assert_eq!(TraceContext::parse_text("not-a-context"), None);
        // Zero ids are rejected.
        let zero = TraceContext {
            trace: TraceId(0),
            parent: SpanId(0),
            flags: 0,
        };
        let mut buf = [0u8; TEXT_LEN];
        assert_eq!(TraceContext::parse_text(zero.write_text(&mut buf)), None);
        assert_eq!(TraceContext::from_wire(&[0u8; WIRE_LEN]), None);
        assert_eq!(TraceContext::from_wire(&[1u8; 7]), None);
        // Flipping a hex digit to garbage fails cleanly.
        let ctx = TraceContext {
            trace: TraceId(99),
            parent: SpanId(3),
            flags: 1,
        };
        let text = ctx.write_text(&mut buf).replace('0', "!");
        assert_eq!(TraceContext::parse_text(&text), None);
    }

    #[test]
    fn ids_are_distinct_and_nonzero() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert_ne!(next_id(), 0);
    }

    #[test]
    fn spans_nest_and_propagate_context() {
        let _g = store_guard();
        let root = client_root("client.call", Some(CallId::fresh()));
        assert!(root.is_active());
        let outer = current().expect("context under root");
        {
            let c = child("dispatch");
            assert!(c.is_active());
            let inner = current().expect("context under child");
            assert_eq!(inner.trace, outer.trace);
            assert_ne!(inner.parent, outer.parent);
        }
        // Child popped; context is the root again.
        assert_eq!(current().expect("root context"), outer);
        drop(root);
        assert_eq!(current(), None);
    }

    #[test]
    fn server_root_without_context_is_noop() {
        let _g = store_guard();
        let g = server_root("server.soap", None, None);
        assert!(!g.is_active());
        assert_eq!(current(), None);
    }

    #[test]
    fn tracing_off_disables_everything() {
        let _g = store_guard();
        set_tracing(false);
        assert!(!client_root("client.call", None).is_active());
        assert!(!child("x").is_active());
        assert_eq!(current(), None);
        set_tracing(true);
    }

    #[test]
    fn error_traces_are_retained_with_parenting() {
        let _g = store_guard();
        store().clear();
        store().set_random_sample(0.0);
        let root = client_root("client.call", Some(CallId::fresh()));
        let root_ctx = current().expect("ctx");
        {
            let attempt = child("client.attempt");
            attempt.annotate("attempt", AnnValue::U64(1));
            attempt.fail("transport");
        }
        root.fail("transport");
        drop(root);
        let traces = store().retained();
        let t = traces
            .iter()
            .find(|t| t.trace == root_ctx.trace)
            .expect("errored trace retained");
        assert_eq!(t.reason, "error");
        let root_span = t.root().expect("root span");
        assert_eq!(root_span.name, "client.call");
        let attempt = t
            .spans
            .iter()
            .find(|s| s.name == "client.attempt")
            .expect("attempt span");
        assert_eq!(attempt.parent, Some(root_span.id));
        assert_eq!(attempt.error, Some("transport"));
        assert_eq!(attempt.annotations, vec![("attempt", AnnValue::U64(1))]);
        store().set_random_sample(DEFAULT_RANDOM_SAMPLE);
    }

    #[test]
    fn server_spans_join_the_wire_context() {
        let _g = store_guard();
        store().clear();
        store().set_random_sample(1.0);
        let id = CallId::fresh();
        let root = client_root("client.call", Some(id));
        let ctx = current().expect("ctx");
        // Another thread plays the server: joins via the wire context.
        let handle = std::thread::spawn(move || {
            let s = server_root("server.soap", Some(ctx), Some(id));
            assert!(s.is_active());
            let d = child("dispatch");
            drop(d);
            drop(s);
        });
        handle.join().expect("server thread");
        drop(root);
        let t = store().find(&format!("{}", ctx.trace)).expect("retained");
        let server = t
            .spans
            .iter()
            .find(|s| s.name == "server.soap")
            .expect("server span");
        assert_eq!(server.parent, Some(ctx.parent));
        let dispatch = t
            .spans
            .iter()
            .find(|s| s.name == "dispatch")
            .expect("dispatch span");
        assert_eq!(dispatch.parent, Some(server.id));
        // Lookup by call-id prefix works too.
        let mut buf = [0u8; crate::callid::TEXT_LEN];
        let prefix = &id.write_text(&mut buf)[..8];
        assert_eq!(store().find(prefix).expect("by call id").trace, t.trace);
        store().set_random_sample(DEFAULT_RANDOM_SAMPLE);
    }

    #[test]
    fn store_stays_bounded() {
        let _g = store_guard();
        store().clear();
        store().set_random_sample(1.0); // worst case: keep everything
        for _ in 0..1000 {
            let root = client_root("client.call", None);
            let c = child("dispatch");
            drop(c);
            drop(root);
        }
        let stats = store().stats();
        assert_eq!(stats.pending_traces, 0);
        assert!(stats.retained_traces <= MAX_RETAINED_TRACES);
        assert!(
            store().approx_bytes() < 1_000_000,
            "{}",
            store().approx_bytes()
        );
        store().set_random_sample(DEFAULT_RANDOM_SAMPLE);
    }

    #[test]
    fn incomplete_traces_are_evicted_not_leaked() {
        let _g = store_guard();
        store().clear();
        // Server-side spans whose client root lives elsewhere: the
        // pending cap must evict them instead of growing forever.
        for i in 0..(MAX_PENDING_TRACES + 50) {
            let ctx = TraceContext {
                trace: TraceId(1 + i as u128),
                parent: SpanId(99),
                flags: 1,
            };
            let s = server_root("server.soap", Some(ctx), None);
            drop(s);
        }
        let stats = store().stats();
        assert!(stats.pending_traces <= MAX_PENDING_TRACES, "{stats:?}");
        store().clear();
    }

    #[test]
    fn renderers_produce_waterfall_and_json() {
        let _g = store_guard();
        store().clear();
        store().set_random_sample(1.0);
        let root = client_root("client.call", Some(CallId::fresh()));
        root.annotate("method", AnnValue::Owned("echo".into()));
        let ctx = current().expect("ctx");
        {
            let a = child("client.attempt");
            a.annotate("attempt", AnnValue::U64(1));
        }
        drop(root);
        let t = store().find(&format!("{}", ctx.trace)).expect("retained");
        let wf = render_waterfall(&t);
        assert!(wf.contains("client.call"), "{wf}");
        assert!(wf.contains("client.attempt"), "{wf}");
        assert!(wf.contains("method=echo"), "{wf}");
        let list = traces_json();
        assert!(list.starts_with("{\"traces\":["), "{list}");
        assert!(list.contains(&format!("{}", ctx.trace)), "{list}");
        let detail = trace_json(&t);
        assert!(
            detail.contains("\"annotations\":[[\"attempt\",\"1\"]]"),
            "{detail}"
        );
        assert!(!render_exemplars().is_empty());
        store().set_random_sample(DEFAULT_RANDOM_SAMPLE);
    }

    #[test]
    fn guard_rename_and_annotate_target_their_own_span() {
        let _g = store_guard();
        store().clear();
        store().set_random_sample(1.0);
        let root = client_root("client.call", None);
        let ctx = current().expect("ctx");
        let admit = child("replycache.admit");
        {
            let _inner = child("dispatch");
            // Even with a deeper span active, the admit guard reaches
            // its own frame.
            admit.rename("replycache.hit");
            admit.annotate("reply_replayed", AnnValue::U64(1));
            root.annotate("attempts", AnnValue::U64(2));
        }
        drop(admit);
        drop(root);
        let t = store().find(&format!("{}", ctx.trace)).expect("retained");
        assert_eq!(t.reason, "retried");
        assert!(t.spans.iter().any(|s| s.name == "replycache.hit"));
        assert!(!t.spans.iter().any(|s| s.name == "replycache.admit"));
        store().set_random_sample(DEFAULT_RANDOM_SAMPLE);
    }
}
