//! HTTP/1.1 request and response types with parsing and serialization.
//!
//! The subset implemented is what the SOAP-over-HTTP binding and the
//! Interface Server need: `GET`/`POST`/`HEAD`, `Content-Length` framing,
//! case-insensitive headers, and `Connection: close`/`keep-alive`.
//! Chunked transfer encoding is not implemented (Axis-era SOAP stacks used
//! content-length framing).

use std::fmt;
use std::io::{BufRead, IoSlice, Write};
use std::sync::Arc;

use crate::error::HttpError;

/// HTTP request method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
    /// `HEAD`
    Head,
}

impl Method {
    fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Head => "HEAD",
        }
    }

    fn parse(s: &str) -> Result<Method, HttpError> {
        match s {
            "GET" => Ok(Method::Get),
            "POST" => Ok(Method::Post),
            "HEAD" => Ok(Method::Head),
            other => Err(HttpError::Malformed(format!("unsupported method {other}"))),
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// HTTP status code with its reason phrase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Status(pub u16);

impl Status {
    /// 200
    pub const OK: Status = Status(200);
    /// 304 — conditional GET answered from the client's cache.
    pub const NOT_MODIFIED: Status = Status(304);
    /// 400
    pub const BAD_REQUEST: Status = Status(400);
    /// 404
    pub const NOT_FOUND: Status = Status(404);
    /// 408 — the peer took too long to produce a complete request
    /// (slow-loris defense).
    pub const REQUEST_TIMEOUT: Status = Status(408);
    /// 500 — the SOAP 1.1 binding requires faults to use this status.
    pub const INTERNAL_SERVER_ERROR: Status = Status(500);
    /// 503
    pub const SERVICE_UNAVAILABLE: Status = Status(503);

    /// Canonical reason phrase.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            304 => "Not Modified",
            400 => "Bad Request",
            404 => "Not Found",
            408 => "Request Timeout",
            413 => "Content Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

/// An ordered, case-insensitive header map.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// Creates an empty header map.
    pub fn new() -> Self {
        Headers::default()
    }

    /// Returns the first value of `name` (case-insensitive).
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Appends or replaces the header `name`.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self
            .entries
            .iter_mut()
            .find(|(k, _)| k.eq_ignore_ascii_case(&name))
        {
            slot.1 = value;
        } else {
            self.entries.push((name, value));
        }
    }

    /// All headers in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of headers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Parse-time bounds on inbound messages (slow-loris / memory-bomb
/// defense). The limits cap the header section as a whole, each header
/// line, and the declared body length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum bytes for the request line plus all header lines.
    pub max_header_bytes: usize,
    /// Maximum accepted `Content-Length`.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_header_bytes: 64 * 1024,
            max_body_bytes: 64 * 1024 * 1024,
        }
    }
}

/// An HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    method: Method,
    path: String,
    headers: Headers,
    body: Vec<u8>,
}

impl Request {
    /// Creates a `GET` request for `path`.
    pub fn get(path: impl Into<String>) -> Request {
        Request {
            method: Method::Get,
            path: path.into(),
            headers: Headers::new(),
            body: Vec::new(),
        }
    }

    /// Creates a `HEAD` request for `path`.
    pub fn head(path: impl Into<String>) -> Request {
        Request {
            method: Method::Head,
            path: path.into(),
            headers: Headers::new(),
            body: Vec::new(),
        }
    }

    /// Creates a `POST` request carrying `body`.
    pub fn post(path: impl Into<String>, body: Vec<u8>, content_type: &str) -> Request {
        let mut headers = Headers::new();
        headers.set("Content-Type", content_type);
        Request {
            method: Method::Post,
            path: path.into(),
            headers,
            body,
        }
    }

    /// Request method.
    pub fn method(&self) -> Method {
        self.method
    }

    /// Request path (starts with `/`).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Header map.
    pub fn headers(&self) -> &Headers {
        &self.headers
    }

    /// Mutable header map.
    pub fn headers_mut(&mut self) -> &mut Headers {
        &mut self.headers
    }

    /// Raw body bytes.
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// Consumes the request, returning the body buffer — callers that
    /// encode into a reusable buffer recover it (capacity intact) after
    /// the request has been sent.
    pub fn into_body(self) -> Vec<u8> {
        self.body
    }

    /// Body decoded as UTF-8 (lossy).
    pub fn body_str(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }

    /// Serializes the request onto `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer. Note that `w` may be a
    /// `&mut` reference to any writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> Result<(), HttpError> {
        let mut head = format!("{} {} HTTP/1.1\r\n", self.method, self.path);
        let mut has_len = false;
        for (k, v) in self.headers.iter() {
            if k.eq_ignore_ascii_case("content-length") {
                has_len = true;
            }
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        if !has_len {
            head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()?;
        Ok(())
    }

    /// Reads one request from `r`.
    ///
    /// Returns `Ok(None)` on a clean EOF before any bytes (the peer closed
    /// a keep-alive connection).
    ///
    /// # Errors
    ///
    /// Returns [`HttpError::Malformed`] on protocol violations and
    /// [`HttpError::UnexpectedEof`] on truncation mid-message.
    pub fn read_from<R: BufRead>(r: &mut R) -> Result<Option<Request>, HttpError> {
        Self::read_from_limited(r, &Limits::default())
    }

    /// Reads one request from `r` under explicit [`Limits`]; the server
    /// uses this with its configured bounds so a hostile peer cannot
    /// grow headers or the body without bound.
    ///
    /// # Errors
    ///
    /// Same as [`Request::read_from`]; exceeding a limit is
    /// [`HttpError::Malformed`].
    pub fn read_from_limited<R: BufRead>(
        r: &mut R,
        limits: &Limits,
    ) -> Result<Option<Request>, HttpError> {
        let mut head_budget = limits.max_header_bytes;
        let line = match read_line_limited(r, &mut head_budget)? {
            None => return Ok(None),
            Some(l) => l,
        };
        let mut parts = line.split_whitespace();
        let method = Method::parse(parts.next().unwrap_or(""))?;
        let path = parts
            .next()
            .ok_or_else(|| HttpError::Malformed("missing request path".into()))?
            .to_string();
        let version = parts.next().unwrap_or("");
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed(format!(
                "bad http version {version:?}"
            )));
        }
        let headers = read_headers_limited(r, &mut head_budget)?;
        let body = read_body(r, &headers, limits.max_body_bytes)?;
        Ok(Some(Request {
            method,
            path,
            headers,
            body,
        }))
    }

    /// Incremental (non-blocking) parse: attempts to extract one
    /// complete request from the front of `buf`.
    ///
    /// Returns `Ok(None)` while the buffer holds only a prefix of a
    /// request — the reactor's connection state machine re-arms its
    /// read interest and calls again when more bytes arrive. On success
    /// the second tuple element is how many bytes of `buf` the request
    /// consumed (the caller drains them; anything after is pipelined).
    ///
    /// # Errors
    ///
    /// [`HttpError::Malformed`] on protocol violations, including a
    /// header section or declared body that exceeds `limits` — unlike
    /// the blocking path, an over-limit prefix is detected as soon as
    /// the bytes are in the buffer.
    pub fn parse_buffered(
        buf: &[u8],
        limits: &Limits,
    ) -> Result<Option<(Request, usize)>, HttpError> {
        // Find the end of the header section.
        let head_cap = limits.max_header_bytes + 4;
        let window = &buf[..buf.len().min(head_cap)];
        let Some(head_end) = find_crlf_crlf(window) else {
            if buf.len() >= head_cap {
                return Err(HttpError::Malformed(
                    "header section exceeds size limit".into(),
                ));
            }
            return Ok(None);
        };
        let head = std::str::from_utf8(&buf[..head_end])
            .map_err(|_| HttpError::Malformed("non-utf8 request head".into()))?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split_whitespace();
        let method = Method::parse(parts.next().unwrap_or(""))?;
        let path = parts
            .next()
            .ok_or_else(|| HttpError::Malformed("missing request path".into()))?
            .to_string();
        let version = parts.next().unwrap_or("");
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed(format!(
                "bad http version {version:?}"
            )));
        }
        let mut headers = Headers::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| HttpError::Malformed(format!("bad header line {line:?}")))?;
            headers.set(name.trim(), value.trim());
        }
        let body_len: usize = match headers.get("Content-Length") {
            None => 0,
            Some(v) => v
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))?,
        };
        if body_len > limits.max_body_bytes {
            return Err(HttpError::Malformed(format!(
                "content-length {body_len} exceeds limit"
            )));
        }
        let total = head_end + 4 + body_len;
        if buf.len() < total {
            return Ok(None);
        }
        let body = buf[head_end + 4..total].to_vec();
        Ok(Some((
            Request {
                method,
                path,
                headers,
                body,
            },
            total,
        )))
    }
}

/// Position of the first `\r\n\r\n` in `buf` (start of the terminator).
fn find_crlf_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response body: owned bytes, or a zero-copy reference-counted slice
/// shared with the producer (the Interface Server publishes WSDL/IDL
/// documents as `Arc<[u8]>` so serving a poll never copies the document).
#[derive(Debug, Clone)]
pub enum Body {
    /// Bytes owned by this response.
    Owned(Vec<u8>),
    /// Bytes shared with the producer; serving clones the `Arc`, not the
    /// buffer.
    Shared(Arc<[u8]>),
}

impl Body {
    /// The body bytes, whatever the representation.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Body::Owned(v) => v,
            Body::Shared(a) => a,
        }
    }
}

impl PartialEq for Body {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Body {}

/// An HTTP/1.1 response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    status: Status,
    headers: Headers,
    body: Body,
}

impl Response {
    /// Creates a response with the given status, body and content type.
    pub fn new(status: Status, body: Vec<u8>, content_type: &str) -> Response {
        let mut headers = Headers::new();
        headers.set("Content-Type", content_type);
        Response {
            status,
            headers,
            body: Body::Owned(body),
        }
    }

    /// Creates a response whose body is shared with the caller — no copy
    /// is made at construction or serialization time.
    pub fn new_shared(status: Status, body: Arc<[u8]>, content_type: &str) -> Response {
        let mut headers = Headers::new();
        headers.set("Content-Type", content_type);
        Response {
            status,
            headers,
            body: Body::Shared(body),
        }
    }

    /// 200 response.
    pub fn ok(body: Vec<u8>, content_type: &str) -> Response {
        Response::new(Status::OK, body, content_type)
    }

    /// 200 response with a zero-copy shared body.
    pub fn ok_shared(body: Arc<[u8]>, content_type: &str) -> Response {
        Response::new_shared(Status::OK, body, content_type)
    }

    /// 404 response with a plain-text body.
    pub fn not_found(msg: &str) -> Response {
        Response::new(Status::NOT_FOUND, msg.as_bytes().to_vec(), "text/plain")
    }

    /// 400 response with a plain-text body.
    pub fn bad_request(msg: &str) -> Response {
        Response::new(Status::BAD_REQUEST, msg.as_bytes().to_vec(), "text/plain")
    }

    /// 503 response advertising when the client should retry — the
    /// load-shedding answer of an overloaded server.
    pub fn unavailable(msg: &str, retry_after: std::time::Duration) -> Response {
        let mut resp = Response::new(
            Status::SERVICE_UNAVAILABLE,
            msg.as_bytes().to_vec(),
            "text/plain",
        );
        resp.set_retry_after(retry_after);
        resp
    }

    /// Sets the `Retry-After` header (rounded up to whole seconds, per
    /// RFC 9110 §10.2.3; sub-second hints ride on the non-standard
    /// `Retry-After-Ms` header which our client prefers when present).
    pub fn set_retry_after(&mut self, after: std::time::Duration) {
        let secs = after.as_secs() + u64::from(after.subsec_nanos() > 0);
        self.headers.set("Retry-After", secs.to_string());
        self.headers
            .set("Retry-After-Ms", after.as_millis().to_string());
    }

    /// The server's retry hint, if any: `Retry-After-Ms` when present,
    /// otherwise `Retry-After` in seconds.
    pub fn retry_after(&self) -> Option<std::time::Duration> {
        if let Some(ms) = self.headers.get("Retry-After-Ms") {
            if let Ok(ms) = ms.parse::<u64>() {
                return Some(std::time::Duration::from_millis(ms));
            }
        }
        self.headers
            .get("Retry-After")
            .and_then(|v| v.parse::<u64>().ok())
            .map(std::time::Duration::from_secs)
    }

    /// Status code.
    pub fn status(&self) -> u16 {
        self.status.0
    }

    /// Header map.
    pub fn headers(&self) -> &Headers {
        &self.headers
    }

    /// Mutable header map.
    pub fn headers_mut(&mut self) -> &mut Headers {
        &mut self.headers
    }

    /// Raw body bytes.
    pub fn body(&self) -> &[u8] {
        self.body.as_slice()
    }

    /// Body decoded as UTF-8 (lossy).
    pub fn body_str(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(self.body.as_slice())
    }

    /// Serializes the response onto `w` (which may be a `&mut` writer).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> Result<(), HttpError> {
        let mut scratch = Vec::with_capacity(256);
        self.write_to_buffered(&mut scratch, &mut w)
    }

    /// Serializes the response onto `w`, assembling the head in the
    /// caller-provided `scratch` buffer (reused across requests by the
    /// server's worker threads) and emitting head + body with one
    /// vectored write instead of per-part writes.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to_buffered<W: Write>(
        &self,
        scratch: &mut Vec<u8>,
        w: &mut W,
    ) -> Result<(), HttpError> {
        let body = self.body.as_slice();
        scratch.clear();
        write!(scratch, "HTTP/1.1 {}\r\n", self.status)?;
        let mut has_len = false;
        for (k, v) in self.headers.iter() {
            if k.eq_ignore_ascii_case("content-length") {
                has_len = true;
            }
            scratch.extend_from_slice(k.as_bytes());
            scratch.extend_from_slice(b": ");
            scratch.extend_from_slice(v.as_bytes());
            scratch.extend_from_slice(b"\r\n");
        }
        if !has_len {
            write!(scratch, "Content-Length: {}\r\n", body.len())?;
        }
        scratch.extend_from_slice(b"\r\n");
        write_all_vectored(w, scratch, body)?;
        w.flush()?;
        Ok(())
    }

    /// Serializes the response head (status line, headers, a
    /// `Content-Length` if absent, and the blank line) into `head` and
    /// returns the body — the reactor's write state machine drains the
    /// two buffers through a nonblocking fd, tracking its own offset
    /// across partial writes.
    pub(crate) fn into_write_parts(self, head: &mut Vec<u8>) -> Body {
        head.clear();
        let body_len = self.body.as_slice().len();
        write!(head, "HTTP/1.1 {}\r\n", self.status).expect("vec write");
        let mut has_len = false;
        for (k, v) in self.headers.iter() {
            if k.eq_ignore_ascii_case("content-length") {
                has_len = true;
            }
            head.extend_from_slice(k.as_bytes());
            head.extend_from_slice(b": ");
            head.extend_from_slice(v.as_bytes());
            head.extend_from_slice(b"\r\n");
        }
        if !has_len {
            write!(head, "Content-Length: {body_len}\r\n").expect("vec write");
        }
        head.extend_from_slice(b"\r\n");
        self.body
    }

    /// Reads one response from `r` (which may be a `&mut` reader).
    ///
    /// # Errors
    ///
    /// Returns [`HttpError::Malformed`] on protocol violations and
    /// [`HttpError::UnexpectedEof`] on truncation.
    pub fn read_from<R: BufRead>(r: &mut R) -> Result<Response, HttpError> {
        Self::read_from_inner(r, false)
    }

    /// Reads a response to a `HEAD` request: headers only, no body even
    /// when `Content-Length` is present (RFC 9110 §9.3.2).
    ///
    /// # Errors
    ///
    /// Same as [`Response::read_from`].
    pub fn read_head_from<R: BufRead>(r: &mut R) -> Result<Response, HttpError> {
        Self::read_from_inner(r, true)
    }

    fn read_from_inner<R: BufRead>(r: &mut R, head: bool) -> Result<Response, HttpError> {
        let line = read_line(r)?.ok_or(HttpError::UnexpectedEof)?;
        let mut parts = line.splitn(3, ' ');
        let version = parts.next().unwrap_or("");
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed(format!(
                "bad http version {version:?}"
            )));
        }
        let code: u16 = parts
            .next()
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| HttpError::Malformed("bad status code".into()))?;
        let headers = read_headers(r)?;
        let body = if head {
            Vec::new()
        } else {
            read_body(r, &headers, Limits::default().max_body_bytes)?
        };
        Ok(Response {
            status: Status(code),
            headers,
            body: Body::Owned(body),
        })
    }
}

/// Writes `head` then `body` as one logical message, preferring a single
/// vectored write (one syscall on TCP, one wakeup on the in-memory
/// transport) and falling back to a loop on partial writes.
fn write_all_vectored<W: Write>(w: &mut W, head: &[u8], body: &[u8]) -> std::io::Result<()> {
    let total = head.len() + body.len();
    let mut written = 0usize;
    while written < total {
        let n = if written < head.len() {
            w.write_vectored(&[IoSlice::new(&head[written..]), IoSlice::new(body)])?
        } else {
            w.write(&body[written - head.len()..])?
        };
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                "failed to write whole http message",
            ));
        }
        written += n;
    }
    Ok(())
}

fn read_line<R: BufRead>(r: &mut R) -> Result<Option<String>, HttpError> {
    // Responses are read from servers we chose to talk to; the default
    // header budget is ample and bounds a misbehaving peer all the same.
    let mut budget = Limits::default().max_header_bytes;
    read_line_limited(r, &mut budget)
}

/// Reads one CRLF-terminated line without ever buffering more than the
/// remaining `budget` — the reader is capped with `Take`, so a peer
/// dribbling an endless header line cannot grow memory unboundedly.
fn read_line_limited<R: BufRead>(
    r: &mut R,
    budget: &mut usize,
) -> Result<Option<String>, HttpError> {
    let mut line = String::new();
    // UFCS so `Self = &mut R`: the cap wraps a reborrow, not the reader.
    let mut capped = std::io::Read::take(&mut *r, *budget as u64 + 1);
    let n = capped.read_line(&mut line).map_err(HttpError::from)?;
    if n == 0 {
        return Ok(None);
    }
    if n > *budget {
        return Err(HttpError::Malformed(
            "header section exceeds size limit".into(),
        ));
    }
    *budget -= n;
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

fn read_headers<R: BufRead>(r: &mut R) -> Result<Headers, HttpError> {
    let mut budget = Limits::default().max_header_bytes;
    read_headers_limited(r, &mut budget)
}

fn read_headers_limited<R: BufRead>(r: &mut R, budget: &mut usize) -> Result<Headers, HttpError> {
    let mut headers = Headers::new();
    loop {
        let line = read_line_limited(r, budget)?.ok_or(HttpError::UnexpectedEof)?;
        if line.is_empty() {
            return Ok(headers);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line {line:?}")))?;
        headers.set(name.trim(), value.trim());
    }
}

fn read_body<R: BufRead>(
    r: &mut R,
    headers: &Headers,
    max_body: usize,
) -> Result<Vec<u8>, HttpError> {
    let len: usize = match headers.get("Content-Length") {
        None => return Ok(Vec::new()),
        Some(v) => v
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))?,
    };
    if len > max_body {
        return Err(HttpError::Malformed(format!(
            "content-length {len} exceeds limit"
        )));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(HttpError::from)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn roundtrip_request(req: &Request) -> Request {
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        Request::read_from(&mut BufReader::new(&buf[..]))
            .unwrap()
            .unwrap()
    }

    fn roundtrip_response(resp: &Response) -> Response {
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        Response::read_from(&mut BufReader::new(&buf[..])).unwrap()
    }

    #[test]
    fn request_roundtrip() {
        let mut req = Request::post("/svc", b"<x/>".to_vec(), "text/xml");
        req.headers_mut().set("SOAPAction", "\"op\"");
        let got = roundtrip_request(&req);
        assert_eq!(got.method(), Method::Post);
        assert_eq!(got.path(), "/svc");
        assert_eq!(got.body(), b"<x/>");
        assert_eq!(got.headers().get("soapaction"), Some("\"op\""));
        assert_eq!(got.headers().get("content-type"), Some("text/xml"));
    }

    #[test]
    fn get_request_roundtrip() {
        let got = roundtrip_request(&Request::get("/a/b?c=1"));
        assert_eq!(got.method(), Method::Get);
        assert_eq!(got.path(), "/a/b?c=1");
        assert!(got.body().is_empty());
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::ok(b"payload".to_vec(), "text/plain");
        let got = roundtrip_response(&resp);
        assert_eq!(got.status(), 200);
        assert_eq!(got.body_str(), "payload");
    }

    #[test]
    fn fault_statuses() {
        assert_eq!(
            roundtrip_response(&Response::not_found("gone")).status(),
            404
        );
        assert_eq!(
            roundtrip_response(&Response::new(
                Status::INTERNAL_SERVER_ERROR,
                b"fault".to_vec(),
                "text/xml"
            ))
            .status(),
            500
        );
    }

    #[test]
    fn headers_case_insensitive_and_replace() {
        let mut h = Headers::new();
        h.set("Content-Type", "a");
        h.set("content-type", "b");
        assert_eq!(h.len(), 1);
        assert_eq!(h.get("CONTENT-TYPE"), Some("b"));
        assert!(h.get("missing").is_none());
    }

    #[test]
    fn eof_before_request_is_none() {
        let mut r = BufReader::new(&b""[..]);
        assert!(Request::read_from(&mut r).unwrap().is_none());
    }

    #[test]
    fn truncated_body_is_eof_error() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        let err = Request::read_from(&mut BufReader::new(&raw[..])).unwrap_err();
        assert!(matches!(err, HttpError::UnexpectedEof));
    }

    #[test]
    fn malformed_inputs_rejected() {
        for raw in [
            &b"BREW / HTTP/1.1\r\n\r\n"[..],
            &b"GET /\r\n\r\n"[..],
            &b"GET / SPDY/9\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"[..],
        ] {
            assert!(
                Request::read_from(&mut BufReader::new(raw)).is_err(),
                "{}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn oversized_content_length_rejected() {
        let raw = b"GET / HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n";
        assert!(Request::read_from(&mut BufReader::new(&raw[..])).is_err());
    }

    #[test]
    fn response_status_display() {
        assert_eq!(Status::OK.to_string(), "200 OK");
        assert_eq!(Status(418).to_string(), "418 Unknown");
    }

    #[test]
    fn header_section_limit_enforced() {
        let limits = Limits {
            max_header_bytes: 64,
            max_body_bytes: 1024,
        };
        // A single endless header line is cut off at the budget, not
        // buffered unboundedly.
        let raw = format!("GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n", "a".repeat(1024));
        let err =
            Request::read_from_limited(&mut BufReader::new(raw.as_bytes()), &limits).unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)));
        // Many small headers exceed the shared budget the same way.
        let raw = format!("GET / HTTP/1.1\r\n{}\r\n", "X-H: v\r\n".repeat(32));
        let err =
            Request::read_from_limited(&mut BufReader::new(raw.as_bytes()), &limits).unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)));
        // A request inside the budget still parses.
        let raw = b"GET / HTTP/1.1\r\nHost: x\r\n\r\n";
        assert!(
            Request::read_from_limited(&mut BufReader::new(&raw[..]), &limits)
                .unwrap()
                .is_some()
        );
    }

    #[test]
    fn body_limit_enforced() {
        let limits = Limits {
            max_header_bytes: 1024,
            max_body_bytes: 4,
        };
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let err = Request::read_from_limited(&mut BufReader::new(&raw[..]), &limits).unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)));
    }

    #[test]
    fn retry_after_roundtrip() {
        let resp = Response::unavailable("busy", std::time::Duration::from_millis(1500));
        assert_eq!(resp.status(), 503);
        // Whole-second header rounds up; the ms hint is exact.
        assert_eq!(resp.headers().get("Retry-After"), Some("2"));
        let got = roundtrip_response(&resp);
        assert_eq!(
            got.retry_after(),
            Some(std::time::Duration::from_millis(1500))
        );
        // Without any header there is no hint.
        assert_eq!(Response::ok(Vec::new(), "text/plain").retry_after(), None);
    }

    #[test]
    fn parse_buffered_incremental() {
        let limits = Limits::default();
        let mut raw = Vec::new();
        Request::post("/svc", b"hello".to_vec(), "text/plain")
            .write_to(&mut raw)
            .unwrap();
        // Every strict prefix is incomplete; the full buffer parses and
        // reports its exact length consumed.
        for cut in [0, 1, raw.len() / 2, raw.len() - 1] {
            assert!(
                Request::parse_buffered(&raw[..cut], &limits)
                    .unwrap()
                    .is_none(),
                "prefix of {cut} bytes must be incomplete"
            );
        }
        let (req, consumed) = Request::parse_buffered(&raw, &limits).unwrap().unwrap();
        assert_eq!(consumed, raw.len());
        assert_eq!(req.method(), Method::Post);
        assert_eq!(req.path(), "/svc");
        assert_eq!(req.body(), b"hello");
        // Pipelined bytes after the request are left unconsumed.
        let mut two = raw.clone();
        two.extend_from_slice(&raw);
        let (_, consumed) = Request::parse_buffered(&two, &limits).unwrap().unwrap();
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn parse_buffered_enforces_limits() {
        let limits = Limits {
            max_header_bytes: 64,
            max_body_bytes: 8,
        };
        // Oversized headers are rejected as soon as the prefix exceeds
        // the cap, even with no terminator in sight.
        let raw = format!("GET / HTTP/1.1\r\nX-Big: {}", "a".repeat(256));
        assert!(Request::parse_buffered(raw.as_bytes(), &limits).is_err());
        // A declared body over the cap is rejected at header time.
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n";
        assert!(Request::parse_buffered(raw, &limits).is_err());
        // Malformed request lines fail immediately.
        assert!(Request::parse_buffered(b"BREW / HTTP/1.1\r\n\r\n", &limits).is_err());
    }

    #[test]
    fn into_write_parts_matches_write_to() {
        let resp = Response::ok(b"payload".to_vec(), "text/plain");
        let mut direct = Vec::new();
        resp.write_to(&mut direct).unwrap();
        let mut head = Vec::new();
        let body = Response::ok(b"payload".to_vec(), "text/plain").into_write_parts(&mut head);
        let mut assembled = head.clone();
        assembled.extend_from_slice(body.as_slice());
        assert_eq!(assembled, direct);
    }

    #[test]
    fn binary_body_roundtrip() {
        let body: Vec<u8> = (0..=255).collect();
        let got = roundtrip_request(&Request::post(
            "/bin",
            body.clone(),
            "application/octet-stream",
        ));
        assert_eq!(got.body(), &body[..]);
    }
}
