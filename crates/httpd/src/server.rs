//! A threaded HTTP server dispatching requests to a [`Handler`].
//!
//! Every server also exposes the process-wide metrics registry at
//! `GET /metrics` in Prometheus text format, before user handlers see
//! the request.

use std::io::BufReader;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::{self, JoinHandle};

use obs::metrics::{Counter, Histogram};
use obs::sync::Mutex;

use crate::error::HttpError;
use crate::message::{Request, Response};
use crate::transport::{Addr, Listener, Stream};

/// Metric handles resolved once; the per-request path is atomic ops only.
struct HttpMetrics {
    connections: Arc<Counter>,
    requests: Arc<Counter>,
    request_ns: Arc<Histogram>,
    responses_2xx: Arc<Counter>,
    responses_4xx: Arc<Counter>,
    responses_5xx: Arc<Counter>,
}

fn http_metrics() -> &'static HttpMetrics {
    static METRICS: OnceLock<HttpMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = obs::registry();
        HttpMetrics {
            connections: r.counter("http_connections_total"),
            requests: r.counter("http_requests_total"),
            request_ns: r.histogram("http_request_ns"),
            responses_2xx: r.counter_with("http_responses_total", &[("status", "2xx")]),
            responses_4xx: r.counter_with("http_responses_total", &[("status", "4xx")]),
            responses_5xx: r.counter_with("http_responses_total", &[("status", "5xx")]),
        }
    })
}

/// Application logic plugged into an [`HttpServer`].
///
/// Handlers are shared across connection threads, so implementations must
/// be `Send + Sync` and perform their own interior locking — the paper's
/// call handlers are "completely multithreaded" (§5.4) and this mirrors
/// that design.
pub trait Handler: Send + Sync + 'static {
    /// Produces the response for `req`.
    fn handle(&self, req: &Request) -> Response;
}

impl<F> Handler for F
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    fn handle(&self, req: &Request) -> Response {
        self(req)
    }
}

/// A running HTTP server.
///
/// One thread accepts connections; each connection is served on its own
/// thread with HTTP keep-alive until the peer closes or sends
/// `Connection: close`. Dropping the server shuts it down.
///
/// # Examples
///
/// See the [crate-level documentation](crate).
#[derive(Debug)]
pub struct HttpServer {
    addr: Addr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    listener: Arc<Listener>,
}

impl HttpServer {
    /// Binds `addr` (e.g. `tcp://127.0.0.1:0` or `mem://my-service`) and
    /// starts serving `handler`.
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be parsed or bound.
    pub fn bind<H: Handler>(addr: &str, handler: H) -> Result<HttpServer, HttpError> {
        let listener = Arc::new(Listener::bind(addr)?);
        let local = listener.local_addr();
        let shutdown = Arc::new(AtomicBool::new(false));
        let handler = Arc::new(handler);

        let accept_listener = listener.clone();
        let accept_shutdown = shutdown.clone();
        let accept_thread = thread::Builder::new()
            .name(format!("httpd-accept-{local}"))
            .spawn(move || {
                while !accept_shutdown.load(Ordering::SeqCst) {
                    let stream = match accept_listener.accept() {
                        Ok(s) => s,
                        Err(_) => break,
                    };
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let handler = handler.clone();
                    let conn_shutdown = accept_shutdown.clone();
                    let _ = thread::Builder::new()
                        .name("httpd-conn".into())
                        .spawn(move || serve_connection(stream, handler, conn_shutdown));
                }
            })
            .expect("spawn accept thread");

        Ok(HttpServer {
            addr: local,
            shutdown,
            accept_thread: Mutex::new(Some(accept_thread)),
            listener,
        })
    }

    /// The bound address, e.g. `tcp://127.0.0.1:41234`.
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// Base URL clients can connect to (same scheme syntax accepted by
    /// [`crate::HttpClient`]).
    pub fn base_url(&self) -> String {
        self.addr.to_string()
    }

    /// Stops accepting connections and wakes the accept thread. Existing
    /// connection threads finish their in-flight request and exit at the
    /// next keep-alive read.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.listener.close();
        if let Some(t) = self.accept_thread.lock().take() {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(stream: Stream, handler: Arc<dyn Handler>, shutdown: Arc<AtomicBool>) {
    let metrics = http_metrics();
    metrics.connections.inc();
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut writer = write_half;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let req = match Request::read_from(&mut reader) {
            Ok(Some(r)) => r,
            Ok(None) => return, // peer closed keep-alive connection
            Err(HttpError::UnexpectedEof) => return,
            Err(_) => {
                obs::registry()
                    .counter("http_malformed_requests_total")
                    .inc();
                let _ = Response::bad_request("malformed request").write_to(&mut writer);
                return;
            }
        };
        let close = req
            .headers()
            .get("Connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        // The built-in observability endpoint: answered here so every
        // server (SOAP, CORBA interface docs, static baselines) exposes
        // it without handler cooperation. Not counted as app traffic.
        let mut resp = if req.method() == crate::message::Method::Get && req.path() == "/metrics" {
            Response::ok(
                obs::registry().snapshot().render_prometheus().into_bytes(),
                "text/plain; version=0.0.4",
            )
        } else {
            metrics.requests.inc();
            let span = obs::trace::Span::timed(metrics.request_ns.clone());
            obs::trace::verbose_event(
                "httpd",
                "request",
                format!("{} {}", req.method(), req.path()),
            );
            let resp = handler.handle(&req);
            span.finish();
            match resp.status() {
                200..=299 => metrics.responses_2xx.inc(),
                400..=499 => metrics.responses_4xx.inc(),
                500..=599 => metrics.responses_5xx.inc(),
                _ => {}
            }
            resp
        };
        if close {
            resp.headers_mut().set("Connection", "close");
        }
        if resp.write_to(&mut writer).is_err() {
            return;
        }
        if close {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use crate::message::Status;

    fn echo_handler(req: &Request) -> Response {
        Response::ok(
            format!("{} {}", req.method(), req.path()).into_bytes(),
            "text/plain",
        )
    }

    #[test]
    fn serves_get_over_mem() {
        let server = HttpServer::bind("mem://srv-get", echo_handler).unwrap();
        let resp = HttpClient::new()
            .get(&format!("{}/x", server.base_url()))
            .unwrap();
        assert_eq!(resp.status(), 200);
        assert_eq!(resp.body_str(), "GET /x");
        server.shutdown();
    }

    #[test]
    fn serves_post_over_tcp() {
        let server = HttpServer::bind("tcp://127.0.0.1:0", |req: &Request| {
            Response::ok(req.body().to_vec(), "application/octet-stream")
        })
        .unwrap();
        let url = format!("{}/echo", server.base_url());
        let resp = HttpClient::new()
            .post(&url, b"abc123".to_vec(), "text/plain")
            .unwrap();
        assert_eq!(resp.body(), b"abc123");
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let server = Arc::new(HttpServer::bind("mem://srv-conc", echo_handler).unwrap());
        let mut threads = Vec::new();
        for i in 0..8 {
            let base = server.base_url();
            threads.push(thread::spawn(move || {
                let resp = HttpClient::new().get(&format!("{base}/t{i}")).unwrap();
                assert_eq!(resp.body_str(), format!("GET /t{i}"));
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn keep_alive_reuses_connection() {
        let server = HttpServer::bind("mem://srv-ka", echo_handler).unwrap();
        let mut conn = HttpClient::new().connect(&server.base_url()).unwrap();
        for i in 0..3 {
            let resp = conn.send(&Request::get(format!("/k{i}"))).unwrap();
            assert_eq!(resp.body_str(), format!("GET /k{i}"));
        }
        server.shutdown();
    }

    #[test]
    fn handler_error_status_propagates() {
        let server = HttpServer::bind("mem://srv-err", |_req: &Request| {
            Response::new(Status::SERVICE_UNAVAILABLE, b"down".to_vec(), "text/plain")
        })
        .unwrap();
        let resp = HttpClient::new().get(&server.base_url()).unwrap();
        assert_eq!(resp.status(), 503);
        server.shutdown();
    }

    #[test]
    fn shutdown_releases_mem_name() {
        let server = HttpServer::bind("mem://srv-release", echo_handler).unwrap();
        server.shutdown();
        let server2 = HttpServer::bind("mem://srv-release", echo_handler).unwrap();
        server2.shutdown();
    }

    #[test]
    fn metrics_endpoint_served_builtin() {
        let server = HttpServer::bind("mem://srv-metrics", echo_handler).unwrap();
        // App traffic shows up in the built-in endpoint…
        let resp = HttpClient::new()
            .get(&format!("{}/app", server.base_url()))
            .unwrap();
        assert_eq!(resp.status(), 200);
        let metrics = HttpClient::new()
            .get(&format!("{}/metrics", server.base_url()))
            .unwrap();
        assert_eq!(metrics.status(), 200);
        let text = metrics.body_str().to_string();
        assert!(text.contains("http_requests_total"), "{text}");
        assert!(text.contains("http_request_ns_count"), "{text}");
        // …and the handler never saw /metrics (echo would 200 with a body
        // of "GET /metrics"; instead we got the exposition format).
        assert!(!text.contains("GET /metrics"));
        server.shutdown();
    }

    #[test]
    fn connect_after_shutdown_refused() {
        let server = HttpServer::bind("mem://srv-dead", echo_handler).unwrap();
        server.shutdown();
        assert!(HttpClient::new().get("mem://srv-dead").is_err());
    }
}
