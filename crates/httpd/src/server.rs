//! A pooled HTTP server dispatching requests to a [`Handler`].
//!
//! Connections are served by a **bounded worker pool**: one thread
//! accepts, pushing accepted streams onto a bounded queue drained by a
//! fixed set of worker threads. When the queue is full the server sheds
//! load with `503 Service Unavailable` instead of spawning unbounded
//! threads — backpressure is observable through the
//! `http_queue_depth{server=...}` gauge and the
//! `http_rejected_total{server=...}` counter.
//!
//! Every server also exposes the process-wide metrics registry at
//! `GET /metrics` in Prometheus text format, before user handlers see
//! the request.

use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, BufReader};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use obs::metrics::{Counter, Gauge, Histogram};
use obs::sync::{Condvar, Mutex};

use crate::error::HttpError;
use crate::message::{Limits, Request, Response, Status};
use crate::transport::{Addr, Listener, Stream};

/// Metric handles resolved once; the per-request path is atomic ops only.
pub(crate) struct HttpMetrics {
    pub(crate) connections: Arc<Counter>,
    pub(crate) requests: Arc<Counter>,
    pub(crate) request_ns: Arc<Histogram>,
    pub(crate) responses_2xx: Arc<Counter>,
    pub(crate) responses_4xx: Arc<Counter>,
    pub(crate) responses_5xx: Arc<Counter>,
}

pub(crate) fn http_metrics() -> &'static HttpMetrics {
    static METRICS: OnceLock<HttpMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = obs::registry();
        HttpMetrics {
            connections: r.counter("http_connections_total"),
            requests: r.counter("http_requests_total"),
            request_ns: r.histogram("http_request_ns"),
            responses_2xx: r.counter_with("http_responses_total", &[("status", "2xx")]),
            responses_4xx: r.counter_with("http_responses_total", &[("status", "4xx")]),
            responses_5xx: r.counter_with("http_responses_total", &[("status", "5xx")]),
        }
    })
}

/// Application logic plugged into an [`HttpServer`].
///
/// Handlers are shared across worker threads, so implementations must
/// be `Send + Sync` and perform their own interior locking — the paper's
/// call handlers are "completely multithreaded" (§5.4) and this mirrors
/// that design.
pub trait Handler: Send + Sync + 'static {
    /// Produces the response for `req`.
    fn handle(&self, req: &Request) -> Response;
}

impl<F> Handler for F
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    fn handle(&self, req: &Request) -> Response {
        self(req)
    }
}

/// Per-server drain gate and in-flight accounting, shared by both
/// engines: every request passes through it on its way to the handler.
///
/// Planned reconfiguration (shard migration, rolling restart) needs two
/// things from an endpoint: an exact count of requests currently inside
/// the handler — so the operator can detect quiescence à la
/// Matevska-Meyer instead of guessing — and a way to refuse *new* work
/// with a retryable 503 + `Retry-After` while the in-flight requests
/// run to completion. The admission order (increment, then check the
/// drain flag, SeqCst both sides) guarantees that once a drainer has
/// set the flag and observed `in_flight() == 0`, no request can slip
/// past it into the handler.
#[derive(Debug, Default)]
pub struct ServerGate {
    in_flight: AtomicU64,
    draining: AtomicBool,
    retry_after_ms: AtomicU64,
}

impl ServerGate {
    /// Requests currently executing inside the handler.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Starts refusing new requests with 503 + `retry_after`; requests
    /// already inside the handler run to completion.
    pub fn begin_drain(&self, retry_after: Duration) {
        self.retry_after_ms
            .store(retry_after.as_millis() as u64, Ordering::SeqCst);
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Resumes normal admission.
    pub fn end_drain(&self) {
        self.draining.store(false, Ordering::SeqCst);
    }

    /// Whether the gate is currently refusing new requests.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

/// Wraps the application handler with the server's [`ServerGate`].
struct GatedHandler {
    inner: Arc<dyn Handler>,
    gate: Arc<ServerGate>,
}

impl Handler for GatedHandler {
    fn handle(&self, req: &Request) -> Response {
        // Increment *before* checking the flag: with SeqCst, a drainer
        // that stores the flag and then reads a zero count knows no
        // admission can still be racing toward the handler.
        self.gate.in_flight.fetch_add(1, Ordering::SeqCst);
        let out = if self.gate.draining.load(Ordering::SeqCst) {
            Response::unavailable(
                "server draining",
                Duration::from_millis(self.gate.retry_after_ms.load(Ordering::SeqCst)),
            )
        } else {
            self.inner.handle(req)
        };
        self.gate.in_flight.fetch_sub(1, Ordering::SeqCst);
        out
    }
}

/// How long a worker waits for the next request on an idle keep-alive
/// connection before considering yielding it back to the accept queue
/// (see [`serve_connection`]). Bounds the extra latency a request can
/// see when connections outnumber workers.
const IDLE_POLL: Duration = Duration::from_millis(10);

/// Sizing and resilience policy of an [`HttpServer`]'s worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Number of worker threads serving connections. Idle keep-alive
    /// connections are rotated back into the queue under pressure, so
    /// more connections than workers can stay open simultaneously.
    pub workers: usize,
    /// Maximum accepted-but-unserved connections; beyond this the accept
    /// thread answers `503` and closes (load shedding).
    pub queue_depth: usize,
    /// How long a worker waits for a complete request once the first
    /// byte has arrived (slow-loris defense). `None` waits forever.
    pub request_read_timeout: Option<Duration>,
    /// Cap on the request line plus headers.
    pub max_header_bytes: usize,
    /// Cap on the declared request body length.
    pub max_body_bytes: usize,
    /// Maximum time a connection may sit in the accept queue before a
    /// worker picks it up; older entries are answered `503` +
    /// `Retry-After` instead of stalling. `None` never sheds on age.
    pub queue_deadline: Option<Duration>,
    /// The retry hint advertised on every load-shedding `503`.
    pub retry_after: Duration,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        let workers = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 8);
        PoolConfig {
            workers,
            queue_depth: 64,
            request_read_timeout: Some(Duration::from_secs(30)),
            max_header_bytes: 64 * 1024,
            max_body_bytes: 64 * 1024 * 1024,
            queue_deadline: None,
            retry_after: Duration::from_secs(1),
        }
    }
}

impl PoolConfig {
    /// Production-leaning defaults for servers facing untrusted or
    /// chaos-injected peers: a tight request deadline, bounded headers
    /// and bodies, and age-based queue shedding.
    pub fn hardened() -> PoolConfig {
        PoolConfig {
            request_read_timeout: Some(Duration::from_secs(10)),
            max_body_bytes: 8 * 1024 * 1024,
            queue_deadline: Some(Duration::from_secs(5)),
            ..PoolConfig::default()
        }
    }

    fn limits(&self) -> Limits {
        Limits {
            max_header_bytes: self.max_header_bytes,
            max_body_bytes: self.max_body_bytes,
        }
    }
}

/// State shared between the accept thread, the workers, and `shutdown`.
struct ServerShared {
    shutdown: AtomicBool,
    /// Accepted connections with their enqueue time, so workers can shed
    /// entries that outlived the configured queue deadline.
    queue: Mutex<std::collections::VecDeque<(Stream, Instant)>>,
    queue_cond: Condvar,
    cfg: PoolConfig,
    handler: Arc<dyn Handler>,
    /// Current accept-queue occupancy, labelled by server address.
    queue_depth: Arc<Gauge>,
    /// Connections shed with 503 because the queue was full.
    rejected: Arc<Counter>,
    /// Connections shed with 503 because they waited in the queue longer
    /// than the configured deadline.
    deadline_shed: Arc<Counter>,
    /// Requests dropped because the peer did not complete them within
    /// the request read timeout (slow-loris defense).
    request_timeouts: Arc<Counter>,
    /// Write-half clones of every live connection, so shutdown can wake
    /// workers blocked in a keep-alive read (no leaked threads).
    conns: Mutex<HashMap<u64, Stream>>,
    next_conn_id: AtomicU64,
}

impl ServerShared {
    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// The threaded engine: a bounded worker pool serving blocking streams.
/// Kept for `mem://` transports (no fd to register with the reactor)
/// and as the `HTTPD_THREADED_TCP=1` escape hatch for A/B comparison.
pub(crate) struct PooledServer {
    addr: Addr,
    shared: Arc<ServerShared>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    listener: Arc<Listener>,
}

impl fmt::Debug for PooledServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PooledServer")
            .field("addr", &self.addr)
            .field("workers", &self.shared.cfg.workers)
            .field("queue_depth", &self.shared.cfg.queue_depth)
            .finish_non_exhaustive()
    }
}

impl PooledServer {
    fn bind_with(
        addr: &str,
        handler: Arc<dyn Handler>,
        cfg: PoolConfig,
    ) -> Result<PooledServer, HttpError> {
        let listener = Arc::new(Listener::bind(addr)?);
        let local = listener.local_addr();
        let server_label = local.to_string();
        let r = obs::registry();
        let shared = Arc::new(ServerShared {
            shutdown: AtomicBool::new(false),
            queue: Mutex::new(std::collections::VecDeque::with_capacity(cfg.queue_depth)),
            queue_cond: Condvar::new(),
            cfg,
            handler,
            queue_depth: r.gauge_with("http_queue_depth", &[("server", &server_label)]),
            rejected: r.counter_with("http_rejected_total", &[("server", &server_label)]),
            deadline_shed: r.counter_with("http_deadline_shed_total", &[("server", &server_label)]),
            request_timeouts: r.counter("http_request_timeouts_total"),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
        });

        let mut workers = Vec::with_capacity(cfg.workers);
        for i in 0..cfg.workers {
            let shared = shared.clone();
            workers.push(
                thread::Builder::new()
                    .name(format!("httpd-worker-{local}-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread"),
            );
        }

        let accept_listener = listener.clone();
        let accept_shared = shared.clone();
        let accept_thread = thread::Builder::new()
            .name(format!("httpd-accept-{local}"))
            .spawn(move || accept_loop(&accept_listener, &accept_shared))
            .expect("spawn accept thread");

        Ok(PooledServer {
            addr: local,
            shared,
            accept_thread: Mutex::new(Some(accept_thread)),
            workers: Mutex::new(workers),
            listener,
        })
    }

    fn addr(&self) -> &Addr {
        &self.addr
    }

    fn pool_config(&self) -> PoolConfig {
        self.shared.cfg
    }

    /// Stops the server promptly and leak-free: closes the listener,
    /// sheds queued connections, shuts every live connection so workers
    /// blocked in a keep-alive read wake up, and joins the accept thread
    /// plus all workers.
    fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.listener.close();
        if let Some(t) = self.accept_thread.lock().take() {
            let _ = t.join();
        }
        // Connections still queued were never served: close them.
        {
            let mut queue = self.shared.queue.lock();
            for (stream, _) in queue.drain(..) {
                stream.shutdown();
            }
            self.shared.queue_depth.set(0);
        }
        // Wake workers blocked in keep-alive reads.
        for (_, stream) in self.shared.conns.lock().iter() {
            stream.shutdown();
        }
        self.shared.queue_cond.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock());
        for w in workers {
            let _ = w.join();
        }
    }
}

impl Drop for PooledServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Which engine serves a bound address.
enum Engine {
    /// Threaded worker pool (all `mem://` servers; `tcp://` only when
    /// forced via `HTTPD_THREADED_TCP=1`).
    Pooled(PooledServer),
    /// Event-driven epoll reactor (the default for `tcp://`): parked
    /// keep-alive connections cost one registered fd, not a thread.
    #[cfg(target_os = "linux")]
    Reactor(crate::rserver::ReactorServer),
}

/// A running HTTP server.
///
/// `tcp://` addresses are served by the event-driven reactor engine: a
/// fixed set of epoll shards multiplexes every connection, and handlers
/// run on a bounded dispatch pool. `mem://` addresses (and `tcp://`
/// with `HTTPD_THREADED_TCP=1`) use the threaded worker-pool engine.
/// Either way the public surface is identical — bounded concurrency,
/// 503 load shedding with `Retry-After`, keep-alive, built-in
/// `/metrics` and `/traces` endpoints — and dropping the server shuts
/// it down, joining every thread it spawned.
///
/// # Examples
///
/// See the [crate-level documentation](crate).
pub struct HttpServer {
    inner: Engine,
    gate: Arc<ServerGate>,
}

impl fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Engine::Pooled(s) => s.fmt(f),
            #[cfg(target_os = "linux")]
            Engine::Reactor(s) => s.fmt(f),
        }
    }
}

impl HttpServer {
    /// Binds `addr` (e.g. `tcp://127.0.0.1:0` or `mem://my-service`) and
    /// starts serving `handler` with the default [`PoolConfig`].
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be parsed or bound.
    pub fn bind<H: Handler>(addr: &str, handler: H) -> Result<HttpServer, HttpError> {
        Self::bind_with(addr, handler, PoolConfig::default())
    }

    /// Binds `addr` with an explicit pool configuration.
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be parsed or bound, or `cfg` has zero
    /// workers or queue slots.
    pub fn bind_with<H: Handler>(
        addr: &str,
        handler: H,
        cfg: PoolConfig,
    ) -> Result<HttpServer, HttpError> {
        if cfg.workers == 0 || cfg.queue_depth == 0 {
            return Err(HttpError::BadAddress(format!(
                "pool config must be non-zero: {cfg:?}"
            )));
        }
        let gate = Arc::new(ServerGate::default());
        let handler: Arc<dyn Handler> = Arc::new(GatedHandler {
            inner: Arc::new(handler),
            gate: gate.clone(),
        });
        #[cfg(target_os = "linux")]
        if matches!(Addr::parse(addr)?, Addr::Tcp(_))
            && std::env::var_os("HTTPD_THREADED_TCP").is_none()
        {
            let server = crate::rserver::ReactorServer::bind(addr, handler, cfg)?;
            return Ok(HttpServer {
                inner: Engine::Reactor(server),
                gate,
            });
        }
        Ok(HttpServer {
            inner: Engine::Pooled(PooledServer::bind_with(addr, handler, cfg)?),
            gate,
        })
    }

    /// The server's drain gate (in-flight accounting + drain-mode 503s),
    /// engine-independent.
    pub fn gate(&self) -> &Arc<ServerGate> {
        &self.gate
    }

    /// Requests currently executing inside the application handler.
    pub fn in_flight(&self) -> u64 {
        self.gate.in_flight()
    }

    /// The bound address, e.g. `tcp://127.0.0.1:41234`.
    pub fn addr(&self) -> &Addr {
        match &self.inner {
            Engine::Pooled(s) => s.addr(),
            #[cfg(target_os = "linux")]
            Engine::Reactor(s) => s.addr(),
        }
    }

    /// Base URL clients can connect to (same scheme syntax accepted by
    /// [`crate::HttpClient`]).
    pub fn base_url(&self) -> String {
        self.addr().to_string()
    }

    /// The pool configuration this server runs with.
    pub fn pool_config(&self) -> PoolConfig {
        match &self.inner {
            Engine::Pooled(s) => s.pool_config(),
            #[cfg(target_os = "linux")]
            Engine::Reactor(s) => s.pool_config(),
        }
    }

    /// Stops the server promptly and leak-free: closes the listener,
    /// sweeps every live connection off its engine, and joins every
    /// thread the server spawned. Idempotent.
    pub fn shutdown(&self) {
        match &self.inner {
            Engine::Pooled(s) => s.shutdown(),
            #[cfg(target_os = "linux")]
            Engine::Reactor(s) => s.shutdown(),
        }
    }
}

fn accept_loop(listener: &Listener, shared: &Arc<ServerShared>) {
    while !shared.is_shutdown() {
        let stream = match listener.accept() {
            Ok(s) => s,
            Err(_) => break,
        };
        if shared.is_shutdown() {
            stream.shutdown();
            break;
        }
        let mut queue = shared.queue.lock();
        if queue.len() >= shared.cfg.queue_depth {
            drop(queue);
            // Saturated: shed load instead of queueing unboundedly.
            shared.rejected.inc();
            shed_unavailable(stream, "server busy", shared.cfg.retry_after);
            continue;
        }
        // Counted at accept, not in `serve_connection`: a rotated
        // keep-alive connection re-enters the serve loop many times but
        // is still one connection.
        http_metrics().connections.inc();
        queue.push_back((stream, Instant::now()));
        shared.queue_depth.set(queue.len() as i64);
        drop(queue);
        shared.queue_cond.notify_one();
    }
}

fn worker_loop(shared: &Arc<ServerShared>) {
    // Scratch buffer for response heads, reused across every request
    // this worker serves.
    let mut scratch: Vec<u8> = Vec::with_capacity(512);
    loop {
        let (stream, enqueued_at) = {
            let mut queue = shared.queue.lock();
            loop {
                if let Some(entry) = queue.pop_front() {
                    shared.queue_depth.set(queue.len() as i64);
                    break entry;
                }
                if shared.is_shutdown() {
                    return;
                }
                shared.queue_cond.wait(&mut queue);
            }
        };
        // Entries that outlived the queue deadline are answered with a
        // retryable 503 instead of being served arbitrarily late — the
        // client's budget is better spent on a fresh attempt.
        if let Some(deadline) = shared.cfg.queue_deadline {
            if enqueued_at.elapsed() > deadline {
                shared.deadline_shed.inc();
                shed_unavailable(stream, "request deadline exceeded", shared.cfg.retry_after);
                continue;
            }
        }
        if let Some(idle) = serve_connection(stream, shared, &mut scratch) {
            // The connection yielded while idle: rotate it to the back of
            // the queue so the worker can serve waiting connections. The
            // rotation may briefly exceed `queue_depth`; the overshoot is
            // bounded by the number of live connections.
            let mut queue = shared.queue.lock();
            if shared.is_shutdown() {
                // The shutdown drain already ran; nobody will pop this
                // stream again, so close it here.
                idle.shutdown();
            } else {
                queue.push_back((idle, Instant::now()));
                shared.queue_depth.set(queue.len() as i64);
                drop(queue);
                shared.queue_cond.notify_one();
            }
        }
    }
}

/// Answers `503` with a `Retry-After` hint and closes the connection.
fn shed_unavailable(mut stream: Stream, msg: &str, retry_after: Duration) {
    let mut resp = Response::unavailable(msg, retry_after);
    resp.headers_mut().set("Connection", "close");
    let _ = resp.write_to(&mut stream);
    stream.shutdown();
}

/// Deregisters and closes the connection when the serve loop exits by
/// any path. Closing here is load-bearing: a worker that stops serving
/// a connection without closing it (e.g. it observed the shutdown flag
/// after the registry sweep already ran) would leave the peer's cached
/// keep-alive connection half-alive — writable but never read — and
/// the peer's next request would block forever.
struct ConnGuard<'a> {
    shared: &'a ServerShared,
    id: u64,
    /// Cleared when the connection is being requeued rather than
    /// abandoned: the stream goes back to the accept queue alive, and
    /// the shutdown path covers queued streams via the queue drain.
    close_on_drop: bool,
}

impl ConnGuard<'_> {
    fn release(&mut self) {
        self.close_on_drop = false;
    }
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        if let Some(stream) = self.shared.conns.lock().remove(&self.id) {
            if self.close_on_drop {
                stream.shutdown();
            }
        }
    }
}

/// Serves one connection with keep-alive. Returns `Some(stream)` when
/// the connection went idle while other connections were waiting in the
/// accept queue — the caller rotates it to the back of the queue so a
/// fixed pool of workers can multiplex more keep-alive connections than
/// it has threads (idle peers must not starve new ones).
fn serve_connection(
    stream: Stream,
    shared: &Arc<ServerShared>,
    scratch: &mut Vec<u8>,
) -> Option<Stream> {
    let metrics = http_metrics();
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return None,
    };
    // Register a second clone so shutdown can wake our blocking read.
    let id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
    match stream.try_clone() {
        Ok(s) => {
            shared.conns.lock().insert(id, s);
        }
        Err(_) => return None,
    }
    let mut guard = ConnGuard {
        shared,
        id,
        close_on_drop: true,
    };
    let limits = shared.cfg.limits();
    let mut reader = BufReader::new(stream);
    let mut writer = write_half;
    loop {
        // Idle wait for the next request head, polled with a short
        // timeout: a worker parked on an idle keep-alive connection must
        // yield it when other connections are queued behind it.
        if reader.buffer().is_empty() {
            let _ = reader.get_mut().set_read_timeout(Some(IDLE_POLL));
            loop {
                if shared.is_shutdown() {
                    return None;
                }
                match reader.fill_buf() {
                    Ok(_) => break, // data (or EOF) — let the parser see it
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        if !shared.queue.lock().is_empty() {
                            // Someone is waiting for a worker; hand the
                            // idle stream back for rotation.
                            let _ = reader.get_mut().set_read_timeout(None);
                            guard.release();
                            return Some(reader.into_inner());
                        }
                    }
                    Err(_) => return None,
                }
            }
            // First bytes have arrived: the peer now has a bounded window
            // to deliver the complete request (slow-loris defense).
            let _ = reader
                .get_mut()
                .set_read_timeout(shared.cfg.request_read_timeout);
        }
        let req = match Request::read_from_limited(&mut reader, &limits) {
            Ok(Some(r)) => r,
            Ok(None) => return None, // peer closed keep-alive connection
            Err(HttpError::UnexpectedEof) => return None,
            Err(HttpError::Timeout) => {
                shared.request_timeouts.inc();
                let mut resp = Response::new(
                    Status::REQUEST_TIMEOUT,
                    b"request not completed in time".to_vec(),
                    "text/plain",
                );
                resp.headers_mut().set("Connection", "close");
                let _ = resp.write_to_buffered(scratch, &mut writer);
                return None;
            }
            Err(_) => {
                obs::registry()
                    .counter("http_malformed_requests_total")
                    .inc();
                let _ = Response::bad_request("malformed request")
                    .write_to_buffered(scratch, &mut writer);
                return None;
            }
        };
        let close = req
            .headers()
            .get("Connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        // The built-in observability endpoint: answered here so every
        // server (SOAP, CORBA interface docs, static baselines) exposes
        // it without handler cooperation. Not counted as app traffic.
        let mut resp = if req.method() == crate::message::Method::Get && req.path() == "/metrics" {
            let mut body = obs::registry().snapshot().render_prometheus();
            // Exemplars link histogram buckets to recent tail-sampled
            // trace ids (comment lines, so plain scrapers stay happy).
            body.push_str(&obs::tracectx::render_exemplars());
            Response::ok(body.into_bytes(), "text/plain; version=0.0.4")
        } else if req.method() == crate::message::Method::Get && req.path() == "/traces" {
            Response::ok(
                obs::tracectx::traces_json().into_bytes(),
                "application/json",
            )
        } else if req.method() == crate::message::Method::Get && req.path().starts_with("/traces/")
        {
            let prefix = &req.path()["/traces/".len()..];
            match obs::tracectx::store().find(prefix) {
                Some(t) => Response::ok(
                    obs::tracectx::trace_json(&t).into_bytes(),
                    "application/json",
                ),
                None => Response::new(
                    Status::NOT_FOUND,
                    b"no retained trace matches that prefix\n".to_vec(),
                    "text/plain",
                ),
            }
        } else {
            metrics.requests.inc();
            let span = obs::trace::Span::timed(metrics.request_ns.clone());
            obs::trace::verbose_event(
                "httpd",
                "request",
                format!("{} {}", req.method(), req.path()),
            );
            let resp = shared.handler.handle(&req);
            span.finish();
            match resp.status() {
                200..=299 => metrics.responses_2xx.inc(),
                400..=499 => metrics.responses_4xx.inc(),
                500..=599 => metrics.responses_5xx.inc(),
                _ => {}
            }
            resp
        };
        if close {
            resp.headers_mut().set("Connection", "close");
        }
        if resp.write_to_buffered(scratch, &mut writer).is_err() {
            return None;
        }
        if close {
            return None;
        }
        // Fairness: a busy keep-alive connection must not monopolize a
        // worker while other connections wait in the accept queue — with
        // pooled clients issuing back-to-back requests, the idle poll
        // above never fires and a new connection could starve. Rotate
        // after each response when someone is waiting (only with no
        // pipelined bytes buffered; those would be lost across the hop).
        if reader.buffer().is_empty() && !shared.queue.lock().is_empty() {
            let _ = reader.get_mut().set_read_timeout(None);
            guard.release();
            return Some(reader.into_inner());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use crate::message::Status;
    use std::time::Duration;

    fn echo_handler(req: &Request) -> Response {
        Response::ok(
            format!("{} {}", req.method(), req.path()).into_bytes(),
            "text/plain",
        )
    }

    #[test]
    fn serves_get_over_mem() {
        let server = HttpServer::bind("mem://srv-get", echo_handler).unwrap();
        let resp = HttpClient::new()
            .get(&format!("{}/x", server.base_url()))
            .unwrap();
        assert_eq!(resp.status(), 200);
        assert_eq!(resp.body_str(), "GET /x");
        server.shutdown();
    }

    #[test]
    fn serves_post_over_tcp() {
        let server = HttpServer::bind("tcp://127.0.0.1:0", |req: &Request| {
            Response::ok(req.body().to_vec(), "application/octet-stream")
        })
        .unwrap();
        let url = format!("{}/echo", server.base_url());
        let resp = HttpClient::new()
            .post(&url, b"abc123".to_vec(), "text/plain")
            .unwrap();
        assert_eq!(resp.body(), b"abc123");
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let server = Arc::new(HttpServer::bind("mem://srv-conc", echo_handler).unwrap());
        let mut threads = Vec::new();
        for i in 0..8 {
            let base = server.base_url();
            threads.push(thread::spawn(move || {
                let resp = HttpClient::new().get(&format!("{base}/t{i}")).unwrap();
                assert_eq!(resp.body_str(), format!("GET /t{i}"));
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn keep_alive_reuses_connection() {
        let server = HttpServer::bind("mem://srv-ka", echo_handler).unwrap();
        let mut conn = HttpClient::new().connect(&server.base_url()).unwrap();
        for i in 0..3 {
            let resp = conn.send(&Request::get(format!("/k{i}"))).unwrap();
            assert_eq!(resp.body_str(), format!("GET /k{i}"));
        }
        server.shutdown();
    }

    #[test]
    fn handler_error_status_propagates() {
        let server = HttpServer::bind("mem://srv-err", |_req: &Request| {
            Response::new(Status::SERVICE_UNAVAILABLE, b"down".to_vec(), "text/plain")
        })
        .unwrap();
        let resp = HttpClient::new().get(&server.base_url()).unwrap();
        assert_eq!(resp.status(), 503);
        server.shutdown();
    }

    #[test]
    fn shutdown_releases_mem_name() {
        let server = HttpServer::bind("mem://srv-release", echo_handler).unwrap();
        server.shutdown();
        let server2 = HttpServer::bind("mem://srv-release", echo_handler).unwrap();
        server2.shutdown();
    }

    #[test]
    fn metrics_endpoint_served_builtin() {
        let server = HttpServer::bind("mem://srv-metrics", echo_handler).unwrap();
        // App traffic shows up in the built-in endpoint…
        let resp = HttpClient::new()
            .get(&format!("{}/app", server.base_url()))
            .unwrap();
        assert_eq!(resp.status(), 200);
        let metrics = HttpClient::new()
            .get(&format!("{}/metrics", server.base_url()))
            .unwrap();
        assert_eq!(metrics.status(), 200);
        let text = metrics.body_str().to_string();
        assert!(text.contains("http_requests_total"), "{text}");
        assert!(text.contains("http_request_ns_count"), "{text}");
        // …and the handler never saw /metrics (echo would 200 with a body
        // of "GET /metrics"; instead we got the exposition format).
        assert!(!text.contains("GET /metrics"));
        server.shutdown();
    }

    #[test]
    fn traces_endpoint_served_builtin() {
        let server = HttpServer::bind("mem://srv-traces", echo_handler).unwrap();
        // The index answers JSON regardless of store contents, and the
        // handler never sees the path (echo would parrot "GET /traces").
        let list = HttpClient::new()
            .get(&format!("{}/traces", server.base_url()))
            .unwrap();
        assert_eq!(list.status(), 200);
        assert_eq!(list.headers().get("Content-Type"), Some("application/json"));
        assert!(!list.body_str().contains("GET /traces"));
        // An unknown prefix is a clean 404, not a handler dispatch.
        let miss = HttpClient::new()
            .get(&format!("{}/traces/ffffffffffff", server.base_url()))
            .unwrap();
        assert_eq!(miss.status(), 404);
        server.shutdown();
    }

    #[test]
    fn connect_after_shutdown_refused() {
        let server = HttpServer::bind("mem://srv-dead", echo_handler).unwrap();
        server.shutdown();
        assert!(HttpClient::new().get("mem://srv-dead").is_err());
    }

    #[test]
    fn connect_after_shutdown_refused_tcp() {
        // The TCP listener must actually leave LISTEN state on
        // shutdown. A socket that merely stops accepting in userspace
        // keeps completing handshakes into the kernel backlog, so a
        // dead server still passes connect-only health probes.
        let server = HttpServer::bind("tcp://127.0.0.1:0", echo_handler).unwrap();
        let url = server.base_url();
        assert!(HttpClient::new().get(&url).is_ok(), "reachable while up");
        server.shutdown();
        assert!(
            HttpClient::new()
                .with_read_timeout(Duration::from_millis(500))
                .get(&url)
                .is_err(),
            "connects must be refused after shutdown"
        );
    }

    #[test]
    fn shutdown_wakes_idle_keep_alive_connections() {
        // A worker is parked in a keep-alive read; shutdown must close
        // the connection and join the worker promptly (the pre-pool
        // server leaked one thread per such connection).
        let server = HttpServer::bind("mem://srv-prompt", echo_handler).unwrap();
        let mut conn = HttpClient::new().connect(&server.base_url()).unwrap();
        conn.send(&Request::get("/warm")).unwrap();
        let start = std::time::Instant::now();
        server.shutdown(); // joins accept + all workers
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "shutdown blocked on a keep-alive read"
        );
        assert!(conn.send(&Request::get("/dead")).is_err());
    }

    #[test]
    fn pool_saturation_rejects_with_503_and_queue_drains() {
        // 1 worker + queue of 1: the first connection occupies the
        // worker, the second waits in the queue, the third is shed.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let entered = Arc::new(AtomicU64::new(0));
        let handler_gate = gate.clone();
        let handler_entered = entered.clone();
        let server = HttpServer::bind_with(
            "mem://srv-load",
            move |_req: &Request| {
                handler_entered.fetch_add(1, Ordering::SeqCst);
                let (lock, cond) = &*handler_gate;
                let mut open = lock.lock();
                while !*open {
                    cond.wait(&mut open);
                }
                Response::ok(b"done".to_vec(), "text/plain")
            },
            PoolConfig {
                workers: 1,
                queue_depth: 1,
                ..PoolConfig::default()
            },
        )
        .unwrap();
        let base = server.base_url();
        let gauge = obs::registry().gauge_with("http_queue_depth", &[("server", &base)]);

        // Occupy the worker, then fill the queue. Polling the handler
        // entry counter and the per-server gauge keeps this
        // deterministic without sleeps.
        let c1 = {
            let base = base.clone();
            thread::spawn(move || HttpClient::new().get(&format!("{base}/a")))
        };
        // Wait until the sole worker is inside the handler for /a.
        wait_until(|| entered.load(Ordering::SeqCst) == 1);
        let c2 = {
            let base = base.clone();
            thread::spawn(move || HttpClient::new().get(&format!("{base}/b")))
        };
        wait_until(|| gauge.get() == 1);

        // Queue full: this one must be shed with 503 without waiting.
        let resp = HttpClient::new().get(&format!("{base}/c")).unwrap();
        assert_eq!(resp.status(), 503);
        let rejected = obs::registry().snapshot().counter(&obs::metrics::key(
            "http_rejected_total",
            &[("server", &base)],
        ));
        assert!(rejected >= 1, "rejection counter did not rise");

        // Open the gate: both queued/served requests complete, and the
        // queue gauge drains back to zero.
        {
            let (lock, cond) = &*gate;
            *lock.lock() = true;
            cond.notify_all();
        }
        assert_eq!(c1.join().unwrap().unwrap().status(), 200);
        assert_eq!(c2.join().unwrap().unwrap().status(), 200);
        wait_until(|| gauge.get() == 0);
        server.shutdown();
    }

    #[test]
    fn idle_keep_alive_connections_do_not_starve_new_ones() {
        // One worker, several idle keep-alive connections: a new
        // connection must still get served (the worker rotates idle
        // connections back into the queue instead of blocking on one),
        // and the rotated connections must stay usable afterwards.
        let server = HttpServer::bind_with(
            "mem://srv-rotate",
            echo_handler,
            PoolConfig {
                workers: 1,
                queue_depth: 8,
                ..PoolConfig::default()
            },
        )
        .unwrap();
        let base = server.base_url();
        let client = HttpClient::new();
        let mut idle1 = client.connect(&base).unwrap();
        let mut idle2 = client.connect(&base).unwrap();
        assert_eq!(idle1.send(&Request::get("/warm1")).unwrap().status(), 200);
        assert_eq!(idle2.send(&Request::get("/warm2")).unwrap().status(), 200);
        // Both connections are now idle; one of them pins the worker.
        let fresh = client.get(&format!("{base}/fresh")).unwrap();
        assert_eq!(fresh.body_str(), "GET /fresh");
        // The idle connections were rotated, not closed: they still work.
        assert_eq!(idle1.send(&Request::get("/again1")).unwrap().status(), 200);
        assert_eq!(idle2.send(&Request::get("/again2")).unwrap().status(), 200);
        server.shutdown();
    }

    #[test]
    fn slow_loris_request_times_out_with_408() {
        let server = HttpServer::bind_with(
            "mem://srv-loris",
            echo_handler,
            PoolConfig {
                request_read_timeout: Some(Duration::from_millis(50)),
                ..PoolConfig::default()
            },
        )
        .unwrap();
        // Dribble a partial request head and then stall.
        let mut stream = crate::transport::connect("mem://srv-loris").unwrap();
        use std::io::{Read, Write};
        stream.write_all(b"GET /slow HTTP/1.1\r\nX-Part").unwrap();
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 408"), "{text}");
        assert!(
            obs::registry()
                .snapshot()
                .counter("http_request_timeouts_total")
                >= 1
        );
        server.shutdown();
    }

    #[test]
    fn oversized_headers_rejected_per_config() {
        let server = HttpServer::bind_with(
            "mem://srv-bighead",
            echo_handler,
            PoolConfig {
                max_header_bytes: 256,
                ..PoolConfig::default()
            },
        )
        .unwrap();
        let mut req = Request::get("/x");
        req.headers_mut().set("X-Big", "b".repeat(1024));
        let mut conn = HttpClient::new().connect(&server.base_url()).unwrap();
        let resp = conn.send(&req).unwrap();
        assert_eq!(resp.status(), 400);
        server.shutdown();
    }

    #[test]
    fn load_shed_503_carries_retry_after() {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let entered = Arc::new(AtomicU64::new(0));
        let handler_gate = gate.clone();
        let handler_entered = entered.clone();
        let server = HttpServer::bind_with(
            "mem://srv-shed-hint",
            move |_req: &Request| {
                handler_entered.fetch_add(1, Ordering::SeqCst);
                let (lock, cond) = &*handler_gate;
                let mut open = lock.lock();
                while !*open {
                    cond.wait(&mut open);
                }
                Response::ok(b"done".to_vec(), "text/plain")
            },
            PoolConfig {
                workers: 1,
                queue_depth: 1,
                retry_after: Duration::from_millis(250),
                ..PoolConfig::default()
            },
        )
        .unwrap();
        let base = server.base_url();
        let gauge = obs::registry().gauge_with("http_queue_depth", &[("server", &base)]);
        let c1 = {
            let base = base.clone();
            thread::spawn(move || HttpClient::new().get(&format!("{base}/a")))
        };
        wait_until(|| entered.load(Ordering::SeqCst) == 1);
        let c2 = {
            let base = base.clone();
            thread::spawn(move || HttpClient::new().get(&format!("{base}/b")))
        };
        wait_until(|| gauge.get() == 1);
        let resp = HttpClient::new().get(&format!("{base}/c")).unwrap();
        assert_eq!(resp.status(), 503);
        assert_eq!(resp.retry_after(), Some(Duration::from_millis(250)));
        {
            let (lock, cond) = &*gate;
            *lock.lock() = true;
            cond.notify_all();
        }
        let _ = c1.join().unwrap();
        let _ = c2.join().unwrap();
        server.shutdown();
    }

    fn wait_until(mut cond: impl FnMut() -> bool) {
        let start = std::time::Instant::now();
        while !cond() {
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "condition not reached in time"
            );
            thread::sleep(Duration::from_millis(2));
        }
    }
}
