//! Deterministic fault injection for the transport layer (the "chaos
//! layer").
//!
//! A [`FaultPlan`] is a seeded, ordered list of [`FaultRule`]s matched
//! against endpoint addresses whenever a connection is established
//! ([`crate::transport::connect`]) or accepted
//! ([`crate::transport::Listener::accept`]). When a rule fires, the
//! connection is refused, delayed, or wrapped in a [`ChaosStream`] that
//! perturbs the byte stream: truncation at a byte offset, single-byte
//! corruption, mid-response disconnect, or a blackhole that accepts and
//! then stalls.
//!
//! All randomness comes from one `obs::rng::XorShift64` seeded by the
//! plan, so a given plan + a deterministic workload injects exactly the
//! same fault sequence on every run — the chaos tests and the CI chaos
//! job rely on this.
//!
//! The plan is process-global (`install` / `clear`); the no-plan fast
//! path is a single relaxed atomic load, so steady-state RTT is
//! unaffected when chaos is off.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use obs::rng::XorShift64;
use obs::sync::{Condvar, Mutex};

use crate::transport::Stream;

/// The kinds of faults a [`FaultRule`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The connection is refused (client side) or accepted and
    /// immediately closed (server side).
    Refuse,
    /// Connection establishment is delayed by a fixed time plus seeded
    /// jitter.
    Delay,
    /// Reads see a clean EOF after N bytes — a truncated message.
    Truncate,
    /// The byte at read offset N is flipped — payload corruption.
    Corrupt,
    /// Writes fail after N bytes and the peer sees EOF — a
    /// mid-response disconnect.
    Disconnect,
    /// The connection establishes but reads stall and writes are
    /// swallowed — a peer that accepts and then goes silent.
    Blackhole,
    /// Reads pass through untouched, but the first write tears the
    /// connection down — the request is delivered and executed, and the
    /// reply is lost. The canonical duplicate-generating fault for
    /// exactly-once testing: a retrying client re-sends a call the
    /// server already ran.
    DropReply,
}

impl FaultKind {
    /// Stable label used in the `faults_injected_total{kind=...}` metric
    /// and the REPL `chaos` command.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Refuse => "refuse",
            FaultKind::Delay => "delay",
            FaultKind::Truncate => "truncate",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Disconnect => "disconnect",
            FaultKind::Blackhole => "blackhole",
            FaultKind::DropReply => "drop_reply",
        }
    }
}

/// Which side of the transport a rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSide {
    /// Applied in [`crate::transport::connect`] — the client's view.
    Connect,
    /// Applied in [`crate::transport::Listener::accept`] — the server's
    /// view.
    Accept,
}

/// One programmable fault rule.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Substring matched against the canonical endpoint address
    /// (e.g. `mem://svc` or `tcp://127.0.0.1:4000`). An empty string
    /// matches every endpoint.
    pub endpoint: String,
    /// The fault to inject when the rule fires.
    pub kind: FaultKind,
    /// Probability in `[0, 1]` that a matching connection is hit.
    pub probability: f64,
    /// Fixed delay for [`FaultKind::Delay`].
    pub delay: Duration,
    /// Additional uniformly-drawn jitter on top of `delay`.
    pub jitter: Duration,
    /// Byte offset for `Truncate` / `Corrupt` / `Disconnect`.
    pub offset: usize,
    /// Which transport hook the rule applies to.
    pub side: FaultSide,
}

impl FaultRule {
    fn base(endpoint: &str, kind: FaultKind, probability: f64) -> FaultRule {
        FaultRule {
            endpoint: endpoint.to_string(),
            kind,
            probability,
            delay: Duration::ZERO,
            jitter: Duration::ZERO,
            offset: 0,
            side: FaultSide::Connect,
        }
    }

    /// Refuse matching connections with probability `p`.
    pub fn refuse(endpoint: &str, p: f64) -> FaultRule {
        Self::base(endpoint, FaultKind::Refuse, p)
    }

    /// Delay matching connections by `delay` ± `jitter`.
    pub fn delay(endpoint: &str, p: f64, delay: Duration, jitter: Duration) -> FaultRule {
        let mut r = Self::base(endpoint, FaultKind::Delay, p);
        r.delay = delay;
        r.jitter = jitter;
        r
    }

    /// Truncate reads after `offset` bytes.
    pub fn truncate(endpoint: &str, p: f64, offset: usize) -> FaultRule {
        let mut r = Self::base(endpoint, FaultKind::Truncate, p);
        r.offset = offset;
        r
    }

    /// Flip the byte at read offset `offset`.
    pub fn corrupt(endpoint: &str, p: f64, offset: usize) -> FaultRule {
        let mut r = Self::base(endpoint, FaultKind::Corrupt, p);
        r.offset = offset;
        r
    }

    /// Break the connection after `offset` written bytes.
    pub fn disconnect(endpoint: &str, p: f64, offset: usize) -> FaultRule {
        let mut r = Self::base(endpoint, FaultKind::Disconnect, p);
        r.offset = offset;
        r
    }

    /// Accept, then stall: reads block, writes are swallowed.
    pub fn blackhole(endpoint: &str, p: f64) -> FaultRule {
        Self::base(endpoint, FaultKind::Blackhole, p)
    }

    /// Deliver the request, drop the reply. Usually combined with
    /// [`FaultRule::on_accept`] so the server executes the call and the
    /// client sees EOF where the reply should be.
    pub fn drop_reply(endpoint: &str, p: f64) -> FaultRule {
        Self::base(endpoint, FaultKind::DropReply, p)
    }

    /// Applies the rule on the accept side instead of the connect side.
    pub fn on_accept(mut self) -> FaultRule {
        self.side = FaultSide::Accept;
        self
    }
}

/// A seeded, programmable fault plan.
///
/// # Examples
///
/// ```
/// use httpd::fault::{self, FaultPlan, FaultRule};
///
/// FaultPlan::seeded(7)
///     .rule(FaultRule::refuse("mem://victim", 0.2))
///     .install();
/// assert!(fault::active());
/// fault::clear();
/// assert!(!fault::active());
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan drawing all randomness from `seed`.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Appends a rule. Rules are tried in insertion order; the first
    /// matching rule whose probability roll succeeds fires, at most one
    /// per connection.
    pub fn rule(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    /// The seed the plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The rules in evaluation order.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// Installs this plan process-globally (replacing any previous one).
    pub fn install(self) {
        install(self);
    }
}

struct PlanState {
    plan: FaultPlan,
    rng: XorShift64,
}

struct Injector {
    /// Fast-path flag: checked before taking any lock, so the zero-fault
    /// hot path costs one relaxed load.
    enabled: AtomicBool,
    state: Mutex<Option<PlanState>>,
}

fn injector() -> &'static Injector {
    static INJECTOR: OnceLock<Injector> = OnceLock::new();
    INJECTOR.get_or_init(|| Injector {
        enabled: AtomicBool::new(false),
        state: Mutex::new(None),
    })
}

/// Installs `plan` process-globally.
pub fn install(plan: FaultPlan) {
    let inj = injector();
    let rng = XorShift64::seed_from_u64(plan.seed);
    *inj.state.lock() = Some(PlanState { plan, rng });
    inj.enabled.store(true, Ordering::Release);
}

/// Removes the installed plan; already-wrapped streams keep their fault.
pub fn clear() {
    let inj = injector();
    inj.enabled.store(false, Ordering::Release);
    *inj.state.lock() = None;
}

/// Whether a plan is installed. This is the hot-path guard: a single
/// relaxed atomic load.
#[inline]
pub fn active() -> bool {
    injector().enabled.load(Ordering::Relaxed)
}

/// Human-readable description of the installed plan (REPL `chaos status`).
pub fn status() -> String {
    let inj = injector();
    let st = inj.state.lock();
    match st.as_ref() {
        None => "chaos off".to_string(),
        Some(ps) => {
            let mut out = format!("chaos on (seed={})\n", ps.plan.seed);
            for r in &ps.plan.rules {
                let ep = if r.endpoint.is_empty() {
                    "*"
                } else {
                    r.endpoint.as_str()
                };
                out.push_str(&format!(
                    "  {} {} p={:.2} side={:?}",
                    ep,
                    r.kind.label(),
                    r.probability,
                    r.side
                ));
                if r.kind == FaultKind::Delay {
                    out.push_str(&format!(" delay={:?} jitter={:?}", r.delay, r.jitter));
                }
                if matches!(
                    r.kind,
                    FaultKind::Truncate | FaultKind::Corrupt | FaultKind::Disconnect
                ) {
                    out.push_str(&format!(" offset={}", r.offset));
                }
                out.push('\n');
            }
            out
        }
    }
}

/// What the injector decided for one connection.
///
/// Public so reactor-based accept loops (the httpd TCP engine and the
/// server ORB) can roll accept-side faults themselves and translate a
/// `Delay` into a timer instead of a thread sleep; not meant for
/// application code.
#[doc(hidden)]
pub enum Injected {
    Refuse,
    Delay(Duration),
    Wrap(ChaosMode),
}

/// Rolls the installed plan for a connection to `endpoint` on `side`.
/// Returns `None` when no rule fires.
///
/// Public for reactor accept loops (see [`Injected`]); not meant for
/// application code.
#[doc(hidden)]
pub fn inject(endpoint: &str, side: FaultSide) -> Option<Injected> {
    let inj = injector();
    let mut st = inj.state.lock();
    let ps = st.as_mut()?;
    // First matching rule that wins its roll fires; at most one fault
    // per connection keeps rates interpretable.
    let mut fired: Option<(FaultKind, Duration, usize)> = None;
    for r in &ps.plan.rules {
        if r.side != side || !endpoint.contains(r.endpoint.as_str()) {
            continue;
        }
        if !ps.rng.gen_bool(r.probability) {
            continue;
        }
        let delay = if r.jitter > Duration::ZERO {
            let extra_ns = ps.rng.gen_range(0, r.jitter.as_nanos() as i64 + 1) as u64;
            r.delay + Duration::from_nanos(extra_ns)
        } else {
            r.delay
        };
        fired = Some((r.kind, delay, r.offset));
        break;
    }
    drop(st);
    let (kind, delay, offset) = fired?;
    obs::registry()
        .counter_with("faults_injected_total", &[("kind", kind.label())])
        .inc();
    // When a traced call is on this thread, mark its active span so the
    // injected fault survives into the tail-sampled waterfall.
    if obs::tracectx::has_active() {
        obs::tracectx::annotate_active(
            "fault_injected",
            obs::tracectx::AnnValue::Str(kind.label()),
        );
        if kind == FaultKind::Delay {
            obs::tracectx::annotate_active(
                "fault_delay_ms",
                obs::tracectx::AnnValue::U64(delay.as_millis() as u64),
            );
        }
    }
    obs::trace::verbose_event(
        "httpd::fault",
        "inject",
        format!("endpoint={endpoint} kind={}", kind.label()),
    );
    Some(match kind {
        FaultKind::Refuse => Injected::Refuse,
        FaultKind::Delay => Injected::Delay(delay),
        FaultKind::Truncate => Injected::Wrap(ChaosMode::Truncate(offset)),
        FaultKind::Corrupt => Injected::Wrap(ChaosMode::Corrupt(offset)),
        FaultKind::Disconnect => Injected::Wrap(ChaosMode::Disconnect(offset)),
        FaultKind::Blackhole => Injected::Wrap(ChaosMode::Blackhole),
        FaultKind::DropReply => Injected::Wrap(ChaosMode::DropReply),
    })
}

/// How a [`ChaosStream`] perturbs the byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Clean EOF after N read bytes.
    Truncate(usize),
    /// Byte at read offset N flipped.
    Corrupt(usize),
    /// Writes fail after N bytes; the peer sees EOF.
    Disconnect(usize),
    /// Reads stall, writes are swallowed.
    Blackhole,
    /// Reads pass through; the first write shuts the connection down
    /// and every write is swallowed — executed call, lost reply.
    DropReply,
}

#[derive(Debug)]
struct ChaosShared {
    mode: ChaosMode,
    /// Bytes delivered to readers so far (shared across clones: the
    /// buffered read half and the write half are clones of one stream).
    read_off: AtomicUsize,
    /// Bytes accepted from writers so far.
    write_off: AtomicUsize,
    /// Blackhole reads park here until shutdown (or their timeout).
    closed: Mutex<bool>,
    cond: Condvar,
}

/// A [`Stream`] wrapper injecting one [`ChaosMode`] fault.
///
/// Created by the transport hooks when an installed [`FaultPlan`] rule
/// fires; not constructed directly by user code.
#[derive(Debug)]
pub struct ChaosStream {
    inner: Box<Stream>,
    shared: Arc<ChaosShared>,
    read_timeout: Option<Duration>,
}

/// Wraps `stream` in a [`ChaosStream`] injecting `mode`. Public for
/// reactor accept loops (see [`Injected`]); not meant for application
/// code.
#[doc(hidden)]
pub fn wrap(stream: Stream, mode: ChaosMode) -> Stream {
    Stream::Chaos(ChaosStream {
        inner: Box::new(stream),
        shared: Arc::new(ChaosShared {
            mode,
            read_off: AtomicUsize::new(0),
            write_off: AtomicUsize::new(0),
            closed: Mutex::new(false),
            cond: Condvar::new(),
        }),
        read_timeout: None,
    })
}

impl ChaosStream {
    /// The perturbation this stream injects.
    pub(crate) fn mode(&self) -> ChaosMode {
        self.shared.mode
    }

    /// The wrapped transport stream (for fd access; reads and writes
    /// must keep going through the chaos layer).
    pub(crate) fn inner(&self) -> &Stream {
        &self.inner
    }

    pub(crate) fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.read_timeout = timeout;
        self.inner.set_read_timeout(timeout)
    }

    pub(crate) fn try_clone(&self) -> io::Result<ChaosStream> {
        Ok(ChaosStream {
            inner: Box::new(self.inner.try_clone()?),
            shared: self.shared.clone(),
            read_timeout: self.read_timeout,
        })
    }

    pub(crate) fn shutdown(&self) {
        *self.shared.closed.lock() = true;
        self.shared.cond.notify_all();
        self.inner.shutdown();
    }

    /// Blackhole read: park until shutdown (EOF) or the read timeout
    /// (WouldBlock) — never deliver bytes.
    fn blackhole_read(&self) -> io::Result<usize> {
        let mut closed = self.shared.closed.lock();
        let deadline = self.read_timeout.map(|t| Instant::now() + t);
        loop {
            if *closed {
                return Ok(0);
            }
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(io::Error::new(
                            io::ErrorKind::WouldBlock,
                            "blackholed read timed out",
                        ));
                    }
                    let _ = self.shared.cond.wait_for(&mut closed, d - now);
                }
                None => self.shared.cond.wait(&mut closed),
            }
        }
    }
}

impl Read for ChaosStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.shared.mode {
            ChaosMode::Blackhole => self.blackhole_read(),
            ChaosMode::Truncate(limit) => {
                let off = self.shared.read_off.load(Ordering::Acquire);
                if off >= limit {
                    return Ok(0); // clean EOF mid-message
                }
                let cap = buf.len().min(limit - off);
                let n = self.inner.read(&mut buf[..cap])?;
                self.shared.read_off.fetch_add(n, Ordering::AcqRel);
                Ok(n)
            }
            ChaosMode::Corrupt(target) => {
                let n = self.inner.read(buf)?;
                let off = self.shared.read_off.fetch_add(n, Ordering::AcqRel);
                if off <= target && target < off + n {
                    buf[target - off] ^= 0xff;
                }
                Ok(n)
            }
            ChaosMode::Disconnect(_) | ChaosMode::DropReply => self.inner.read(buf),
        }
    }
}

impl Write for ChaosStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.shared.mode {
            ChaosMode::Blackhole => Ok(buf.len()), // swallowed
            ChaosMode::DropReply => {
                // The request made it in; the reply never makes it out.
                // Tearing the connection down on the first write gives
                // the peer an EOF exactly where the reply should start.
                if self.shared.write_off.fetch_add(buf.len(), Ordering::AcqRel) == 0 {
                    self.inner.shutdown();
                }
                Ok(buf.len())
            }
            ChaosMode::Disconnect(limit) => {
                let off = self.shared.write_off.load(Ordering::Acquire);
                if off >= limit {
                    self.inner.shutdown();
                    return Err(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        "chaos disconnect",
                    ));
                }
                let cap = buf.len().min(limit - off);
                let n = self.inner.write(&buf[..cap])?;
                self.shared.write_off.fetch_add(n, Ordering::AcqRel);
                if off + n >= limit {
                    // The allowance is exhausted: drop the connection so
                    // the peer sees a mid-message EOF.
                    self.inner.shutdown();
                }
                Ok(n)
            }
            _ => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self.shared.mode {
            ChaosMode::Blackhole | ChaosMode::DropReply => Ok(()),
            _ => self.inner.flush(),
        }
    }
}

/// Serializes tests that mutate the process-global injector (also used
/// by the reactor-engine chaos tests in `rserver`).
#[cfg(test)]
pub(crate) fn test_guard() -> obs::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::OnceLock<obs::sync::Mutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(|| obs::sync::Mutex::new(())).lock()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::MemStream;

    /// Tests mutating the process-global injector must not interleave.
    fn injector_guard() -> obs::sync::MutexGuard<'static, ()> {
        test_guard()
    }

    fn chaos_pair(mode: ChaosMode) -> (Stream, MemStream) {
        let (a, b) = MemStream::pair();
        (wrap(Stream::Mem(a), mode), b)
    }

    #[test]
    fn truncate_cuts_reads_at_offset() {
        let (mut s, mut peer) = chaos_pair(ChaosMode::Truncate(4));
        peer.write_all(b"0123456789").unwrap();
        let mut buf = [0u8; 16];
        let n = s.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"0123");
        assert_eq!(s.read(&mut buf).unwrap(), 0, "EOF after truncation point");
    }

    #[test]
    fn corrupt_flips_exactly_one_byte() {
        let (mut s, mut peer) = chaos_pair(ChaosMode::Corrupt(2));
        peer.write_all(b"abcd").unwrap();
        let mut buf = [0u8; 4];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, &[b'a', b'b', b'c' ^ 0xff, b'd']);
    }

    #[test]
    fn disconnect_breaks_writes_at_offset() {
        let (mut s, mut peer) = chaos_pair(ChaosMode::Disconnect(3));
        assert_eq!(s.write(b"abcdef").unwrap(), 3);
        let err = s.write(b"gh").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        // The peer got the allowed prefix, then EOF.
        let mut got = Vec::new();
        peer.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"abc");
    }

    #[test]
    fn drop_reply_delivers_request_but_loses_reply() {
        let (mut s, mut peer) = chaos_pair(ChaosMode::DropReply);
        // The "request" flows through to the wrapped server side intact.
        peer.write_all(b"request").unwrap();
        let mut buf = [0u8; 7];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"request");
        // The "reply" is swallowed and the peer sees EOF instead.
        assert_eq!(s.write(b"reply").unwrap(), 5);
        s.flush().unwrap();
        let mut got = Vec::new();
        peer.read_to_end(&mut got).unwrap();
        assert!(got.is_empty(), "reply bytes must never arrive: {got:?}");
    }

    #[test]
    fn blackhole_read_times_out_and_write_is_swallowed() {
        let (mut s, mut peer) = chaos_pair(ChaosMode::Blackhole);
        s.set_read_timeout(Some(Duration::from_millis(20))).unwrap();
        assert_eq!(s.write(b"request").unwrap(), 7);
        let mut buf = [0u8; 8];
        // The peer wrote a response, but the blackhole never delivers it.
        peer.write_all(b"response").unwrap();
        let err = s.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }

    #[test]
    fn blackhole_read_sees_eof_after_shutdown() {
        let (mut s, _peer) = chaos_pair(ChaosMode::Blackhole);
        let clone = s.try_clone().unwrap();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            clone.shutdown();
        });
        let mut buf = [0u8; 1];
        assert_eq!(s.read(&mut buf).unwrap(), 0);
        t.join().unwrap();
    }

    #[test]
    fn plan_is_deterministic_per_seed() {
        let _g = injector_guard();
        let roll = |seed: u64| -> Vec<bool> {
            install(FaultPlan::seeded(seed).rule(FaultRule::refuse("mem://det", 0.5)));
            let out = (0..32)
                .map(|_| inject("mem://det-x", FaultSide::Connect).is_some())
                .collect();
            clear();
            out
        };
        let a = roll(42);
        let b = roll(42);
        let c = roll(43);
        assert_eq!(a, b, "same seed, same fault sequence");
        assert_ne!(a, c, "different seed, different sequence");
        assert!(a.iter().any(|f| *f) && !a.iter().all(|f| *f));
    }

    #[test]
    fn rules_filter_by_endpoint_and_side() {
        let _g = injector_guard();
        install(
            FaultPlan::seeded(1)
                .rule(FaultRule::refuse("mem://only-this", 1.0))
                .rule(FaultRule::blackhole("mem://srv", 1.0).on_accept()),
        );
        assert!(inject("mem://other", FaultSide::Connect).is_none());
        assert!(matches!(
            inject("mem://only-this", FaultSide::Connect),
            Some(Injected::Refuse)
        ));
        assert!(inject("mem://srv", FaultSide::Connect).is_none());
        assert!(matches!(
            inject("mem://srv", FaultSide::Accept),
            Some(Injected::Wrap(ChaosMode::Blackhole))
        ));
        clear();
    }

    #[test]
    fn status_reports_rules() {
        let _g = injector_guard();
        assert_eq!(status(), "chaos off");
        install(FaultPlan::seeded(9).rule(FaultRule::truncate("mem://t", 0.25, 10)));
        let s = status();
        assert!(s.contains("seed=9"), "{s}");
        assert!(s.contains("truncate"), "{s}");
        clear();
    }
}
