//! The event-driven TCP engine: connections as reactor state machines.
//!
//! `tcp://` servers are served by the process-global [`reactor`] shard
//! pool instead of the threaded worker pool (`mem://` servers keep the
//! threaded engine — the in-memory transport has no fd to register).
//! Each connection is one [`HttpConn`] state machine:
//!
//! ```text
//!            accept (+ chaos roll)
//!                 │
//!     ┌───────────┼──────────────┐
//!     ▼           ▼              ▼
//! DelayedStart  Reading      Blackholed (parked, no interest)
//!  (timer) ────►  │ ▲
//!                 │ │ keep-alive: park at zero thread cost
//!        parsed   │ │
//!                 ▼ │
//!            Dispatched (suspended; handler on the dispatch pool)
//!                 │
//!        response │ (worker writes; WouldBlock hands the tail back)
//!                 ▼
//!              Writing ──► Reading │ Close
//! ```
//!
//! Idle keep-alive connections sit registered with read interest and no
//! timer: no thread, no queue slot, no `http_queue_depth` contribution.
//! The dispatch queue (bounded at `PoolConfig::queue_depth`) is the
//! only backpressure point — when it is full the request is shed with
//! `503` exactly like the threaded engine's accept queue.

#![cfg(target_os = "linux")]

use std::any::Any;
use std::io::{self, IoSlice, Read, Write};
use std::os::unix::io::RawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use obs::metrics::Counter;
use obs::sync::Mutex;
use reactor::{Action, Ctl, DispatchPool, EventSource, Interest, Readiness};

use crate::error::HttpError;
use crate::fault::{self, ChaosMode, FaultSide, Injected};
use crate::message::{Body, Limits, Request, Response, Status};
use crate::server::{http_metrics, Handler, PoolConfig};
use crate::transport::{Addr, Listener, Stream};

/// Read chunk size while assembling a request.
const READ_CHUNK: usize = 16 * 1024;

pub(crate) struct ReactorServer {
    addr: Addr,
    shared: Arc<Shared>,
    listener: Arc<Listener>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    server_id: u64,
}

struct Shared {
    shutdown: AtomicBool,
    cfg: PoolConfig,
    handler: Arc<dyn Handler>,
    dispatch: DispatchPool,
    rejected: Arc<Counter>,
    deadline_shed: Arc<Counter>,
    request_timeouts: Arc<Counter>,
}

impl std::fmt::Debug for ReactorServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorServer")
            .field("addr", &self.addr)
            .field("workers", &self.shared.cfg.workers)
            .field("queue_depth", &self.shared.cfg.queue_depth)
            .finish_non_exhaustive()
    }
}

impl ReactorServer {
    pub(crate) fn bind(
        addr: &str,
        handler: Arc<dyn Handler>,
        cfg: PoolConfig,
    ) -> Result<ReactorServer, HttpError> {
        let listener = Arc::new(Listener::bind(addr)?);
        let local = listener.local_addr();
        let server_label = local.to_string();
        let r = obs::registry();
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            cfg,
            handler,
            // The dispatch queue inherits the accept queue's depth bound
            // and its gauge: parked idle connections never touch it.
            dispatch: DispatchPool::new(
                &format!("httpd-dispatch-{server_label}"),
                cfg.workers,
                cfg.queue_depth,
                Some(r.gauge_with("http_queue_depth", &[("server", &server_label)])),
            ),
            rejected: r.counter_with("http_rejected_total", &[("server", &server_label)]),
            deadline_shed: r.counter_with("http_deadline_shed_total", &[("server", &server_label)]),
            request_timeouts: r.counter("http_request_timeouts_total"),
        });
        let server_id = reactor::pool().allocate_server_id();
        let accept_listener = listener.clone();
        let accept_shared = shared.clone();
        let accept_thread = std::thread::Builder::new()
            .name(format!("httpd-accept-{local}"))
            .spawn(move || accept_loop(&accept_listener, &accept_shared, server_id))
            .expect("spawn accept thread");
        Ok(ReactorServer {
            addr: local,
            shared,
            listener,
            accept_thread: Mutex::new(Some(accept_thread)),
            server_id,
        })
    }

    pub(crate) fn addr(&self) -> &Addr {
        &self.addr
    }

    pub(crate) fn pool_config(&self) -> PoolConfig {
        self.shared.cfg
    }

    pub(crate) fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.listener.close();
        if let Some(t) = self.accept_thread.lock().take() {
            let _ = t.join();
        }
        // Sweep every registered connection off the reactor shards
        // (returns after the sweeps ran), then stop the handler pool.
        reactor::pool().close_server(self.server_id);
        self.shared.dispatch.shutdown();
    }
}

impl Drop for ReactorServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &Listener, shared: &Arc<Shared>, server_id: u64) {
    let Listener::Tcp(tcp) = listener else {
        return; // mem:// never reaches the reactor engine
    };
    let label = listener.local_addr().to_string();
    while !shared.shutdown.load(Ordering::SeqCst) {
        let stream = match tcp.accept() {
            Ok((s, _)) => {
                s.set_nodelay(true).ok();
                Stream::Tcp(s)
            }
            Err(_) => break,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            stream.shutdown();
            break;
        }
        // Accept-side chaos, rolled here so a Delay becomes a reactor
        // timer instead of stalling the acceptor with a sleep.
        let mut stream = stream;
        let mut delay = None;
        if fault::active() {
            match fault::inject(&label, FaultSide::Accept) {
                Some(Injected::Refuse) => {
                    stream.shutdown();
                    continue;
                }
                Some(Injected::Delay(d)) => delay = Some(d),
                Some(Injected::Wrap(mode)) => stream = fault::wrap(stream, mode),
                None => {}
            }
        }
        http_metrics().connections.inc();
        if stream.set_nonblocking(true).is_err() {
            stream.shutdown();
            continue;
        }
        // A blackholed connection must never be read (its read parks on
        // a condvar); park it off epoll until shutdown sweeps it.
        let blackholed = stream.chaos_mode() == Some(ChaosMode::Blackhole);
        let (state, interest, timeout) = if blackholed {
            (ConnState::Blackholed, Interest::None, None)
        } else if let Some(d) = delay {
            (ConnState::DelayedStart, Interest::None, Some(d))
        } else {
            (ConnState::Reading, Interest::Read, None)
        };
        let conn = HttpConn {
            stream,
            shared: shared.clone(),
            server_id,
            state,
            inbuf: Vec::new(),
            head_buf: Vec::with_capacity(256),
        };
        reactor::pool()
            .next_handle()
            .register(Box::new(conn), interest, timeout);
    }
}

/// A response in flight through a nonblocking fd.
struct PendingWrite {
    head: Vec<u8>,
    body: Body,
    pos: usize,
    close: bool,
}

/// What a dispatch worker hands back through `resume`.
enum WriteOutcome {
    /// Response fully written; `head` is the recycled head buffer.
    Done { head: Vec<u8>, close: bool },
    /// Partial write; the reactor drives the rest on write readiness.
    Pending(PendingWrite),
    /// Write failed; tear the connection down.
    Failed,
}

enum ConnState {
    /// Chaos delay pending; the timer transitions to `Reading`.
    DelayedStart,
    Reading,
    /// Handler running on the dispatch pool; source is suspended.
    Dispatched,
    Writing(PendingWrite),
    /// Chaos blackhole: parked until server shutdown.
    Blackholed,
}

struct HttpConn {
    stream: Stream,
    shared: Arc<Shared>,
    server_id: u64,
    state: ConnState,
    /// Accumulated request bytes (recycled across requests).
    inbuf: Vec<u8>,
    /// Recycled response-head buffer, loaned to the dispatch worker for
    /// the duration of a request.
    head_buf: Vec<u8>,
}

/// Drains `head` then `body` through a nonblocking writer from `pos`.
/// `Ok(true)` = fully written, `Ok(false)` = `WouldBlock` with `pos`
/// advanced past everything the kernel took.
fn drain_write(stream: &mut Stream, head: &[u8], body: &[u8], pos: &mut usize) -> io::Result<bool> {
    let total = head.len() + body.len();
    while *pos < total {
        let res = if *pos < head.len() {
            stream.write_vectored(&[IoSlice::new(&head[*pos..]), IoSlice::new(body)])
        } else {
            stream.write(&body[*pos - head.len()..])
        };
        match res {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "write zero")),
            Ok(n) => *pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// What `begin_request` decided: keep looping in `run`, or return an
/// action to the reactor.
enum Step {
    Continue,
    Act(Action),
}

impl HttpConn {
    fn limits(&self) -> Limits {
        Limits {
            max_header_bytes: self.shared.cfg.max_header_bytes,
            max_body_bytes: self.shared.cfg.max_body_bytes,
        }
    }

    /// Pulls everything currently readable into `inbuf`. Returns false
    /// when the connection is done for (EOF or hard error).
    fn fill_inbuf(&mut self) -> bool {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return false,
                Ok(n) => {
                    self.inbuf.extend_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        return true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// The state-machine crank: processes buffered bytes and in-flight
    /// writes until the connection must wait for readiness again.
    fn run(&mut self, ctl: &mut Ctl<'_>) -> Action {
        loop {
            match &mut self.state {
                ConnState::Reading => {
                    match Request::parse_buffered(&self.inbuf, &self.limits()) {
                        Ok(None) => {
                            // Partial request: arm the slow-loris clock.
                            // Empty buffer: park with no timer at all.
                            let deadline = if self.inbuf.is_empty() {
                                None
                            } else {
                                self.shared.cfg.request_read_timeout
                            };
                            return Action::Rearm(Interest::Read, deadline);
                        }
                        Ok(Some((req, consumed))) => {
                            self.inbuf.drain(..consumed);
                            match self.begin_request(req, ctl) {
                                Step::Continue => continue,
                                Step::Act(a) => return a,
                            }
                        }
                        Err(_) => {
                            obs::registry()
                                .counter("http_malformed_requests_total")
                                .inc();
                            self.start_write(Response::bad_request("malformed request"), true);
                            continue;
                        }
                    }
                }
                ConnState::Writing(pw) => {
                    match drain_write(&mut self.stream, &pw.head, pw.body.as_slice(), &mut pw.pos) {
                        Ok(true) => {
                            let close = pw.close;
                            // Reclaim the head buffer for the next
                            // response on this connection.
                            self.head_buf = std::mem::take(&mut pw.head);
                            if close {
                                return Action::Close;
                            }
                            self.state = ConnState::Reading;
                            continue;
                        }
                        Ok(false) => return Action::Rearm(Interest::Write, None),
                        Err(_) => return Action::Close,
                    }
                }
                ConnState::DelayedStart => {
                    self.state = ConnState::Reading;
                    continue;
                }
                ConnState::Dispatched | ConnState::Blackholed => {
                    // run() is never cranked in these states.
                    return Action::Close;
                }
            }
        }
    }

    /// Queues `resp` for writing (the write itself happens in `run`).
    fn start_write(&mut self, mut resp: Response, close: bool) {
        if close {
            resp.headers_mut().set("Connection", "close");
        }
        let mut head = std::mem::take(&mut self.head_buf);
        let body = resp.into_write_parts(&mut head);
        self.state = ConnState::Writing(PendingWrite {
            head,
            body,
            pos: 0,
            close,
        });
    }

    /// Routes one parsed request: built-in observability endpoints are
    /// answered on the reactor thread (no user code, no blocking);
    /// application requests hop to the dispatch pool.
    fn begin_request(&mut self, req: Request, ctl: &mut Ctl<'_>) -> Step {
        let close = req
            .headers()
            .get("Connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        if let Some(resp) = builtin_response(&req) {
            self.start_write(resp, close);
            return Step::Continue;
        }
        let writer = match self.stream.try_clone() {
            Ok(s) => s,
            Err(_) => return Step::Act(Action::Close),
        };
        let shared = self.shared.clone();
        let handle = ctl.handle();
        let token = ctl.token();
        let head = std::mem::take(&mut self.head_buf);
        let enqueued_at = Instant::now();
        let accepted = self.shared.dispatch.try_submit(move || {
            let outcome = execute_request(&shared, req, close, head, writer, enqueued_at);
            handle.resume(token, Box::new(outcome));
        });
        if accepted {
            self.state = ConnState::Dispatched;
            Step::Act(Action::Suspend)
        } else {
            // Dispatch queue saturated: shed exactly like the threaded
            // engine's full accept queue.
            self.shared.rejected.inc();
            self.head_buf = Vec::with_capacity(256); // loaned buf went with the closure
            self.start_write(
                Response::unavailable("server busy", self.shared.cfg.retry_after),
                true,
            );
            Step::Continue
        }
    }
}

/// Runs on a dispatch worker: handler execution, response
/// serialization, and the first write attempt.
fn execute_request(
    shared: &Arc<Shared>,
    req: Request,
    close: bool,
    mut head: Vec<u8>,
    mut writer: Stream,
    enqueued_at: Instant,
) -> WriteOutcome {
    let metrics = http_metrics();
    if shared
        .cfg
        .queue_deadline
        .is_some_and(|d| enqueued_at.elapsed() > d)
    {
        // The request outlived its queue deadline before a worker got
        // to it; answer retryably instead of serving it late.
        shared.deadline_shed.inc();
        let mut r = Response::unavailable("request deadline exceeded", shared.cfg.retry_after);
        r.headers_mut().set("Connection", "close");
        let body = r.into_write_parts(&mut head);
        let mut pos = 0;
        let _ = drain_write(&mut writer, &head, body.as_slice(), &mut pos);
        // The connection closes either way; a partial shed reply is fine.
        return WriteOutcome::Failed;
    }
    let mut resp = {
        metrics.requests.inc();
        let span = obs::trace::Span::timed(metrics.request_ns.clone());
        obs::trace::verbose_event(
            "httpd",
            "request",
            format!("{} {}", req.method(), req.path()),
        );
        let resp = shared.handler.handle(&req);
        span.finish();
        match resp.status() {
            200..=299 => metrics.responses_2xx.inc(),
            400..=499 => metrics.responses_4xx.inc(),
            500..=599 => metrics.responses_5xx.inc(),
            _ => {}
        }
        resp
    };
    if close {
        resp.headers_mut().set("Connection", "close");
    }
    let body = resp.into_write_parts(&mut head);
    let mut pos = 0;
    match drain_write(&mut writer, &head, body.as_slice(), &mut pos) {
        Ok(true) => WriteOutcome::Done { head, close },
        Ok(false) => WriteOutcome::Pending(PendingWrite {
            head,
            body,
            pos,
            close,
        }),
        Err(_) => WriteOutcome::Failed,
    }
}

/// The built-in observability endpoints every server exposes (same set
/// as the threaded engine). `None` means the request is application
/// traffic.
pub(crate) fn builtin_response(req: &Request) -> Option<Response> {
    if req.method() != crate::message::Method::Get {
        return None;
    }
    if req.path() == "/metrics" {
        let mut body = obs::registry().snapshot().render_prometheus();
        body.push_str(&obs::tracectx::render_exemplars());
        return Some(Response::ok(body.into_bytes(), "text/plain; version=0.0.4"));
    }
    if req.path() == "/traces" {
        return Some(Response::ok(
            obs::tracectx::traces_json().into_bytes(),
            "application/json",
        ));
    }
    if let Some(prefix) = req.path().strip_prefix("/traces/") {
        return Some(match obs::tracectx::store().find(prefix) {
            Some(t) => Response::ok(
                obs::tracectx::trace_json(&t).into_bytes(),
                "application/json",
            ),
            None => Response::new(
                Status::NOT_FOUND,
                b"no retained trace matches that prefix\n".to_vec(),
                "text/plain",
            ),
        });
    }
    None
}

impl EventSource for HttpConn {
    fn fd(&self) -> RawFd {
        self.stream.raw_fd().unwrap_or(-1)
    }

    fn server_id(&self) -> u64 {
        self.server_id
    }

    fn on_ready(&mut self, ready: Readiness, ctl: &mut Ctl<'_>) -> Action {
        match self.state {
            ConnState::Reading => {
                if (ready.readable || ready.hangup) && !self.fill_inbuf() {
                    return Action::Close;
                }
                self.run(ctl)
            }
            ConnState::Writing(_) => self.run(ctl),
            // No interest is armed in these states; a stray event is a
            // hangup-only notification — drop the connection.
            ConnState::DelayedStart | ConnState::Blackholed | ConnState::Dispatched => {
                Action::Close
            }
        }
    }

    fn on_timer(&mut self, ctl: &mut Ctl<'_>) -> Action {
        match self.state {
            ConnState::DelayedStart => {
                // Chaos delay elapsed; start serving.
                self.state = ConnState::Reading;
                self.run(ctl)
            }
            ConnState::Reading => {
                // Slow-loris: a partial request outlived the read
                // deadline.
                self.shared.request_timeouts.inc();
                self.start_write(
                    Response::new(
                        Status::REQUEST_TIMEOUT,
                        b"request not completed in time".to_vec(),
                        "text/plain",
                    ),
                    true,
                );
                self.run(ctl)
            }
            _ => Action::Close,
        }
    }

    fn on_resume(&mut self, payload: Box<dyn Any + Send>, ctl: &mut Ctl<'_>) -> Action {
        let Ok(outcome) = payload.downcast::<WriteOutcome>() else {
            return Action::Close;
        };
        match *outcome {
            WriteOutcome::Done { head, close } => {
                self.head_buf = head;
                if close {
                    return Action::Close;
                }
                self.state = ConnState::Reading;
                // Pipelined bytes may already be buffered; crank before
                // re-arming so they are not stranded until new bytes
                // arrive.
                self.run(ctl)
            }
            WriteOutcome::Pending(pw) => {
                self.state = ConnState::Writing(pw);
                Action::Rearm(Interest::Write, None)
            }
            WriteOutcome::Failed => Action::Close,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use crate::fault::{FaultPlan, FaultRule};
    use crate::server::HttpServer;
    use std::time::Duration;

    fn echo_handler(req: &Request) -> Response {
        Response::ok(
            format!("{} {}", req.method(), req.path()).into_bytes(),
            "text/plain",
        )
    }

    #[test]
    fn tcp_keep_alive_through_reactor() {
        let server = HttpServer::bind("tcp://127.0.0.1:0", echo_handler).unwrap();
        let mut conn = HttpClient::new().connect(&server.base_url()).unwrap();
        for i in 0..5 {
            let resp = conn.send(&Request::get(format!("/k{i}"))).unwrap();
            assert_eq!(resp.status(), 200);
            assert_eq!(resp.body_str(), format!("GET /k{i}"));
        }
        server.shutdown();
    }

    fn wait_until(mut cond: impl FnMut() -> bool) {
        let start = Instant::now();
        while !cond() {
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "condition not reached in time"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn tcp_dispatch_queue_full_sheds_503() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let gate = Arc::new((Mutex::new(false), obs::sync::Condvar::new()));
        let entered = Arc::new(AtomicU64::new(0));
        let handler_gate = gate.clone();
        let handler_entered = entered.clone();
        let server = HttpServer::bind_with(
            "tcp://127.0.0.1:0",
            move |_req: &Request| {
                handler_entered.fetch_add(1, Ordering::SeqCst);
                let (lock, cond) = &*handler_gate;
                let mut open = lock.lock();
                while !*open {
                    cond.wait(&mut open);
                }
                Response::ok(b"done".to_vec(), "text/plain")
            },
            PoolConfig {
                workers: 1,
                queue_depth: 1,
                ..PoolConfig::default()
            },
        )
        .unwrap();
        let base = server.base_url();
        let gauge = obs::registry().gauge_with("http_queue_depth", &[("server", &base)]);
        // Occupy the sole dispatch worker…
        let c1 = {
            let base = base.clone();
            std::thread::spawn(move || HttpClient::new().get(&format!("{base}/a")))
        };
        wait_until(|| entered.load(Ordering::SeqCst) == 1);
        // …then fill the single dispatch-queue slot.
        let c2 = {
            let base = base.clone();
            std::thread::spawn(move || HttpClient::new().get(&format!("{base}/b")))
        };
        wait_until(|| gauge.get() == 1);
        // Queue full: a third request is shed with 503 + Retry-After.
        let shed = HttpClient::new().get(&format!("{base}/c")).unwrap();
        assert_eq!(shed.status(), 503);
        assert!(shed.retry_after().is_some());
        {
            let (lock, cond) = &*gate;
            *lock.lock() = true;
            cond.notify_all();
        }
        assert_eq!(c1.join().unwrap().unwrap().status(), 200);
        assert_eq!(c2.join().unwrap().unwrap().status(), 200);
        wait_until(|| gauge.get() == 0);
        server.shutdown();
    }

    #[test]
    fn tcp_slow_loris_times_out_with_408() {
        let server = HttpServer::bind_with(
            "tcp://127.0.0.1:0",
            echo_handler,
            PoolConfig {
                request_read_timeout: Some(Duration::from_millis(80)),
                ..PoolConfig::default()
            },
        )
        .unwrap();
        let mut stream = crate::transport::connect(&server.base_url()).unwrap();
        stream.write_all(b"GET /slow HTTP/1.1\r\nX-Part").unwrap();
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 408"), "{text}");
        server.shutdown();
    }

    #[test]
    fn tcp_metrics_endpoint_served_builtin() {
        let server = HttpServer::bind("tcp://127.0.0.1:0", echo_handler).unwrap();
        let resp = HttpClient::new()
            .get(&format!("{}/metrics", server.base_url()))
            .unwrap();
        assert_eq!(resp.status(), 200);
        let text = resp.body_str().to_string();
        assert!(text.contains("reactor_fds_registered"), "{text}");
        assert!(!text.contains("GET /metrics"));
        server.shutdown();
    }

    #[test]
    fn accept_delay_fault_served_via_timer() {
        let _g = crate::fault::test_guard();
        let server = HttpServer::bind("tcp://127.0.0.1:0", echo_handler).unwrap();
        let base = server.base_url();
        FaultPlan::seeded(3)
            .rule(
                FaultRule::delay(&base, 1.0, Duration::from_millis(120), Duration::ZERO)
                    .on_accept(),
            )
            .install();
        let start = Instant::now();
        let resp = HttpClient::new().get(&format!("{base}/delayed")).unwrap();
        fault::clear();
        assert_eq!(resp.status(), 200);
        assert!(
            start.elapsed() >= Duration::from_millis(100),
            "delay fault not applied: {:?}",
            start.elapsed()
        );
        server.shutdown();
    }

    #[test]
    fn blackholed_connection_parks_without_stalling_others() {
        let _g = crate::fault::test_guard();
        let server = HttpServer::bind("tcp://127.0.0.1:0", echo_handler).unwrap();
        let base = server.base_url();
        let blackholes = || {
            obs::registry().snapshot().counter(&obs::metrics::key(
                "faults_injected_total",
                &[("kind", "blackhole")],
            ))
        };
        let before = blackholes();
        FaultPlan::seeded(5)
            .rule(FaultRule::blackhole(&base, 1.0).on_accept())
            .install();
        // This connection is blackholed server-side: the request is
        // swallowed and no reply ever comes.
        let mut victim = crate::transport::connect(&base).unwrap();
        victim
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        victim.write_all(b"GET /lost HTTP/1.1\r\n\r\n").unwrap();
        // Wait for the accept thread to roll the fault before lifting
        // the plan, or the fresh connection below would be swallowed
        // too (and a late accept would miss the blackhole entirely).
        wait_until(|| blackholes() > before);
        fault::clear();
        let mut buf = [0u8; 64];
        let err = victim.read(&mut buf).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "blackholed read should time out, got {err:?}"
        );
        // Meanwhile the reactor serves a clean connection instantly —
        // the blackholed one is parked, not pinning a thread or loop.
        let resp = HttpClient::new().get(&format!("{base}/fine")).unwrap();
        assert_eq!(resp.body_str(), "GET /fine");
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_all_answered() {
        let server = HttpServer::bind("tcp://127.0.0.1:0", echo_handler).unwrap();
        let mut stream = crate::transport::connect(&server.base_url()).unwrap();
        // Two requests in one write; both must be answered in order.
        stream
            .write_all(b"GET /one HTTP/1.1\r\n\r\nGET /two HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        let one = text.find("GET /one").expect("first response");
        let two = text.find("GET /two").expect("second response");
        assert!(one < two, "{text}");
        server.shutdown();
    }
}
