//! Byte-stream transports: TCP and an in-memory duplex pipe.
//!
//! Addresses are URL-like strings:
//!
//! * `tcp://127.0.0.1:8080` — a real TCP socket (use port `0` to let the OS
//!   pick a free port; the bound address is reported by
//!   [`Listener::local_addr`]),
//! * `mem://name` — a named endpoint in a process-global registry backed by
//!   lock-and-condvar byte pipes. The in-memory transport is fully
//!   deterministic, which the consistency-matrix experiments rely on.
//!
//! Both produce a [`Stream`] implementing [`Read`] + [`Write`], so every
//! protocol layer above (HTTP, GIOP) is transport-agnostic.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use obs::sync::{Condvar, Mutex};

use crate::error::HttpError;
use crate::fault::{self, ChaosStream, FaultSide, Injected};

/// Address of a transport endpoint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Addr {
    /// `tcp://host:port`
    Tcp(String),
    /// `mem://name`
    Mem(String),
}

impl Addr {
    /// Parses an address of the form `tcp://host:port` or `mem://name`.
    ///
    /// # Errors
    ///
    /// Returns [`HttpError::BadAddress`] for any other scheme or a missing
    /// authority part.
    pub fn parse(s: &str) -> Result<Addr, HttpError> {
        if let Some(rest) = s.strip_prefix("tcp://") {
            if rest.is_empty() {
                return Err(HttpError::BadAddress(s.to_string()));
            }
            return Ok(Addr::Tcp(rest.to_string()));
        }
        if let Some(rest) = s.strip_prefix("mem://") {
            let name = rest.split('/').next().unwrap_or("");
            if name.is_empty() {
                return Err(HttpError::BadAddress(s.to_string()));
            }
            return Ok(Addr::Mem(name.to_string()));
        }
        // Convenience: http:// URLs map onto the tcp transport.
        if let Some(rest) = s.strip_prefix("http://") {
            let authority = rest.split('/').next().unwrap_or("");
            if authority.is_empty() {
                return Err(HttpError::BadAddress(s.to_string()));
            }
            return Ok(Addr::Tcp(authority.to_string()));
        }
        Err(HttpError::BadAddress(s.to_string()))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Addr::Tcp(a) => write!(f, "tcp://{a}"),
            Addr::Mem(n) => write!(f, "mem://{n}"),
        }
    }
}

/// A connected, bidirectional byte stream.
#[derive(Debug)]
pub enum Stream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// An in-memory duplex connection.
    Mem(MemStream),
    /// A connection wrapped by the fault-injection layer (see
    /// [`crate::fault`]).
    Chaos(ChaosStream),
}

impl Stream {
    /// Sets the read timeout. `None` blocks forever.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(timeout),
            Stream::Mem(s) => {
                s.read_timeout = timeout;
                Ok(())
            }
            Stream::Chaos(s) => s.set_read_timeout(timeout),
        }
    }

    /// Duplicates the stream handle (both halves refer to the same
    /// connection).
    pub fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => Ok(Stream::Tcp(s.try_clone()?)),
            Stream::Mem(s) => Ok(Stream::Mem(s.clone())),
            Stream::Chaos(s) => Ok(Stream::Chaos(s.try_clone()?)),
        }
    }

    /// Shuts down the connection; subsequent reads on the peer see EOF.
    pub fn shutdown(&self) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            Stream::Mem(s) => s.close(),
            Stream::Chaos(s) => s.shutdown(),
        }
    }

    /// The underlying socket fd, if the stream is backed by one — what
    /// the reactor registers with epoll. `mem://` streams have no fd
    /// and are always served by the threaded engine.
    #[cfg(target_os = "linux")]
    pub fn raw_fd(&self) -> Option<std::os::unix::io::RawFd> {
        use std::os::unix::io::AsRawFd;
        match self {
            Stream::Tcp(s) => Some(s.as_raw_fd()),
            Stream::Mem(_) => None,
            Stream::Chaos(s) => s.inner().raw_fd(),
        }
    }

    /// Switches the underlying socket between blocking and nonblocking
    /// mode. No-op for `mem://` streams (their reads take explicit
    /// timeouts instead).
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(nonblocking),
            Stream::Mem(_) => Ok(()),
            Stream::Chaos(s) => s.inner().set_nonblocking(nonblocking),
        }
    }

    /// The chaos perturbation wrapped around this stream, if any. The
    /// reactor engine special-cases [`crate::fault::ChaosMode::Blackhole`]:
    /// its read parks on a condvar, which must never happen on a
    /// reactor thread, so blackholed connections are parked off epoll
    /// instead of read.
    pub fn chaos_mode(&self) -> Option<crate::fault::ChaosMode> {
        match self {
            Stream::Chaos(s) => Some(s.mode()),
            _ => None,
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Mem(s) => s.read(buf),
            Stream::Chaos(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Mem(s) => s.write(buf),
            Stream::Chaos(s) => s.write(buf),
        }
    }

    fn write_vectored(&mut self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
        match self {
            // Real scatter/gather I/O: head + body leave in one syscall.
            Stream::Tcp(s) => s.write_vectored(bufs),
            Stream::Mem(s) => s.write_vectored(bufs),
            // The chaos wrapper must see every byte to track offsets, so
            // it degrades to sequential writes of each slice.
            Stream::Chaos(s) => {
                let mut n = 0;
                for buf in bufs {
                    let w = s.write(buf)?;
                    n += w;
                    if w < buf.len() {
                        break;
                    }
                }
                Ok(n)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Mem(s) => s.flush(),
            Stream::Chaos(s) => s.flush(),
        }
    }
}

/// A listening endpoint accepting [`Stream`]s.
#[derive(Debug)]
pub enum Listener {
    /// Bound TCP listener.
    Tcp(TcpListener),
    /// Registered in-memory endpoint.
    Mem(MemListener),
}

impl Listener {
    /// Binds a listener at `addr`.
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be parsed, the TCP port cannot be bound,
    /// or an in-memory endpoint with the same name is already registered.
    pub fn bind(addr: &str) -> Result<Listener, HttpError> {
        match Addr::parse(addr)? {
            Addr::Tcp(a) => {
                let l = TcpListener::bind(&a).map_err(HttpError::Io)?;
                Ok(Listener::Tcp(l))
            }
            Addr::Mem(name) => Ok(Listener::Mem(mem_registry().bind(&name)?)),
        }
    }

    /// The effective local address (with the OS-assigned port for
    /// `tcp://...:0` binds).
    pub fn local_addr(&self) -> Addr {
        match self {
            Listener::Tcp(l) => Addr::Tcp(
                l.local_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "unknown".into()),
            ),
            Listener::Mem(l) => Addr::Mem(l.name.clone()),
        }
    }

    /// Blocks until a client connects.
    ///
    /// When a [`crate::fault`] plan is installed, accept-side rules are
    /// rolled per accepted connection: refused connections are closed
    /// immediately (and the accept loop continues), others may be
    /// delayed or wrapped in a chaos stream.
    ///
    /// # Errors
    ///
    /// Returns an error once the listener is closed.
    pub fn accept(&self) -> Result<Stream, HttpError> {
        loop {
            let stream = match self {
                Listener::Tcp(l) => {
                    let (s, _) = l.accept().map_err(HttpError::Io)?;
                    s.set_nodelay(true).ok();
                    Stream::Tcp(s)
                }
                Listener::Mem(l) => l.accept()?,
            };
            if fault::active() {
                match fault::inject(&self.local_addr().to_string(), FaultSide::Accept) {
                    Some(Injected::Refuse) => {
                        stream.shutdown();
                        continue;
                    }
                    Some(Injected::Delay(d)) => {
                        std::thread::sleep(d);
                        return Ok(stream);
                    }
                    Some(Injected::Wrap(mode)) => return Ok(fault::wrap(stream, mode)),
                    None => {}
                }
            }
            return Ok(stream);
        }
    }

    /// Closes the listener; pending and future `accept` calls fail, and for
    /// in-memory endpoints the name is released.
    ///
    /// For TCP this must genuinely stop the socket from accepting, not
    /// merely wake the accept loop: a listener left in `LISTEN` state
    /// keeps completing handshakes into the kernel backlog, so a dead
    /// server still looks alive to connect-only health probes.
    pub fn close(&self) {
        match self {
            Listener::Tcp(l) => {
                // `shutdown(2)` on the listening socket makes the kernel
                // refuse new connects and wakes a thread blocked in
                // `accept` (EINVAL) — without closing the fd out from
                // under that thread.
                #[cfg(unix)]
                {
                    use std::os::unix::io::AsRawFd;
                    sys_shutdown_socket(l.as_raw_fd());
                }
                // Elsewhere `shutdown` on a listening socket is not
                // portable (POSIX says ENOTCONN); fall back to waking
                // the accept loop, which then sees the shutdown flag.
                #[cfg(not(unix))]
                if let Ok(a) = l.local_addr() {
                    let _ = TcpStream::connect_timeout(&a, Duration::from_millis(100));
                }
            }
            Listener::Mem(l) => l.close(),
        }
    }
}

/// Raw `shutdown(2)`. The workspace is dependency-free by design, so
/// the symbol is declared directly — it comes from the libc `std`
/// already links against (same pattern as `reactor::sys`).
#[cfg(unix)]
fn sys_shutdown_socket(fd: std::os::unix::io::RawFd) {
    const SHUT_RDWR: i32 = 2;
    extern "C" {
        fn shutdown(fd: i32, how: i32) -> i32;
    }
    // SAFETY: plain syscall on a live fd owned by the caller; no
    // pointers involved. Failure (e.g. already shut down) is benign.
    unsafe { shutdown(fd, SHUT_RDWR) };
}

/// Connects to a listening endpoint.
///
/// # Errors
///
/// Fails if the address is malformed or nothing is listening there.
pub fn connect(addr: &str) -> Result<Stream, HttpError> {
    connect_with(addr, None)
}

/// Connects to a listening endpoint, applying `read_timeout` to the
/// stream before it is handed out — a peer that accepts and never
/// responds then surfaces as [`HttpError::Timeout`] instead of a hang.
///
/// When a [`crate::fault`] plan is installed, connect-side rules are
/// rolled here: the connection may be refused, delayed, or wrapped in a
/// chaos stream.
///
/// # Errors
///
/// Fails if the address is malformed or nothing is listening there.
pub fn connect_with(addr: &str, read_timeout: Option<Duration>) -> Result<Stream, HttpError> {
    let parsed = Addr::parse(addr)?;
    // The chaos fast path: one relaxed load when no plan is installed.
    let injected = if fault::active() {
        fault::inject(&parsed.to_string(), FaultSide::Connect)
    } else {
        None
    };
    if let Some(Injected::Refuse) = injected {
        return Err(HttpError::ConnectionRefused(parsed.to_string()));
    }
    if let Some(Injected::Delay(d)) = &injected {
        std::thread::sleep(*d);
    }
    let mut stream = match parsed {
        Addr::Tcp(a) => {
            obs::registry()
                .counter_with("http_connects_total", &[("transport", "tcp")])
                .inc();
            let s = TcpStream::connect(&a).map_err(HttpError::Io)?;
            s.set_nodelay(true).ok();
            Stream::Tcp(s)
        }
        Addr::Mem(name) => {
            obs::registry()
                .counter_with("http_connects_total", &[("transport", "mem")])
                .inc();
            mem_registry().connect(&name)?
        }
    };
    if let Some(Injected::Wrap(mode)) = injected {
        stream = fault::wrap(stream, mode);
    }
    if let Some(t) = read_timeout {
        stream.set_read_timeout(Some(t)).map_err(HttpError::Io)?;
    }
    Ok(stream)
}

// ---------------------------------------------------------------------------
// In-memory transport
// ---------------------------------------------------------------------------

/// One direction of a duplex in-memory connection.
#[derive(Debug, Default)]
struct Pipe {
    state: Mutex<PipeState>,
    cond: Condvar,
}

#[derive(Debug, Default)]
struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

impl Pipe {
    fn write(&self, data: &[u8]) -> io::Result<usize> {
        let mut st = self.state.lock();
        if st.closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed"));
        }
        st.buf.extend(data);
        self.cond.notify_all();
        Ok(data.len())
    }

    fn read(&self, buf: &mut [u8], timeout: Option<Duration>) -> io::Result<usize> {
        let mut st = self.state.lock();
        loop {
            if !st.buf.is_empty() {
                let n = buf.len().min(st.buf.len());
                for slot in buf.iter_mut().take(n) {
                    *slot = st.buf.pop_front().expect("len checked");
                }
                return Ok(n);
            }
            if st.closed {
                return Ok(0); // EOF
            }
            match timeout {
                Some(t) => {
                    if self.cond.wait_for(&mut st, t).timed_out() && st.buf.is_empty() && !st.closed
                    {
                        return Err(io::Error::new(io::ErrorKind::WouldBlock, "read timed out"));
                    }
                }
                None => self.cond.wait(&mut st),
            }
        }
    }

    fn close(&self) {
        self.state.lock().closed = true;
        self.cond.notify_all();
    }
}

/// An in-memory duplex byte stream (one endpoint of a connection).
#[derive(Debug, Clone)]
pub struct MemStream {
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
    read_timeout: Option<Duration>,
}

impl MemStream {
    /// Creates a connected pair of in-memory streams.
    pub fn pair() -> (MemStream, MemStream) {
        let a = Arc::new(Pipe::default());
        let b = Arc::new(Pipe::default());
        (
            MemStream {
                rx: a.clone(),
                tx: b.clone(),
                read_timeout: None,
            },
            MemStream {
                rx: b,
                tx: a,
                read_timeout: None,
            },
        )
    }

    fn close(&self) {
        self.rx.close();
        self.tx.close();
    }
}

impl Read for MemStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.rx.read(buf, self.read_timeout)
    }
}

impl Write for MemStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.tx.write(buf)
    }

    fn write_vectored(&mut self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
        // All slices land under one lock acquisition and one reader
        // wakeup — the in-memory analogue of a single writev syscall.
        let mut st = self.tx.state.lock();
        if st.closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed"));
        }
        let mut n = 0;
        for buf in bufs {
            st.buf.extend(buf.iter().copied());
            n += buf.len();
        }
        self.tx.cond.notify_all();
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The accepting side of a registered `mem://` endpoint.
#[derive(Debug)]
pub struct MemListener {
    name: String,
    inbox: Arc<MemInbox>,
}

#[derive(Debug, Default)]
struct MemInbox {
    state: Mutex<MemInboxState>,
    cond: Condvar,
}

#[derive(Debug, Default)]
struct MemInboxState {
    pending: VecDeque<MemStream>,
    closed: bool,
}

impl MemListener {
    fn accept(&self) -> Result<Stream, HttpError> {
        let mut st = self.inbox.state.lock();
        loop {
            if let Some(s) = st.pending.pop_front() {
                return Ok(Stream::Mem(s));
            }
            if st.closed {
                return Err(HttpError::ListenerClosed);
            }
            self.inbox.cond.wait(&mut st);
        }
    }

    fn close(&self) {
        {
            let mut st = self.inbox.state.lock();
            st.closed = true;
        }
        self.inbox.cond.notify_all();
        mem_registry().unbind(&self.name, &self.inbox);
    }
}

impl Drop for MemListener {
    fn drop(&mut self) {
        self.close();
    }
}

/// Process-global registry of named in-memory endpoints.
#[derive(Debug, Default)]
struct MemRegistry {
    endpoints: Mutex<HashMap<String, Arc<MemInbox>>>,
}

impl MemRegistry {
    fn bind(&self, name: &str) -> Result<MemListener, HttpError> {
        let mut eps = self.endpoints.lock();
        if eps.contains_key(name) {
            return Err(HttpError::AddressInUse(name.to_string()));
        }
        let inbox = Arc::new(MemInbox::default());
        eps.insert(name.to_string(), inbox.clone());
        Ok(MemListener {
            name: name.to_string(),
            inbox,
        })
    }

    fn unbind(&self, name: &str, inbox: &Arc<MemInbox>) {
        // Identity-checked: a late drop of a listener that was already
        // replaced (server restarted at the same address) must not tear
        // down its successor's binding.
        let mut eps = self.endpoints.lock();
        if eps.get(name).is_some_and(|cur| Arc::ptr_eq(cur, inbox)) {
            eps.remove(name);
        }
    }

    fn connect(&self, name: &str) -> Result<Stream, HttpError> {
        let inbox = self
            .endpoints
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| HttpError::ConnectionRefused(name.to_string()))?;
        let (client, server) = MemStream::pair();
        {
            let mut st = inbox.state.lock();
            if st.closed {
                return Err(HttpError::ConnectionRefused(name.to_string()));
            }
            st.pending.push_back(server);
        }
        inbox.cond.notify_all();
        Ok(Stream::Mem(client))
    }
}

fn mem_registry() -> &'static MemRegistry {
    use std::sync::OnceLock;
    static REGISTRY: OnceLock<MemRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MemRegistry::default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn addr_parsing() {
        assert_eq!(
            Addr::parse("tcp://127.0.0.1:80").unwrap(),
            Addr::Tcp("127.0.0.1:80".into())
        );
        assert_eq!(Addr::parse("mem://x").unwrap(), Addr::Mem("x".into()));
        assert_eq!(
            Addr::parse("mem://x/path/ignored").unwrap(),
            Addr::Mem("x".into())
        );
        assert_eq!(
            Addr::parse("http://h:1/p").unwrap(),
            Addr::Tcp("h:1".into())
        );
        assert!(Addr::parse("ftp://x").is_err());
        assert!(Addr::parse("mem://").is_err());
        assert!(Addr::parse("").is_err());
    }

    #[test]
    fn addr_display_roundtrip() {
        for s in ["tcp://1.2.3.4:5", "mem://svc"] {
            assert_eq!(Addr::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn mem_pair_duplex() {
        let (mut a, mut b) = MemStream::pair();
        a.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        b.write_all(b"pong").unwrap();
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn mem_listener_accept_connect() {
        let l = Listener::bind("mem://t-accept").unwrap();
        let t = thread::spawn(move || {
            let mut s = l.accept().unwrap();
            let mut buf = [0u8; 2];
            s.read_exact(&mut buf).unwrap();
            s.write_all(&buf).unwrap();
            l.close();
        });
        let mut c = connect("mem://t-accept").unwrap();
        c.write_all(b"ok").unwrap();
        let mut buf = [0u8; 2];
        c.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ok");
        t.join().unwrap();
    }

    #[test]
    fn mem_connect_refused_when_unbound() {
        assert!(matches!(
            connect("mem://nobody-here"),
            Err(HttpError::ConnectionRefused(_))
        ));
    }

    #[test]
    fn mem_double_bind_rejected() {
        let _l = Listener::bind("mem://t-dup").unwrap();
        assert!(matches!(
            Listener::bind("mem://t-dup"),
            Err(HttpError::AddressInUse(_))
        ));
    }

    #[test]
    fn mem_name_released_on_close() {
        let l = Listener::bind("mem://t-release").unwrap();
        l.close();
        let _l2 = Listener::bind("mem://t-release").unwrap();
    }

    #[test]
    fn mem_eof_after_peer_close() {
        let (mut a, b) = MemStream::pair();
        b.close();
        let mut buf = [0u8; 1];
        assert_eq!(a.read(&mut buf).unwrap(), 0);
        assert!(a.write(b"x").is_err());
    }

    #[test]
    fn mem_read_timeout() {
        let (a, _b) = MemStream::pair();
        let mut s = Stream::Mem(a);
        s.set_read_timeout(Some(Duration::from_millis(20))).unwrap();
        let mut buf = [0u8; 1];
        let err = s.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }

    #[test]
    fn tcp_roundtrip() {
        let l = Listener::bind("tcp://127.0.0.1:0").unwrap();
        let addr = l.local_addr().to_string();
        let t = thread::spawn(move || {
            let mut s = l.accept().unwrap();
            let mut buf = [0u8; 5];
            s.read_exact(&mut buf).unwrap();
            s.write_all(&buf).unwrap();
        });
        let mut c = connect(&addr).unwrap();
        c.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        c.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        t.join().unwrap();
    }

    #[test]
    fn stream_clone_shares_connection() {
        let (a, mut b) = MemStream::pair();
        let s = Stream::Mem(a);
        let mut s2 = s.try_clone().unwrap();
        s2.write_all(b"x").unwrap();
        let mut buf = [0u8; 1];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"x");
    }

    #[test]
    fn large_transfer_through_mem_pipe() {
        let (mut a, mut b) = MemStream::pair();
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let data2 = data.clone();
        let t = thread::spawn(move || {
            a.write_all(&data2).unwrap();
            a.close();
        });
        let mut got = Vec::new();
        b.read_to_end(&mut got).unwrap();
        assert_eq!(got, data);
        t.join().unwrap();
    }
}
