//! A per-authority keep-alive connection pool.
//!
//! [`ConnectionPool`] caches idle [`Connection`]s keyed by authority
//! (`scheme://host`) so steady-state RMI traffic reuses sockets instead
//! of paying a connect per call. The pool is bounded (at most
//! [`ConnectionPool::with_max_idle`] idle connections per authority) and
//! self-healing: a pooled connection that fails — the server restarted,
//! or an idle socket was closed under us — is dropped and the request is
//! retried once on a fresh connection. A failure on the *fresh*
//! connection propagates to the caller, where the resilience layer's
//! retries and circuit breaker take over.
//!
//! The checkout/checkin discipline holds the lock only to pop or park a
//! connection; the request itself runs outside the lock, so concurrent
//! callers to one authority simply fan out over separate connections.
//!
//! Observability: `wire_pool_hits_total` counts requests served on a
//! reused connection (a stale hit that falls back to a fresh socket
//! counts as both a hit and a miss), `wire_pool_misses_total` counts
//! fresh connects.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::client::{Connection, HttpClient};
use crate::error::HttpError;
use crate::message::{Request, Response};

fn pool_counters() -> &'static (Arc<obs::Counter>, Arc<obs::Counter>) {
    static COUNTERS: std::sync::OnceLock<(Arc<obs::Counter>, Arc<obs::Counter>)> =
        std::sync::OnceLock::new();
    COUNTERS.get_or_init(|| {
        let r = obs::registry();
        (
            r.counter("wire_pool_hits_total"),
            r.counter("wire_pool_misses_total"),
        )
    })
}

/// A bounded keep-alive connection pool keyed by authority.
#[derive(Debug)]
pub struct ConnectionPool {
    client: HttpClient,
    max_idle_per_authority: usize,
    idle: Mutex<HashMap<String, Vec<Connection>>>,
}

impl ConnectionPool {
    /// Creates a pool whose fresh connections are opened by `client`
    /// (carrying its read timeout), keeping at most 2 idle connections
    /// per authority.
    pub fn new(client: HttpClient) -> ConnectionPool {
        ConnectionPool {
            client,
            max_idle_per_authority: 2,
            idle: Mutex::new(HashMap::new()),
        }
    }

    /// Sets the idle-connection bound per authority. `0` disables
    /// pooling (every request connects fresh).
    pub fn with_max_idle(mut self, max_idle_per_authority: usize) -> ConnectionPool {
        self.max_idle_per_authority = max_idle_per_authority;
        self
    }

    /// Sends `req` to `authority` (`scheme://host` — any path component
    /// is ignored), reusing an idle pooled connection when one exists.
    ///
    /// A send failure on a pooled connection is retried once on a fresh
    /// connection — the idle socket may have died while parked (server
    /// restart, keep-alive timeout) without the request being at fault.
    ///
    /// # Errors
    ///
    /// Fails when the fresh connect or the request on a fresh
    /// connection fails; such errors are the caller's (and its circuit
    /// breaker's) to handle.
    pub fn send(&self, authority: &str, req: &Request) -> Result<Response, HttpError> {
        let (hits, misses) = pool_counters();
        if let Some(mut conn) = self.checkout(authority) {
            hits.inc();
            if let Ok(resp) = conn.send(req) {
                self.checkin(authority, conn, &resp);
                return Ok(resp);
            }
            // Stale pooled connection: drop it and fall through to a
            // fresh socket.
        }
        misses.inc();
        let mut conn = self.client.connect(authority)?;
        let resp = conn.send(req)?;
        self.checkin(authority, conn, &resp);
        Ok(resp)
    }

    fn checkout(&self, authority: &str) -> Option<Connection> {
        // Chaos compatibility: fault plans roll once per *connection*
        // (see [`crate::fault`]), so reusing long-lived pooled sockets
        // would let steady-state traffic dodge injection entirely and
        // make configured fault rates meaningless. Under an active plan
        // the pool degrades to a connect per request; the flag check is
        // one relaxed load, free on the production path.
        if crate::fault::active() {
            self.purge(authority);
            return None;
        }
        self.idle
            .lock()
            .expect("pool lock")
            .get_mut(authority)?
            .pop()
    }

    fn checkin(&self, authority: &str, conn: Connection, resp: &Response) {
        if self.max_idle_per_authority == 0 {
            return;
        }
        // The server told us it is closing this connection — parking it
        // would only produce a guaranteed-stale hit later.
        if resp
            .headers()
            .get("Connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
        {
            return;
        }
        let mut idle = self.idle.lock().expect("pool lock");
        match idle.get_mut(authority) {
            Some(list) => {
                if list.len() < self.max_idle_per_authority {
                    list.push(conn);
                }
            }
            // First park for this authority is the only allocating path.
            None => {
                idle.insert(authority.to_string(), vec![conn]);
            }
        }
    }

    /// Drops all idle connections for `authority` (e.g. after the
    /// endpoint moved on an interface refresh).
    pub fn purge(&self, authority: &str) {
        self.idle.lock().expect("pool lock").remove(authority);
    }

    /// Drops every idle connection.
    pub fn purge_all(&self) {
        self.idle.lock().expect("pool lock").clear();
    }

    /// Number of idle connections currently parked for `authority`.
    pub fn idle_count(&self, authority: &str) -> usize {
        self.idle
            .lock()
            .expect("pool lock")
            .get(authority)
            .map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Response;
    use crate::server::{Handler, HttpServer};

    struct Echo;
    impl Handler for Echo {
        fn handle(&self, req: &Request) -> Response {
            Response::ok(req.body().to_vec(), "text/plain")
        }
    }

    #[test]
    fn sequential_requests_reuse_one_connection() {
        let server = HttpServer::bind("mem://pool-reuse", Echo).unwrap();
        let pool = ConnectionPool::new(HttpClient::new());
        let (hits, misses) = pool_counters();
        let (h0, m0) = (hits.get(), misses.get());
        for i in 0..5 {
            let req = Request::post("/", format!("r{i}").into_bytes(), "text/plain");
            let resp = pool.send(&server.base_url(), &req).unwrap();
            assert_eq!(resp.body(), format!("r{i}").as_bytes());
        }
        assert_eq!(pool.idle_count(&server.base_url()), 1);
        assert_eq!(misses.get() - m0, 1, "one fresh connect");
        assert_eq!(hits.get() - h0, 4, "four reuses");
        server.shutdown();
    }

    #[test]
    fn server_restart_is_transparent() {
        let server = HttpServer::bind("mem://pool-restart", Echo).unwrap();
        let pool = ConnectionPool::new(HttpClient::new());
        let url = server.base_url().to_string();
        let req = Request::post("/", b"a".to_vec(), "text/plain");
        pool.send(&url, &req).unwrap();
        server.shutdown();
        // The parked connection is now dead; a new server comes up at
        // the same authority.
        let server = HttpServer::bind("mem://pool-restart", Echo).unwrap();
        let resp = pool.send(&url, &req).unwrap();
        assert_eq!(resp.body(), b"a");
        server.shutdown();
    }

    #[test]
    fn idle_bound_is_enforced() {
        let server = HttpServer::bind("mem://pool-bound", Echo).unwrap();
        let pool = ConnectionPool::new(HttpClient::new()).with_max_idle(1);
        let url = server.base_url().to_string();
        // Two concurrent checkouts force two live connections; only one
        // may park afterwards.
        let c1 = pool.checkout(&url);
        assert!(c1.is_none(), "pool starts empty");
        let req = Request::get("/");
        let mut a = pool.client.connect(&url).unwrap();
        let ra = a.send(&req).unwrap();
        let mut b = pool.client.connect(&url).unwrap();
        let rb = b.send(&req).unwrap();
        pool.checkin(&url, a, &ra);
        pool.checkin(&url, b, &rb);
        assert_eq!(pool.idle_count(&url), 1);
        pool.purge(&url);
        assert_eq!(pool.idle_count(&url), 0);
        server.shutdown();
    }

    #[test]
    fn max_idle_zero_disables_pooling() {
        let server = HttpServer::bind("mem://pool-off", Echo).unwrap();
        let pool = ConnectionPool::new(HttpClient::new()).with_max_idle(0);
        let req = Request::get("/");
        pool.send(&server.base_url(), &req).unwrap();
        pool.send(&server.base_url(), &req).unwrap();
        assert_eq!(pool.idle_count(&server.base_url()), 0);
        server.shutdown();
    }
}
