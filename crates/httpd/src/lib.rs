//! # httpd — minimal HTTP/1.1 stack over pluggable transports
//!
//! The paper's SDE publishes WSDL/IDL/IOR documents through an "Interface
//! Server" (a simple HTTP server) and serves SOAP calls over HTTP, exactly
//! as Apache Axis did. This crate supplies that substrate:
//!
//! * [`transport`] — a byte-stream transport abstraction with two
//!   implementations: real TCP (used by the benchmark harness, mirroring
//!   the paper's LAN testbed) and a deterministic in-memory duplex pipe
//!   (used by tests and the consistency-matrix experiments),
//! * [`Request`] / [`Response`] — HTTP/1.1 message types with parsing and
//!   serialization,
//! * [`HttpServer`] — a threaded server dispatching to a [`Handler`],
//! * [`HttpClient`] — a blocking client.
//!
//! # Examples
//!
//! ```
//! use httpd::{Handler, HttpClient, HttpServer, Request, Response};
//!
//! # fn main() -> Result<(), httpd::HttpError> {
//! struct Hello;
//! impl Handler for Hello {
//!     fn handle(&self, req: &Request) -> Response {
//!         Response::ok(format!("hello {}", req.path()).into_bytes(), "text/plain")
//!     }
//! }
//!
//! let server = HttpServer::bind("mem://doc-example", Hello)?;
//! let resp = HttpClient::new().get(&format!("{}/world", server.base_url()))?;
//! assert_eq!(resp.status(), 200);
//! assert_eq!(resp.body_str(), "hello /world");
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

mod client;
mod error;
pub mod fault;
mod message;
mod pool;
#[cfg(target_os = "linux")]
mod rserver;
mod server;
pub mod transport;

pub use client::{Connection, HttpClient};
pub use error::HttpError;
pub use fault::{FaultKind, FaultPlan, FaultRule, FaultSide};
pub use message::{Headers, Limits, Method, Request, Response, Status};
pub use pool::ConnectionPool;
pub use server::{Handler, HttpServer, PoolConfig, ServerGate};
