//! A blocking HTTP/1.1 client.

use std::io::BufReader;
use std::time::Duration;

use crate::error::HttpError;
use crate::message::{Request, Response};
use crate::transport::{connect_with, Stream};

/// A blocking HTTP client.
///
/// URLs use the transport address syntax (`tcp://host:port/path`,
/// `mem://name/path`, or `http://host:port/path`). Each call of
/// [`HttpClient::get`]/[`HttpClient::post`] opens a fresh connection; use
/// [`HttpClient::connect`] for keep-alive request sequences (the RTT
/// benchmark uses this, mirroring the persistent connections of the
/// paper's Axis client).
#[derive(Debug, Clone)]
pub struct HttpClient {
    read_timeout: Option<Duration>,
}

impl HttpClient {
    /// Creates a client with no read timeout.
    pub fn new() -> HttpClient {
        HttpClient { read_timeout: None }
    }

    /// Sets a read timeout applied to response reads.
    pub fn with_read_timeout(mut self, timeout: Duration) -> HttpClient {
        self.read_timeout = Some(timeout);
        self
    }

    /// Performs a `GET` on `url`.
    ///
    /// # Errors
    ///
    /// Fails on connection errors or malformed responses. Non-2xx statuses
    /// are returned as successful [`Response`]s — SOAP faults ride on 500.
    pub fn get(&self, url: &str) -> Result<Response, HttpError> {
        let (addr, path) = split_url(url)?;
        let mut conn = self.open(&addr)?;
        conn.send(&Request::get(path))
    }

    /// Performs a `HEAD` on `url` (headers only; the body is never read
    /// even when `Content-Length` is advertised).
    ///
    /// # Errors
    ///
    /// Same as [`HttpClient::get`].
    pub fn head(&self, url: &str) -> Result<Response, HttpError> {
        let (addr, path) = split_url(url)?;
        let mut conn = self.open(&addr)?;
        conn.send(&Request::head(path))
    }

    /// Performs a `POST` of `body` on `url`.
    ///
    /// # Errors
    ///
    /// Same as [`HttpClient::get`].
    pub fn post(
        &self,
        url: &str,
        body: Vec<u8>,
        content_type: &str,
    ) -> Result<Response, HttpError> {
        let (addr, path) = split_url(url)?;
        let mut conn = self.open(&addr)?;
        conn.send(&Request::post(path, body, content_type))
    }

    /// Opens a keep-alive connection to the authority part of `url`
    /// (any path component is ignored).
    ///
    /// # Errors
    ///
    /// Fails if the connection cannot be established.
    pub fn connect(&self, url: &str) -> Result<Connection, HttpError> {
        let (addr, _) = split_url(url)?;
        self.open(&addr)
    }

    fn open(&self, addr: &str) -> Result<Connection, HttpError> {
        // The timeout rides through the transport layer so every stream
        // flavour (TCP, mem, chaos-wrapped) honors it; a server that
        // accepts and never responds surfaces as `HttpError::Timeout`.
        let stream = connect_with(addr, self.read_timeout)?;
        let write_half = stream.try_clone().map_err(HttpError::Io)?;
        Ok(Connection {
            reader: BufReader::new(stream),
            writer: write_half,
        })
    }
}

impl Default for HttpClient {
    fn default() -> Self {
        Self::new()
    }
}

/// A keep-alive HTTP connection created by [`HttpClient::connect`].
#[derive(Debug)]
pub struct Connection {
    reader: BufReader<Stream>,
    writer: Stream,
}

impl Connection {
    /// Sends `req` and reads the response.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a malformed response; the connection should
    /// be dropped afterwards.
    pub fn send(&mut self, req: &Request) -> Result<Response, HttpError> {
        if let Err(e) = req.write_to(&mut self.writer) {
            // The server may have answered and closed before consuming
            // the request (e.g. 503 load shedding); prefer its response
            // over the broken-pipe write error.
            return self.read_response(req).map_err(|_| e);
        }
        self.read_response(req)
    }

    fn read_response(&mut self, req: &Request) -> Result<Response, HttpError> {
        if req.method() == crate::Method::Head {
            Response::read_head_from(&mut self.reader)
        } else {
            Response::read_from(&mut self.reader)
        }
    }

    /// Closes the connection (dropping it has the same effect).
    pub fn close(self) {}
}

impl Drop for Connection {
    fn drop(&mut self) {
        // Actively shut the transport down: the in-memory pipes have no
        // OS-level close-on-drop, and the server's keep-alive read must
        // see EOF promptly instead of holding a pool worker forever.
        self.reader.get_ref().shutdown();
    }
}

/// Splits `scheme://authority/path` into (`scheme://authority`, `/path`).
fn split_url(url: &str) -> Result<(String, String), HttpError> {
    let scheme_end = url
        .find("://")
        .ok_or_else(|| HttpError::BadAddress(url.to_string()))?;
    let rest = &url[scheme_end + 3..];
    match rest.find('/') {
        Some(slash) => Ok((
            url[..scheme_end + 3 + slash].to_string(),
            rest[slash..].to_string(),
        )),
        None => Ok((url.to_string(), "/".to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_url_variants() {
        assert_eq!(
            split_url("tcp://h:1/a/b").unwrap(),
            ("tcp://h:1".into(), "/a/b".into())
        );
        assert_eq!(
            split_url("mem://name").unwrap(),
            ("mem://name".into(), "/".into())
        );
        assert_eq!(
            split_url("http://h:1/").unwrap(),
            ("http://h:1".into(), "/".into())
        );
        assert!(split_url("no-scheme").is_err());
    }

    #[test]
    fn get_against_missing_endpoint_fails() {
        let err = HttpClient::new().get("mem://definitely-missing/x");
        assert!(err.is_err());
    }
}
