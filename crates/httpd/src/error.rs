use std::error::Error;
use std::fmt;
use std::io;

/// Error produced by the HTTP stack or the underlying transport.
#[derive(Debug)]
pub enum HttpError {
    /// Underlying transport I/O failure.
    Io(io::Error),
    /// Address string could not be parsed (`tcp://...`, `mem://...`).
    BadAddress(String),
    /// `mem://` endpoint name already registered, or TCP port taken.
    AddressInUse(String),
    /// Nothing is listening at the target address.
    ConnectionRefused(String),
    /// The listener was closed while accepting.
    ListenerClosed,
    /// The peer sent bytes that do not form a valid HTTP/1.1 message.
    Malformed(String),
    /// The peer closed the connection before a complete message arrived.
    UnexpectedEof,
    /// A read or write deadline elapsed before the peer produced a
    /// complete message (e.g. a server that accepts but never responds).
    Timeout,
    /// Response carried an unexpected HTTP status.
    Status(u16, String),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "transport i/o error: {e}"),
            HttpError::BadAddress(a) => write!(f, "invalid transport address {a:?}"),
            HttpError::AddressInUse(a) => write!(f, "address already in use: {a}"),
            HttpError::ConnectionRefused(a) => write!(f, "connection refused: {a}"),
            HttpError::ListenerClosed => write!(f, "listener closed"),
            HttpError::Malformed(m) => write!(f, "malformed http message: {m}"),
            HttpError::UnexpectedEof => write!(f, "connection closed mid-message"),
            HttpError::Timeout => write!(f, "operation timed out"),
            HttpError::Status(code, body) => write!(f, "unexpected http status {code}: {body}"),
        }
    }
}

impl Error for HttpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HttpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::UnexpectedEof => HttpError::UnexpectedEof,
            // Both kinds occur in the wild: WouldBlock from socket read
            // timeouts on unix (and the in-memory transport), TimedOut
            // on other platforms.
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::Timeout,
            _ => HttpError::Io(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(HttpError::BadAddress("x".into()).to_string().contains("x"));
        assert!(HttpError::Status(500, "boom".into())
            .to_string()
            .contains("500"));
    }

    #[test]
    fn io_eof_maps_to_unexpected_eof() {
        let e: HttpError = io::Error::new(io::ErrorKind::UnexpectedEof, "eof").into();
        assert!(matches!(e, HttpError::UnexpectedEof));
    }

    #[test]
    fn io_timeouts_map_to_typed_timeout() {
        for kind in [io::ErrorKind::WouldBlock, io::ErrorKind::TimedOut] {
            let e: HttpError = io::Error::new(kind, "slow").into();
            assert!(matches!(e, HttpError::Timeout), "{kind:?}");
        }
    }

    #[test]
    fn error_traits() {
        fn assert_traits<T: Send + Sync + Error + 'static>() {}
        assert_traits::<HttpError>();
    }
}
