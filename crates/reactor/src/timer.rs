//! A hashed timer wheel for connection deadlines.
//!
//! The reactor arms at most one timer per connection (idle deadline,
//! request-read deadline, or a chaos delay), so the wheel optimizes for
//! cheap arm/disarm at modest precision: slots of [`TICK`] granularity,
//! entries hashed into `deadline / TICK % SLOTS`, and an overflow list
//! for deadlines beyond one rotation. Deadlines fire at worst one tick
//! late, which is ample for multi-millisecond I/O timeouts.
//!
//! Cancellation is implicit: entries carry the generation the owner
//! armed them with, and the reactor discards fired entries whose
//! generation no longer matches (the cheap alternative to searching the
//! wheel on every disarm).

use std::time::{Duration, Instant};

/// Wheel granularity. Deadlines are rounded up to the next tick.
pub const TICK: Duration = Duration::from_millis(8);

const SLOTS: usize = 512;

#[derive(Debug, Clone, Copy)]
struct Entry {
    deadline_tick: u64,
    token: u64,
    generation: u64,
}

/// A fired timer: which registration, and the generation it was armed
/// under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fired {
    pub token: u64,
    pub generation: u64,
}

#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    /// Entries more than one rotation away; re-filed as the wheel turns.
    overflow: Vec<Entry>,
    base: Instant,
    /// The next tick `advance` will process.
    cursor: u64,
    armed: usize,
}

impl TimerWheel {
    pub fn new(base: Instant) -> TimerWheel {
        TimerWheel {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            base,
            cursor: 0,
            armed: 0,
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let since = at.saturating_duration_since(self.base);
        // Round up: a deadline must never fire early.
        since.as_micros().div_ceil(TICK.as_micros()) as u64
    }

    /// Arms a timer for `token` at `deadline`, tagged with `generation`.
    pub fn schedule(&mut self, deadline: Instant, token: u64, generation: u64) {
        let deadline_tick = self.tick_of(deadline).max(self.cursor);
        let entry = Entry {
            deadline_tick,
            token,
            generation,
        };
        self.armed += 1;
        if deadline_tick >= self.cursor + SLOTS as u64 {
            self.overflow.push(entry);
        } else {
            self.slots[(deadline_tick % SLOTS as u64) as usize].push(entry);
        }
    }

    /// Whether any timer is armed (fired-but-stale entries included
    /// until they rotate out).
    pub fn is_empty(&self) -> bool {
        self.armed == 0
    }

    /// How long `epoll_wait` may block without missing a deadline:
    /// `None` when no timers are armed (block forever), otherwise the
    /// time to the next armed tick, clamped below by zero.
    pub fn next_timeout(&self, now: Instant) -> Option<Duration> {
        if self.armed == 0 {
            return None;
        }
        // Nearest armed tick: scan slots from the cursor. SLOTS is
        // small (512) and this runs once per loop iteration only while
        // timers are armed.
        let now_tick = self.tick_of(now);
        let mut nearest: Option<u64> = None;
        for e in self.slots.iter().flatten().chain(self.overflow.iter()) {
            nearest = Some(nearest.map_or(e.deadline_tick, |n| n.min(e.deadline_tick)));
        }
        let nearest = nearest?;
        if nearest <= now_tick {
            return Some(Duration::ZERO);
        }
        let target = self.base + TICK * nearest as u32;
        Some(target.saturating_duration_since(now))
    }

    /// Collects every entry due at or before `now` into `fired`,
    /// advancing the wheel cursor.
    pub fn advance(&mut self, now: Instant, fired: &mut Vec<Fired>) {
        let now_tick = self.tick_of(now);
        if self.armed == 0 {
            self.cursor = now_tick;
            return;
        }
        // Bound the walk to one full rotation; beyond that every slot
        // has been visited once and the overflow refile below covers
        // the rest.
        let last = now_tick.min(self.cursor + SLOTS as u64 - 1);
        let mut tick = self.cursor;
        while tick <= last {
            let slot = &mut self.slots[(tick % SLOTS as u64) as usize];
            let mut i = 0;
            while i < slot.len() {
                if slot[i].deadline_tick <= now_tick {
                    let e = slot.swap_remove(i);
                    self.armed -= 1;
                    fired.push(Fired {
                        token: e.token,
                        generation: e.generation,
                    });
                } else {
                    i += 1;
                }
            }
            tick += 1;
        }
        self.cursor = now_tick + 1;
        // Re-file overflow entries that are now within one rotation
        // (or already due).
        let mut i = 0;
        while i < self.overflow.len() {
            let e = self.overflow[i];
            if e.deadline_tick <= now_tick {
                self.overflow.swap_remove(i);
                self.armed -= 1;
                fired.push(Fired {
                    token: e.token,
                    generation: e.generation,
                });
            } else if e.deadline_tick < self.cursor + SLOTS as u64 {
                self.overflow.swap_remove(i);
                self.slots[(e.deadline_tick % SLOTS as u64) as usize].push(e);
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_at_deadline_not_before() {
        let base = Instant::now();
        let mut w = TimerWheel::new(base);
        w.schedule(base + Duration::from_millis(50), 1, 10);
        let mut fired = Vec::new();
        w.advance(base + Duration::from_millis(20), &mut fired);
        assert!(fired.is_empty(), "fired early: {fired:?}");
        w.advance(base + Duration::from_millis(80), &mut fired);
        assert_eq!(
            fired,
            vec![Fired {
                token: 1,
                generation: 10
            }]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn overflow_beyond_one_rotation_still_fires() {
        let base = Instant::now();
        let mut w = TimerWheel::new(base);
        // Far beyond SLOTS * TICK (512 * 8ms ≈ 4s).
        w.schedule(base + Duration::from_secs(10), 2, 1);
        let mut fired = Vec::new();
        w.advance(base + Duration::from_secs(5), &mut fired);
        assert!(fired.is_empty());
        w.advance(base + Duration::from_secs(11), &mut fired);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].token, 2);
    }

    #[test]
    fn next_timeout_tracks_nearest_deadline() {
        let base = Instant::now();
        let mut w = TimerWheel::new(base);
        assert_eq!(w.next_timeout(base), None, "no timers: block forever");
        w.schedule(base + Duration::from_millis(100), 1, 1);
        w.schedule(base + Duration::from_millis(40), 2, 1);
        let t = w.next_timeout(base).unwrap();
        assert!(t <= Duration::from_millis(48), "{t:?}");
        assert!(t >= Duration::from_millis(30), "{t:?}");
    }

    #[test]
    fn many_timers_on_same_tick() {
        let base = Instant::now();
        let mut w = TimerWheel::new(base);
        for i in 0..1000 {
            w.schedule(base + Duration::from_millis(16), i, i);
        }
        let mut fired = Vec::new();
        w.advance(base + Duration::from_millis(24), &mut fired);
        assert_eq!(fired.len(), 1000);
    }
}
