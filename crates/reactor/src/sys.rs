//! Minimal raw-syscall FFI shim for epoll and eventfd.
//!
//! The workspace is dependency-free by design (same rule as `obs`), so
//! instead of the `libc` crate this module declares the handful of C
//! functions the reactor needs directly. The symbols come from the libc
//! `std` already links against; no new link flags are required.
//!
//! Safety notes (see also DESIGN.md "Event-driven transport core"):
//!
//! * `epoll_event` must be `#[repr(C, packed)]` on x86-64 — glibc
//!   declares it `__attribute__((packed))` there, and a mis-sized struct
//!   silently corrupts the returned event array.
//! * Every wrapper retries on `EINTR` and converts failures into
//!   `io::Error::last_os_error()`, so errno handling stays inside this
//!   module.
//! * File descriptors are owned by the safe wrappers ([`Epoll`],
//!   [`EventFd`]) and closed exactly once on drop.

#![cfg(target_os = "linux")]

use std::io;
use std::os::unix::io::RawFd;

/// One epoll event as the kernel fills it in. `data` carries the
/// registration token verbatim.
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
pub const EPOLLONESHOT: u32 = 1 << 30;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: plain syscall, no pointers involved.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        // Pre-2.6.9 kernels demanded a non-null event pointer for DEL;
        // passing one costs nothing and never hurts.
        let mut ev = EpollEvent { events: 0, data: 0 };
        cvt(unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut ev) })?;
        Ok(())
    }

    /// Waits up to `timeout_ms` (-1 blocks forever), filling `events`.
    /// Returns the number of ready entries; `EINTR` is retried.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: the out-array pointer and capacity come from a
            // live slice; the kernel writes at most `len` entries.
            let n = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: fd is owned by this struct and closed exactly once.
        unsafe { close(self.fd) };
    }
}

/// An owned eventfd used to wake a blocked `epoll_wait` from other
/// threads (the reactor's cross-thread doorbell).
#[derive(Debug)]
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    pub fn new() -> io::Result<EventFd> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd { fd })
    }

    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Rings the doorbell. Failure is ignored on purpose: the only
    /// error a nonblocking eventfd write can return is `EAGAIN` when
    /// the counter is already saturated — the wakeup is pending anyway.
    pub fn ring(&self) {
        let one: u64 = 1;
        // SAFETY: 8 bytes from a live stack value.
        unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Drains the counter after a wakeup.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: 8-byte out-buffer on the stack.
        unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_wakes_epoll() {
        let ep = Epoll::new().unwrap();
        let efd = EventFd::new().unwrap();
        ep.add(efd.fd(), EPOLLIN, 7).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        // Nothing pending: a zero-timeout wait returns no events.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        efd.ring();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let data = { events[0].data };
        assert_eq!(data, 7);
        efd.drain();
        // Level-triggered: drained means quiet again.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn epoll_reports_socket_readability() {
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};
        use std::os::unix::io::AsRawFd;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), EPOLLIN | EPOLLONESHOT, 42)
            .unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "no data yet");
        client.write_all(b"x").unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let data = { events[0].data };
        assert_eq!(data, 42);
        let got = { events[0].events };
        assert!(got & EPOLLIN != 0);
        // ONESHOT: the registration is disarmed until re-armed via MOD.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        ep.modify(server.as_raw_fd(), EPOLLIN | EPOLLONESHOT, 42)
            .unwrap();
        assert_eq!(ep.wait(&mut events, 1000).unwrap(), 1);
        ep.delete(server.as_raw_fd()).unwrap();
    }
}
