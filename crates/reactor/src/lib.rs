//! # reactor — dependency-free readiness-driven event loop
//!
//! The transport core behind `httpd`'s TCP engine and the server ORB:
//! instead of one blocked thread per connection, a small fixed set of
//! reactor threads multiplexes every connection through epoll. Each
//! connection is a resumable state machine (an [`EventSource`]); parked
//! idle keep-alive connections cost one registered fd and nothing else.
//!
//! Building blocks:
//!
//! * [`sys`] — a minimal raw-FFI epoll/eventfd shim (no `libc` crate;
//!   the workspace builds with zero external dependencies),
//! * [`timer`] — a hashed timer wheel for idle/read deadlines and
//!   chaos-delay timers,
//! * [`Reactor`] / [`ReactorHandle`] — one event-loop thread plus a
//!   thread-safe handle feeding it registrations, resumptions, and
//!   shutdowns through an eventfd-rung injection queue,
//! * [`pool()`] — the process-global shard set (one reactor per core,
//!   capped), with round-robin placement for accepted connections,
//! * [`DispatchPool`] — a bounded worker pool where application
//!   handlers run, so a slow handler never stalls an event loop.
//!
//! The event-source contract: callbacks run on the reactor thread and
//! must never block. Work that can block (running a request handler,
//! waiting on a publication stall) is handed to a [`DispatchPool`];
//! while dispatched the source is [`Action::Suspend`]ed — off epoll —
//! and the worker re-enters it with [`ReactorHandle::resume`].

#![cfg(target_os = "linux")]

pub mod sys;
pub mod timer;

mod dispatch;

pub use dispatch::DispatchPool;

use std::any::Any;
use std::io;
use std::os::unix::io::RawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use obs::metrics::{Counter, Gauge};
use obs::sync::{Condvar, Mutex};

use sys::{Epoll, EpollEvent, EventFd};
use timer::TimerWheel;

/// What a source wants epoll to watch for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Watch nothing (the source is parked on a timer, e.g. a
    /// chaos-delayed start or a blackholed connection).
    None,
    Read,
    Write,
    ReadWrite,
}

impl Interest {
    fn events(self) -> u32 {
        let base = sys::EPOLLONESHOT;
        match self {
            Interest::None => base,
            Interest::Read => base | sys::EPOLLIN | sys::EPOLLRDHUP,
            Interest::Write => base | sys::EPOLLOUT,
            Interest::ReadWrite => base | sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLOUT,
        }
    }
}

/// Readiness flags delivered to [`EventSource::on_ready`].
#[derive(Debug, Clone, Copy)]
pub struct Readiness {
    pub readable: bool,
    pub writable: bool,
    /// Error or hangup; the source should read to observe EOF/errno.
    pub hangup: bool,
}

/// What the source wants next, returned from every callback.
#[derive(Debug)]
pub enum Action {
    /// Stay registered with the given interest; optionally (re)arm the
    /// source's single deadline timer. Passing `None` disarms it.
    Rearm(Interest, Option<Duration>),
    /// Leave epoll until [`ReactorHandle::resume`] re-enters the
    /// source (a dispatch-pool worker owns the connection meanwhile).
    Suspend,
    /// Deregister and drop the source (dropping closes its fd).
    Close,
}

/// A registered connection/listener state machine. All callbacks run on
/// the reactor thread and must not block.
pub trait EventSource: Send {
    /// The fd to register with epoll. Must stay valid until the source
    /// is dropped.
    fn fd(&self) -> RawFd;

    /// Groups sources for [`ReactorPool::close_server`] sweeps
    /// (every source a server creates shares the server's id).
    fn server_id(&self) -> u64 {
        0
    }

    /// The fd became ready.
    fn on_ready(&mut self, ready: Readiness, ctl: &mut Ctl<'_>) -> Action;

    /// The armed deadline fired.
    fn on_timer(&mut self, ctl: &mut Ctl<'_>) -> Action;

    /// A worker re-entered the suspended source via
    /// [`ReactorHandle::resume`].
    fn on_resume(&mut self, payload: Box<dyn Any + Send>, ctl: &mut Ctl<'_>) -> Action;
}

/// Identifies a registration; stale tokens (the slot was reused) are
/// detected by generation and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token {
    index: u32,
    generation: u32,
}

impl Token {
    fn encode(self) -> u64 {
        (u64::from(self.index) << 32) | u64::from(self.generation)
    }

    fn decode(raw: u64) -> Token {
        Token {
            index: (raw >> 32) as u32,
            generation: raw as u32,
        }
    }
}

/// Reactor context handed to callbacks: the source's own token and the
/// handle workers use to resume it.
pub struct Ctl<'a> {
    token: Token,
    handle: &'a ReactorHandle,
}

impl Ctl<'_> {
    pub fn token(&self) -> Token {
        self.token
    }

    pub fn handle(&self) -> ReactorHandle {
        self.handle.clone()
    }
}

struct ReactorMetrics {
    fds: Arc<Gauge>,
    shards: Arc<Gauge>,
    batches: Arc<Counter>,
    events: Arc<Counter>,
    timer_fires: Arc<Counter>,
    wakeups: Arc<Counter>,
}

fn metrics() -> &'static ReactorMetrics {
    static METRICS: OnceLock<ReactorMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = obs::registry();
        ReactorMetrics {
            fds: r.gauge("reactor_fds_registered"),
            shards: r.gauge("reactor_shards"),
            batches: r.counter("reactor_ready_batches_total"),
            events: r.counter("reactor_events_total"),
            timer_fires: r.counter("reactor_timer_fires_total"),
            wakeups: r.counter("reactor_wakeups_total"),
        }
    })
}

/// One-line reactor status for the REPL `stats` command, from the live
/// metric handles (all zeros until the first TCP server starts).
pub fn metrics_summary() -> String {
    let m = metrics();
    format!(
        "reactor: shards={} fds_registered={} ready_batches={} events={} timer_fires={} wakeups={}",
        m.shards.get(),
        m.fds.get(),
        m.batches.get(),
        m.events.get(),
        m.timer_fires.get(),
        m.wakeups.get(),
    )
}

type Ack = Arc<(Mutex<bool>, Condvar)>;

enum Op {
    Register {
        source: Box<dyn EventSource>,
        interest: Interest,
        timeout: Option<Duration>,
    },
    Resume {
        token: Token,
        payload: Box<dyn Any + Send>,
    },
    CloseToken(Token),
    /// Close every source with this server id; the ack (when present)
    /// is signalled after the sweep so `shutdown` can synchronize.
    CloseServer(u64, Option<Ack>),
    Shutdown,
}

struct Shared {
    inject: Mutex<Vec<Op>>,
    wake: EventFd,
    alive: AtomicBool,
}

/// A cloneable, thread-safe handle to one reactor thread.
#[derive(Clone)]
pub struct ReactorHandle {
    shared: Arc<Shared>,
}

impl ReactorHandle {
    fn push(&self, op: Op) {
        self.shared.inject.lock().push(op);
        self.shared.wake.ring();
    }

    /// Registers a new source with an initial interest and optional
    /// deadline. The source learns its [`Token`] on its first callback.
    pub fn register(
        &self,
        source: Box<dyn EventSource>,
        interest: Interest,
        timeout: Option<Duration>,
    ) {
        self.push(Op::Register {
            source,
            interest,
            timeout,
        });
    }

    /// Re-enters a suspended source on the reactor thread. Stale tokens
    /// (the connection was closed meanwhile) are ignored.
    pub fn resume(&self, token: Token, payload: Box<dyn Any + Send>) {
        self.push(Op::Resume { token, payload });
    }

    /// Closes one registration (drops the source, closing its fd).
    pub fn close_token(&self, token: Token) {
        self.push(Op::CloseToken(token));
    }

    fn close_server_with(&self, server_id: u64, ack: Option<Ack>) {
        self.push(Op::CloseServer(server_id, ack));
    }

    /// Whether the reactor thread is still running.
    pub fn is_alive(&self) -> bool {
        self.shared.alive.load(Ordering::SeqCst)
    }
}

/// A running reactor thread (standalone; servers normally use the
/// process-global [`pool()`] instead).
pub struct Reactor {
    handle: ReactorHandle,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl Reactor {
    /// Spawns a reactor thread named `name`.
    ///
    /// # Errors
    ///
    /// Fails if the epoll instance or wakeup eventfd cannot be created.
    pub fn spawn(name: &str) -> io::Result<Reactor> {
        let epoll = Epoll::new()?;
        let wake = EventFd::new()?;
        let shared = Arc::new(Shared {
            inject: Mutex::new(Vec::new()),
            wake,
            alive: AtomicBool::new(true),
        });
        let handle = ReactorHandle {
            shared: shared.clone(),
        };
        let loop_handle = handle.clone();
        let thread = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || {
                run_loop(&epoll, &shared, &loop_handle);
                shared.alive.store(false, Ordering::SeqCst);
            })
            .map_err(io::Error::other)?;
        Ok(Reactor {
            handle,
            thread: Mutex::new(Some(thread)),
        })
    }

    pub fn handle(&self) -> ReactorHandle {
        self.handle.clone()
    }

    /// Stops the event loop, dropping (and thereby closing) every
    /// registered source, and joins the thread.
    pub fn shutdown(&self) {
        self.handle.push(Op::Shutdown);
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

const WAKE_TOKEN: u64 = u64::MAX;
const MAX_EVENTS: usize = 256;

struct Slot {
    source: Option<Box<dyn EventSource>>,
    generation: u32,
    /// Bumped on every rearm/suspend/close so stale timer entries and
    /// resumes are discarded.
    timer_generation: u64,
    suspended: bool,
    fd: RawFd,
    server_id: u64,
}

struct LoopState {
    slots: Vec<Slot>,
    free: Vec<u32>,
    wheel: TimerWheel,
}

fn run_loop(epoll: &Epoll, shared: &Arc<Shared>, handle: &ReactorHandle) {
    if epoll
        .add(shared.wake.fd(), sys::EPOLLIN, WAKE_TOKEN)
        .is_err()
    {
        return;
    }
    let m = metrics();
    let mut st = LoopState {
        slots: Vec::new(),
        free: Vec::new(),
        wheel: TimerWheel::new(Instant::now()),
    };
    let mut events = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
    let mut fired = Vec::new();
    let mut ops = Vec::new();
    loop {
        // 1. Drain injected operations (registrations, resumes, closes).
        ops.clear();
        std::mem::swap(&mut ops, &mut *shared.inject.lock());
        let mut shutdown = false;
        for op in ops.drain(..) {
            match op {
                Op::Register {
                    source,
                    interest,
                    timeout,
                } => register_source(epoll, &mut st, source, interest, timeout),
                Op::Resume { token, payload } => {
                    let Some(idx) = live_index(&st, token) else {
                        continue;
                    };
                    if !st.slots[idx].suspended {
                        // A resume for a source that is not suspended is
                        // a protocol bug in the caller; ignore it rather
                        // than corrupt the epoll state.
                        continue;
                    }
                    st.slots[idx].suspended = false;
                    let mut source = st.slots[idx].source.take().expect("live slot has source");
                    let mut ctl = Ctl { token, handle };
                    let action = source.on_resume(payload, &mut ctl);
                    st.slots[idx].source = Some(source);
                    apply_action(epoll, &mut st, idx, action);
                }
                Op::CloseToken(token) => {
                    if let Some(idx) = live_index(&st, token) {
                        close_slot(epoll, &mut st, idx);
                    }
                }
                Op::CloseServer(server_id, ack) => {
                    for idx in 0..st.slots.len() {
                        if st.slots[idx].source.is_some() && st.slots[idx].server_id == server_id {
                            close_slot(epoll, &mut st, idx);
                        }
                    }
                    if let Some(ack) = ack {
                        *ack.0.lock() = true;
                        ack.1.notify_all();
                    }
                }
                Op::Shutdown => shutdown = true,
            }
        }
        if shutdown {
            for idx in 0..st.slots.len() {
                if st.slots[idx].source.is_some() {
                    close_slot(epoll, &mut st, idx);
                }
            }
            return;
        }

        // 2. Wait for readiness, bounded by the nearest timer deadline.
        let now = Instant::now();
        let timeout_ms = match st.wheel.next_timeout(now) {
            None => -1,
            Some(d) => i64::try_from(d.as_millis().div_ceil(1))
                .unwrap_or(i64::MAX)
                .min(60_000) as i32,
        };
        let n = match epoll.wait(&mut events, timeout_ms) {
            Ok(n) => n,
            Err(_) => return,
        };
        if n > 0 {
            m.batches.inc();
            m.events.add(n as u64);
        }
        for ev in &events[..n] {
            let data = ev.data;
            let bits = ev.events;
            if data == WAKE_TOKEN {
                shared.wake.drain();
                m.wakeups.inc();
                continue;
            }
            let token = Token::decode(data);
            let Some(idx) = live_index(&st, token) else {
                continue; // connection already closed; stale event
            };
            if st.slots[idx].suspended {
                continue; // a worker owns it; level-trigger re-reports
            }
            let ready = Readiness {
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            };
            let mut source = st.slots[idx].source.take().expect("live slot has source");
            let mut ctl = Ctl { token, handle };
            let action = source.on_ready(ready, &mut ctl);
            st.slots[idx].source = Some(source);
            apply_action(epoll, &mut st, idx, action);
        }

        // 3. Fire due timers.
        fired.clear();
        st.wheel.advance(Instant::now(), &mut fired);
        for f in &fired {
            let token = Token::decode(f.token);
            let Some(idx) = live_index(&st, token) else {
                continue;
            };
            let slot = &st.slots[idx];
            if slot.suspended || slot.timer_generation != f.generation {
                continue; // disarmed or re-armed since scheduling
            }
            m.timer_fires.inc();
            let mut source = st.slots[idx].source.take().expect("live slot has source");
            let mut ctl = Ctl { token, handle };
            let action = source.on_timer(&mut ctl);
            st.slots[idx].source = Some(source);
            apply_action(epoll, &mut st, idx, action);
        }
    }
}

fn live_index(st: &LoopState, token: Token) -> Option<usize> {
    let idx = token.index as usize;
    let slot = st.slots.get(idx)?;
    (slot.generation == token.generation && slot.source.is_some()).then_some(idx)
}

fn register_source(
    epoll: &Epoll,
    st: &mut LoopState,
    source: Box<dyn EventSource>,
    interest: Interest,
    timeout: Option<Duration>,
) {
    let fd = source.fd();
    let server_id = source.server_id();
    let idx = match st.free.pop() {
        Some(i) => i as usize,
        None => {
            st.slots.push(Slot {
                source: None,
                generation: 0,
                timer_generation: 0,
                suspended: false,
                fd: -1,
                server_id: 0,
            });
            st.slots.len() - 1
        }
    };
    let token = Token {
        index: idx as u32,
        generation: st.slots[idx].generation,
    };
    if epoll.add(fd, interest.events(), token.encode()).is_err() {
        // Unregistrable fd (already closed?): drop the source, freeing
        // the slot for reuse.
        st.free.push(idx as u32);
        return;
    }
    let slot = &mut st.slots[idx];
    slot.source = Some(source);
    slot.suspended = false;
    slot.fd = fd;
    slot.server_id = server_id;
    slot.timer_generation += 1;
    if let Some(t) = timeout {
        st.wheel
            .schedule(Instant::now() + t, token.encode(), slot.timer_generation);
    }
    metrics().fds.add(1);
}

fn apply_action(epoll: &Epoll, st: &mut LoopState, idx: usize, action: Action) {
    match action {
        Action::Rearm(interest, timeout) => {
            let token = Token {
                index: idx as u32,
                generation: st.slots[idx].generation,
            };
            let fd = st.slots[idx].fd;
            if epoll.modify(fd, interest.events(), token.encode()).is_err() {
                close_slot(epoll, st, idx);
                return;
            }
            // Bump first: any previously armed deadline is now stale.
            st.slots[idx].timer_generation += 1;
            if let Some(t) = timeout {
                let generation = st.slots[idx].timer_generation;
                st.wheel
                    .schedule(Instant::now() + t, token.encode(), generation);
            }
        }
        Action::Suspend => {
            // ONESHOT already disarmed the fd; just invalidate timers
            // and mark the slot so stale events are ignored.
            st.slots[idx].suspended = true;
            st.slots[idx].timer_generation += 1;
        }
        Action::Close => close_slot(epoll, st, idx),
    }
}

fn close_slot(epoll: &Epoll, st: &mut LoopState, idx: usize) {
    let slot = &mut st.slots[idx];
    if slot.source.is_none() {
        return;
    }
    let _ = epoll.delete(slot.fd);
    slot.source = None; // drop closes the fd
    slot.generation = slot.generation.wrapping_add(1);
    slot.timer_generation += 1;
    slot.suspended = false;
    st.free.push(idx as u32);
    metrics().fds.add(-1);
}

// ---------------------------------------------------------------------------
// Process-global shard pool
// ---------------------------------------------------------------------------

/// The process-global reactor shards: one per core, capped at 4 (the
/// event loops are I/O-bound; handler work runs in dispatch pools).
pub struct ReactorPool {
    reactors: Vec<Reactor>,
    next: AtomicUsize,
    next_server_id: AtomicU64,
}

impl ReactorPool {
    /// Round-robin shard placement for a new connection.
    pub fn next_handle(&self) -> ReactorHandle {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.reactors.len();
        self.reactors[i].handle()
    }

    /// All shard handles.
    pub fn handles(&self) -> Vec<ReactorHandle> {
        self.reactors.iter().map(Reactor::handle).collect()
    }

    /// Allocates a fresh server id for [`EventSource::server_id`]
    /// grouping.
    pub fn allocate_server_id(&self) -> u64 {
        self.next_server_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Closes every source registered under `server_id` on every shard
    /// and waits until the sweeps ran (so a server's `shutdown` returns
    /// with all its connections closed).
    pub fn close_server(&self, server_id: u64) {
        let acks: Vec<Ack> = self
            .reactors
            .iter()
            .map(|r| {
                let ack: Ack = Arc::new((Mutex::new(false), Condvar::new()));
                r.handle().close_server_with(server_id, Some(ack.clone()));
                ack
            })
            .collect();
        for ack in acks {
            let mut done = ack.0.lock();
            while !*done {
                if ack
                    .1
                    .wait_for(&mut done, Duration::from_secs(5))
                    .timed_out()
                {
                    return; // reactor wedged or gone; don't hang shutdown
                }
            }
        }
    }
}

/// The process-global reactor pool, spawned on first use.
pub fn pool() -> &'static ReactorPool {
    static POOL: OnceLock<ReactorPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let shards = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, 4);
        let reactors = (0..shards)
            .map(|i| Reactor::spawn(&format!("reactor-{i}")).expect("spawn reactor thread"))
            .collect::<Vec<_>>();
        metrics().shards.set(reactors.len() as i64);
        ReactorPool {
            reactors,
            next: AtomicUsize::new(0),
            next_server_id: AtomicU64::new(1),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    /// Echo-once source: reads whatever is available, echoes it back,
    /// then closes.
    struct EchoOnce {
        stream: TcpStream,
    }

    impl EventSource for EchoOnce {
        fn fd(&self) -> RawFd {
            self.stream.as_raw_fd()
        }

        fn on_ready(&mut self, _ready: Readiness, _ctl: &mut Ctl<'_>) -> Action {
            let mut buf = [0u8; 256];
            match self.stream.read(&mut buf) {
                Ok(0) => Action::Close,
                Ok(n) => {
                    let _ = self.stream.write_all(&buf[..n]);
                    Action::Close
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    Action::Rearm(Interest::Read, None)
                }
                Err(_) => Action::Close,
            }
        }

        fn on_timer(&mut self, _ctl: &mut Ctl<'_>) -> Action {
            Action::Close
        }

        fn on_resume(&mut self, _payload: Box<dyn Any + Send>, _ctl: &mut Ctl<'_>) -> Action {
            Action::Rearm(Interest::Read, None)
        }
    }

    #[test]
    fn echoes_through_reactor() {
        let reactor = Reactor::spawn("reactor-test-echo").unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        reactor
            .handle()
            .register(Box::new(EchoOnce { stream: server }), Interest::Read, None);
        client.write_all(b"ping").unwrap();
        let mut got = Vec::new();
        client.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"ping");
        reactor.shutdown();
    }

    /// Source that parks on a timer and writes a marker when it fires.
    struct TimerMarker {
        stream: TcpStream,
    }

    impl EventSource for TimerMarker {
        fn fd(&self) -> RawFd {
            self.stream.as_raw_fd()
        }

        fn on_ready(&mut self, _ready: Readiness, _ctl: &mut Ctl<'_>) -> Action {
            Action::Rearm(Interest::None, Some(Duration::from_millis(30)))
        }

        fn on_timer(&mut self, _ctl: &mut Ctl<'_>) -> Action {
            let _ = self.stream.write_all(b"timer");
            Action::Close
        }

        fn on_resume(&mut self, _payload: Box<dyn Any + Send>, _ctl: &mut Ctl<'_>) -> Action {
            Action::Close
        }
    }

    #[test]
    fn timer_fires_and_closes() {
        let reactor = Reactor::spawn("reactor-test-timer").unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        reactor.handle().register(
            Box::new(TimerMarker { stream: server }),
            Interest::None,
            Some(Duration::from_millis(30)),
        );
        let start = Instant::now();
        let mut got = Vec::new();
        client.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"timer");
        assert!(start.elapsed() >= Duration::from_millis(25), "fired early");
        reactor.shutdown();
    }

    /// Suspend/resume round trip: on first readiness the source
    /// suspends and a "worker" thread resumes it with a payload that
    /// gets echoed.
    struct SuspendEcho {
        stream: TcpStream,
    }

    impl EventSource for SuspendEcho {
        fn fd(&self) -> RawFd {
            self.stream.as_raw_fd()
        }

        fn on_ready(&mut self, _ready: Readiness, ctl: &mut Ctl<'_>) -> Action {
            let mut buf = [0u8; 64];
            let n = match self.stream.read(&mut buf) {
                Ok(n) => n,
                Err(_) => return Action::Rearm(Interest::Read, None),
            };
            let handle = ctl.handle();
            let token = ctl.token();
            let data = buf[..n].to_vec();
            std::thread::spawn(move || {
                let reply: Vec<u8> = data.iter().map(|b| b.to_ascii_uppercase()).collect();
                handle.resume(token, Box::new(reply));
            });
            Action::Suspend
        }

        fn on_timer(&mut self, _ctl: &mut Ctl<'_>) -> Action {
            Action::Close
        }

        fn on_resume(&mut self, payload: Box<dyn Any + Send>, _ctl: &mut Ctl<'_>) -> Action {
            let reply = payload.downcast::<Vec<u8>>().expect("payload type");
            let _ = self.stream.write_all(&reply);
            Action::Close
        }
    }

    #[test]
    fn suspend_resume_round_trip() {
        let reactor = Reactor::spawn("reactor-test-resume").unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        reactor.handle().register(
            Box::new(SuspendEcho { stream: server }),
            Interest::Read,
            None,
        );
        client.write_all(b"hello").unwrap();
        let mut got = Vec::new();
        client.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"HELLO");
        reactor.shutdown();
    }

    #[test]
    fn close_server_sweeps_only_matching_sources() {
        struct Tagged {
            stream: TcpStream,
            id: u64,
        }
        impl EventSource for Tagged {
            fn fd(&self) -> RawFd {
                self.stream.as_raw_fd()
            }
            fn server_id(&self) -> u64 {
                self.id
            }
            fn on_ready(&mut self, _r: Readiness, _c: &mut Ctl<'_>) -> Action {
                Action::Rearm(Interest::Read, None)
            }
            fn on_timer(&mut self, _c: &mut Ctl<'_>) -> Action {
                Action::Close
            }
            fn on_resume(&mut self, _p: Box<dyn Any + Send>, _c: &mut Ctl<'_>) -> Action {
                Action::Close
            }
        }
        let reactor = Reactor::spawn("reactor-test-sweep").unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut clients = Vec::new();
        for id in [1u64, 1, 2] {
            let client = TcpStream::connect(addr).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();
            reactor.handle().register(
                Box::new(Tagged { stream: server, id }),
                Interest::Read,
                None,
            );
            clients.push(client);
        }
        let ack: Ack = Arc::new((Mutex::new(false), Condvar::new()));
        reactor.handle().close_server_with(1, Some(ack.clone()));
        {
            let mut done = ack.0.lock();
            while !*done {
                ack.1.wait(&mut done);
            }
        }
        // Server-1 connections see EOF; server-2's stays open.
        let mut buf = [0u8; 1];
        assert_eq!(clients[0].read(&mut buf).unwrap(), 0);
        assert_eq!(clients[1].read(&mut buf).unwrap(), 0);
        clients[2]
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let err = clients[2].read(&mut buf).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "server-2 connection should still be open, got {err:?}"
        );
        reactor.shutdown();
    }
}
