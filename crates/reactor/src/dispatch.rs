//! Bounded worker pool for application handlers.
//!
//! Reactor callbacks must not block, but request handlers can (the SDE
//! gateway parks callers during a §5.7 publication stall). So handler
//! execution hops to a `DispatchPool`: the connection suspends itself
//! off epoll, a worker runs the handler, then resumes the connection
//! with the response. The queue is bounded; a full queue is the
//! server's overload signal (`try_submit` fails and the caller sheds
//! with 503, same contract as the old thread-pool queue).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use obs::metrics::Gauge;
use obs::sync::{Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Inner {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    capacity: usize,
    /// Lock-free mirror of the queue length so spinning workers can
    /// poll for work without touching the mutex.
    depth: AtomicUsize,
    /// Mirrors queue depth for the server's `http_queue_depth` gauge;
    /// parked idle connections never touch it.
    depth_gauge: Option<Arc<Gauge>>,
}

/// A fixed-size worker pool with a bounded job queue.
pub struct DispatchPool {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl DispatchPool {
    /// Spawns `workers` threads (at least one) sharing a queue bounded
    /// at `capacity` jobs. `depth_gauge`, when given, tracks queue
    /// depth.
    pub fn new(
        name: &str,
        workers: usize,
        capacity: usize,
        depth_gauge: Option<Arc<Gauge>>,
    ) -> DispatchPool {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            capacity: capacity.max(1),
            depth: AtomicUsize::new(0),
            depth_gauge,
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn dispatch worker")
            })
            .collect();
        DispatchPool {
            inner,
            workers: Mutex::new(handles),
        }
    }

    /// Enqueues a job unless the queue is full or the pool is shutting
    /// down. Returns whether the job was accepted — a `false` is the
    /// caller's cue to shed load.
    pub fn try_submit<F: FnOnce() + Send + 'static>(&self, job: F) -> bool {
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        {
            let mut q = self.inner.queue.lock();
            if q.len() >= self.inner.capacity {
                return false;
            }
            q.push_back(Box::new(job));
            self.inner.depth.store(q.len(), Ordering::Release);
            if let Some(g) = &self.inner.depth_gauge {
                g.set(q.len() as i64);
            }
        }
        self.inner.available.notify_one();
        true
    }

    /// Current queue depth (jobs waiting, not jobs executing).
    pub fn depth(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Stops accepting work, drops queued jobs, and joins the workers.
    /// Jobs already executing run to completion.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        {
            let mut q = self.inner.queue.lock();
            q.clear();
            self.inner.depth.store(0, Ordering::Release);
            if let Some(g) = &self.inner.depth_gauge {
                g.set(0);
            }
        }
        self.inner.available.notify_all();
        let handles = std::mem::take(&mut *self.workers.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for DispatchPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// How long a worker polls for the next job before blocking on the
/// condvar. In an RMI round trip the pool goes idle for only a few
/// microseconds between a response leaving and the next request
/// arriving; spinning through that gap avoids a futex sleep/wake on
/// every call, which is most of the latency a reactor→worker handoff
/// adds over a thread blocked directly in `read()`. The window is
/// short and only entered after finishing a job, so idle pools still
/// park on the condvar and cost nothing. On a single-core host the
/// spin can only steal cycles from the thread that would produce the
/// next job, so it is disabled there.
fn spin_window() -> Duration {
    static WINDOW: std::sync::OnceLock<Duration> = std::sync::OnceLock::new();
    *WINDOW.get_or_init(|| {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores > 1 {
            Duration::from_micros(100)
        } else {
            Duration::ZERO
        }
    })
}

fn worker_loop(inner: &Inner) {
    loop {
        // Spin phase: watch the lock-free depth mirror so the mutex is
        // only taken when there is plausibly work to pop.
        let spin_until = Instant::now() + spin_window();
        let mut job: Option<Job> = None;
        loop {
            if inner.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if inner.depth.load(Ordering::Acquire) > 0 {
                let mut q = inner.queue.lock();
                if let Some(j) = q.pop_front() {
                    inner.depth.store(q.len(), Ordering::Release);
                    if let Some(g) = &inner.depth_gauge {
                        g.set(q.len() as i64);
                    }
                    job = Some(j);
                    break;
                }
            }
            if Instant::now() >= spin_until {
                break;
            }
            std::hint::spin_loop();
        }
        let job = match job {
            Some(j) => j,
            None => {
                // Blocking phase: the classic guarded condvar wait.
                let mut q = inner.queue.lock();
                loop {
                    if inner.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    if let Some(j) = q.pop_front() {
                        inner.depth.store(q.len(), Ordering::Release);
                        if let Some(g) = &inner.depth_gauge {
                            g.set(q.len() as i64);
                        }
                        break j;
                    }
                    inner.available.wait(&mut q);
                }
            }
        };
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn runs_submitted_jobs() {
        let pool = DispatchPool::new("dp-test", 2, 16, None);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let count = count.clone();
            assert!(pool.try_submit(move || {
                count.fetch_add(1, Ordering::SeqCst);
            }));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while count.load(Ordering::SeqCst) < 8 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(count.load(Ordering::SeqCst), 8);
        pool.shutdown();
    }

    #[test]
    fn bounded_queue_sheds_when_full() {
        let pool = DispatchPool::new("dp-full", 1, 2, None);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        // Occupy the single worker...
        let g = gate.clone();
        assert!(pool.try_submit(move || {
            let mut open = g.0.lock();
            while !*open {
                g.1.wait(&mut open);
            }
        }));
        // Give the worker time to take the blocking job off the queue.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while pool.depth() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        // ...then fill the queue to capacity and overflow it.
        assert!(pool.try_submit(|| {}));
        assert!(pool.try_submit(|| {}));
        assert!(!pool.try_submit(|| {}), "queue at capacity must shed");
        *gate.0.lock() = true;
        gate.1.notify_all();
        pool.shutdown();
    }

    #[test]
    fn rejects_after_shutdown() {
        let pool = DispatchPool::new("dp-shut", 1, 4, None);
        pool.shutdown();
        assert!(!pool.try_submit(|| {}));
    }
}
