//! Undo/redo records.
//!
//! Each edit snapshots the method table and field declarations before and
//! after the mutation; undo restores the *before* image, redo the *after*
//! image. Snapshots are cheap: interpreted bodies are small ASTs and
//! native bodies are `Arc`-shared closures.

use crate::class::{DynamicMethod, MethodId, ParamId};
use crate::value::TypeDesc;

/// Human-readable description of one edit, used in diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum EditLabel {
    AddMethod(String),
    RemoveMethod(MethodId),
    RenameMethod(MethodId),
    SetDistributed(MethodId, bool),
    SetReturnType(MethodId),
    AddParam(MethodId, String),
    RemoveParam(MethodId, ParamId),
    RenameParam(MethodId, ParamId),
    ReorderParams(MethodId),
    SetBody(MethodId),
    AddField(String),
    RenameField(String),
    RemoveField(String),
}

/// One entry on the undo/redo stack.
#[derive(Debug, Clone)]
pub(crate) struct EditRecord {
    #[allow(dead_code)] // retained for diagnostics / future history UI
    pub(crate) label: EditLabel,
    pub(crate) before_methods: Vec<DynamicMethod>,
    pub(crate) before_fields: Vec<(String, TypeDesc)>,
    pub(crate) after_methods: Vec<DynamicMethod>,
    pub(crate) after_fields: Vec<(String, TypeDesc)>,
}
