//! A textual surface syntax for interpreted method bodies ("JPie script").
//!
//! JPie presents programs as manipulable representations; this module is
//! the equivalent for the live-rmi runtime: method bodies can be written,
//! displayed, and live-edited as text, round-tripping through the
//! [`Expr`]/[`Stmt`] AST. Used by [`crate::MethodBuilder::body_source`],
//! [`crate::ClassHandle::set_body_source`] and
//! [`crate::ClassHandle::method_source`].
//!
//! # Grammar
//!
//! ```text
//! block   := stmt*
//! stmt    := "let" IDENT "=" expr ";"
//!          | IDENT "=" expr ";"
//!          | "this" "." IDENT "=" expr ";"
//!          | "if" "(" expr ")" "{" block "}" ("else" "{" block "}")?
//!          | "while" "(" expr ")" "{" block "}"
//!          | "return" expr? ";"
//!          | "throw" expr ";"
//!          | expr ";"
//! expr    := logical-or with the usual precedence:
//!            ||  &&  == != < <= > >=  + -  * / %  unary - !
//! primary := literal | "this" "." IDENT | "(" expr ")"
//!          | IDENT "(" IDENT ":" expr, ... ")"      // self-call, named args
//!          | BUILTIN "(" expr, ... ")"              // len, get, push,
//!                                                   // to_string, contains, field
//!          | "new" TYPENAME "{" IDENT ":" expr, ... "}"
//!          | "seq" "<" type ">" "[" expr, ... "]"
//!          | IDENT                                   // parameter or local
//! literal := 123 | 123L | 1.5 | 1.5f | "str" | 'c' | true | false | null
//! ```
//!
//! Bare identifiers parse as locals; [`resolve_params`] (called by the
//! `body_source` helpers) rebinds those matching the method's parameter
//! names to parameter references so JPie's rename-consistency machinery
//! applies to parsed bodies too.
//!
//! # Examples
//!
//! ```
//! let block = jpie::parse::parse_block(
//!     "let total = a + b; if (total > 10) { return total; } return 0;",
//! )?;
//! assert_eq!(block.len(), 3);
//! # Ok::<(), jpie::JpieError>(())
//! ```

use crate::error::JpieError;
use crate::expr::{walk_block_mut, BinOp, Block, Builtin, Expr, Stmt, UnOp};
use crate::value::{TypeDesc, Value};

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Long(i64),
    Float(f32),
    Double(f64),
    Str(String),
    Char(char),
    Punct(&'static str),
}

fn err(msg: impl Into<String>) -> JpieError {
    JpieError::Invalid(format!("parse error: {}", msg.into()))
}

fn lex(src: &str) -> Result<Vec<Tok>, JpieError> {
    let mut toks = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comments.
        if c == '/' && bytes.get(i + 1) == Some(&'/') {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Block comments.
        if c == '/' && bytes.get(i + 1) == Some(&'*') {
            i += 2;
            loop {
                if i + 1 >= bytes.len() {
                    return Err(err("unterminated block comment"));
                }
                if bytes[i] == '*' && bytes[i + 1] == '/' {
                    i += 2;
                    break;
                }
                i += 1;
            }
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            toks.push(Tok::Ident(bytes[start..i].iter().collect()));
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            while i < bytes.len()
                && (bytes[i].is_ascii_digit()
                    || (bytes[i] == '.' && bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit())))
            {
                if bytes[i] == '.' {
                    is_float = true;
                }
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            match bytes.get(i) {
                Some('L') => {
                    i += 1;
                    let v = text.parse().map_err(|_| err(format!("bad long {text}")))?;
                    toks.push(Tok::Long(v));
                }
                Some('f') => {
                    i += 1;
                    let v = text.parse().map_err(|_| err(format!("bad float {text}")))?;
                    toks.push(Tok::Float(v));
                }
                _ if is_float => {
                    let v = text
                        .parse()
                        .map_err(|_| err(format!("bad double {text}")))?;
                    toks.push(Tok::Double(v));
                }
                _ => {
                    let v = text.parse().map_err(|_| err(format!("bad int {text}")))?;
                    toks.push(Tok::Int(v));
                }
            }
            continue;
        }
        if c == '"' {
            i += 1;
            let mut s = String::new();
            loop {
                match bytes.get(i) {
                    None => return Err(err("unterminated string literal")),
                    Some('"') => {
                        i += 1;
                        break;
                    }
                    Some('\\') => {
                        i += 1;
                        match bytes.get(i) {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some(other) => return Err(err(format!("bad escape \\{other}"))),
                            None => return Err(err("unterminated escape")),
                        }
                        i += 1;
                    }
                    Some(&c) => {
                        s.push(c);
                        i += 1;
                    }
                }
            }
            toks.push(Tok::Str(s));
            continue;
        }
        if c == '\'' {
            let ch = match bytes.get(i + 1) {
                Some('\\') => {
                    let esc = match bytes.get(i + 2) {
                        Some('n') => '\n',
                        Some('t') => '\t',
                        Some('\'') => '\'',
                        Some('\\') => '\\',
                        _ => return Err(err("bad char escape")),
                    };
                    i += 4;
                    esc
                }
                Some(&c) => {
                    i += 3;
                    c
                }
                None => return Err(err("unterminated char literal")),
            };
            if bytes.get(i - 1) != Some(&'\'') {
                return Err(err("unterminated char literal"));
            }
            toks.push(Tok::Char(ch));
            continue;
        }
        // Multi-char operators first.
        let two: String = bytes[i..bytes.len().min(i + 2)].iter().collect();
        let punct2 = ["==", "!=", "<=", ">=", "&&", "||"];
        if let Some(p) = punct2.iter().find(|p| **p == two) {
            toks.push(Tok::Punct(p));
            i += 2;
            continue;
        }
        let punct1 = "+-*/%<>=!(){}[],;:.";
        if punct1.contains(c) {
            let s: &'static str = match c {
                '+' => "+",
                '-' => "-",
                '*' => "*",
                '/' => "/",
                '%' => "%",
                '<' => "<",
                '>' => ">",
                '=' => "=",
                '!' => "!",
                '(' => "(",
                ')' => ")",
                '{' => "{",
                '}' => "}",
                '[' => "[",
                ']' => "]",
                ',' => ",",
                ';' => ";",
                ':' => ":",
                '.' => ".",
                _ => unreachable!("covered by contains"),
            };
            toks.push(Tok::Punct(s));
            i += 1;
            continue;
        }
        return Err(err(format!("unexpected character {c:?}")));
    }
    Ok(toks)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Punct(q)) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), JpieError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(err(format!("expected {p:?}, found {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, JpieError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn at_ident(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    fn parse_block_until(&mut self, terminator: Option<&str>) -> Result<Block, JpieError> {
        let mut block = Vec::new();
        loop {
            match terminator {
                Some(t) => {
                    if matches!(self.peek(), Some(Tok::Punct(p)) if *p == t) {
                        return Ok(block);
                    }
                    if self.peek().is_none() {
                        return Err(err(format!("expected {t:?} before end of input")));
                    }
                }
                None => {
                    if self.peek().is_none() {
                        return Ok(block);
                    }
                }
            }
            block.push(self.parse_stmt()?);
        }
    }

    fn parse_braced_block(&mut self) -> Result<Block, JpieError> {
        self.expect_punct("{")?;
        let block = self.parse_block_until(Some("}"))?;
        self.expect_punct("}")?;
        Ok(block)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, JpieError> {
        if self.at_ident("let") {
            self.pos += 1;
            let name = self.expect_ident()?;
            self.expect_punct("=")?;
            let e = self.parse_expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Let(name, e));
        }
        if self.at_ident("if") {
            self.pos += 1;
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            let then = self.parse_braced_block()?;
            let otherwise = if self.at_ident("else") {
                self.pos += 1;
                self.parse_braced_block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                cond,
                then,
                otherwise,
            });
        }
        if self.at_ident("while") {
            self.pos += 1;
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            let body = self.parse_braced_block()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.at_ident("return") {
            self.pos += 1;
            if self.eat_punct(";") {
                return Ok(Stmt::Return(None));
            }
            let e = self.parse_expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Return(Some(e)));
        }
        if self.at_ident("throw") {
            self.pos += 1;
            let e = self.parse_expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Throw(e));
        }
        // `this.field = expr;`
        if self.at_ident("this") && matches!(self.peek2(), Some(Tok::Punct("."))) {
            let save = self.pos;
            self.pos += 2;
            let field = self.expect_ident()?;
            if self.eat_punct("=") {
                let e = self.parse_expr()?;
                self.expect_punct(";")?;
                return Ok(Stmt::SetField(field, e));
            }
            self.pos = save; // it was a field *read* inside an expression
        }
        // `ident = expr;` (assignment) vs expression statement.
        if let (Some(Tok::Ident(name)), Some(Tok::Punct("="))) = (self.peek(), self.peek2()) {
            if !is_keyword(name) {
                let name = name.clone();
                self.pos += 2;
                let e = self.parse_expr()?;
                self.expect_punct(";")?;
                return Ok(Stmt::Assign(name, e));
            }
        }
        let e = self.parse_expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Expr(e))
    }

    fn parse_expr(&mut self) -> Result<Expr, JpieError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, JpieError> {
        let mut lhs = self.parse_and()?;
        while self.eat_punct("||") {
            let rhs = self.parse_and()?;
            lhs = bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, JpieError> {
        let mut lhs = self.parse_cmp()?;
        while self.eat_punct("&&") {
            let rhs = self.parse_cmp()?;
            lhs = bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, JpieError> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Some(Tok::Punct("==")) => Some(BinOp::Eq),
            Some(Tok::Punct("!=")) => Some(BinOp::Ne),
            Some(Tok::Punct("<")) => Some(BinOp::Lt),
            Some(Tok::Punct("<=")) => Some(BinOp::Le),
            Some(Tok::Punct(">")) => Some(BinOp::Gt),
            Some(Tok::Punct(">=")) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.parse_add()?;
            return Ok(bin(op, lhs, rhs));
        }
        Ok(lhs)
    }

    fn parse_add(&mut self) -> Result<Expr, JpieError> {
        let mut lhs = self.parse_mul()?;
        loop {
            if self.eat_punct("+") {
                let rhs = self.parse_mul()?;
                lhs = bin(BinOp::Add, lhs, rhs);
            } else if self.eat_punct("-") {
                let rhs = self.parse_mul()?;
                lhs = bin(BinOp::Sub, lhs, rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_mul(&mut self) -> Result<Expr, JpieError> {
        let mut lhs = self.parse_unary()?;
        loop {
            if self.eat_punct("*") {
                let rhs = self.parse_unary()?;
                lhs = bin(BinOp::Mul, lhs, rhs);
            } else if self.eat_punct("/") {
                let rhs = self.parse_unary()?;
                lhs = bin(BinOp::Div, lhs, rhs);
            } else if self.eat_punct("%") {
                let rhs = self.parse_unary()?;
                lhs = bin(BinOp::Rem, lhs, rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, JpieError> {
        if self.eat_punct("-") {
            let e = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(e),
            });
        }
        if self.eat_punct("!") {
            let e = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(e),
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, JpieError> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(Expr::Lit(Value::Int(v as i32))),
            Some(Tok::Long(v)) => Ok(Expr::Lit(Value::Long(v))),
            Some(Tok::Float(v)) => Ok(Expr::Lit(Value::Float(v))),
            Some(Tok::Double(v)) => Ok(Expr::Lit(Value::Double(v))),
            Some(Tok::Str(s)) => Ok(Expr::Lit(Value::Str(s))),
            Some(Tok::Char(c)) => Ok(Expr::Lit(Value::Char(c))),
            Some(Tok::Punct("(")) => {
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => self.parse_ident_expr(name),
            other => Err(err(format!("unexpected token {other:?}"))),
        }
    }

    fn parse_ident_expr(&mut self, name: String) -> Result<Expr, JpieError> {
        match name.as_str() {
            "true" => return Ok(Expr::Lit(Value::Bool(true))),
            "false" => return Ok(Expr::Lit(Value::Bool(false))),
            "null" => return Ok(Expr::Lit(Value::Null)),
            "this" => {
                self.expect_punct(".")?;
                let field = self.expect_ident()?;
                return Ok(Expr::FieldRef(field));
            }
            "new" => {
                let type_name = self.expect_ident()?;
                self.expect_punct("{")?;
                let mut fields = Vec::new();
                if !self.eat_punct("}") {
                    loop {
                        let fname = self.expect_ident()?;
                        self.expect_punct(":")?;
                        let fexpr = self.parse_expr()?;
                        fields.push((fname, fexpr));
                        if self.eat_punct("}") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                return Ok(Expr::MakeStruct { type_name, fields });
            }
            "seq" => {
                self.expect_punct("<")?;
                let elem = self.parse_type()?;
                self.expect_punct(">")?;
                self.expect_punct("[")?;
                let mut items = Vec::new();
                if !self.eat_punct("]") {
                    loop {
                        items.push(self.parse_expr()?);
                        if self.eat_punct("]") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                return Ok(Expr::MakeSeq { elem, items });
            }
            _ => {}
        }
        if let Some(builtin) = builtin_by_name(&name) {
            self.expect_punct("(")?;
            let mut args = Vec::new();
            if !self.eat_punct(")") {
                loop {
                    args.push(self.parse_expr()?);
                    if self.eat_punct(")") {
                        break;
                    }
                    self.expect_punct(",")?;
                }
            }
            return Ok(Expr::Call { builtin, args });
        }
        if self.eat_punct("(") {
            // Self-call with named arguments.
            let mut args = Vec::new();
            if !self.eat_punct(")") {
                loop {
                    let aname = self.expect_ident()?;
                    self.expect_punct(":")?;
                    let aexpr = self.parse_expr()?;
                    args.push((aname, aexpr));
                    if self.eat_punct(")") {
                        break;
                    }
                    self.expect_punct(",")?;
                }
            }
            return Ok(Expr::SelfCall { method: name, args });
        }
        // Bare identifier: a local (rebound to Param by resolve_params).
        Ok(Expr::Local(name))
    }

    fn parse_type(&mut self) -> Result<TypeDesc, JpieError> {
        let name = self.expect_ident()?;
        Ok(match name.as_str() {
            "void" => TypeDesc::Void,
            "boolean" => TypeDesc::Bool,
            "int" => TypeDesc::Int,
            "long" => TypeDesc::Long,
            "float" => TypeDesc::Float,
            "double" => TypeDesc::Double,
            "char" => TypeDesc::Char,
            "string" => TypeDesc::Str,
            "seq" => {
                self.expect_punct("<")?;
                let elem = self.parse_type()?;
                self.expect_punct(">")?;
                TypeDesc::Seq(Box::new(elem))
            }
            other => TypeDesc::Named(other.to_string()),
        })
    }
}

fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
    Expr::Binary {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    }
}

fn is_keyword(name: &str) -> bool {
    matches!(
        name,
        "let"
            | "if"
            | "else"
            | "while"
            | "return"
            | "throw"
            | "this"
            | "new"
            | "seq"
            | "true"
            | "false"
            | "null"
    )
}

fn builtin_by_name(name: &str) -> Option<Builtin> {
    Some(match name {
        "len" => Builtin::Len,
        "get" => Builtin::Get,
        "push" => Builtin::Push,
        "to_string" => Builtin::ToStr,
        "contains" => Builtin::Contains,
        "field" => Builtin::Field,
        _ => return None,
    })
}

/// Parses a statement block.
///
/// # Errors
///
/// Returns [`JpieError::Invalid`] with a parse-error message.
pub fn parse_block(src: &str) -> Result<Block, JpieError> {
    let mut p = Parser {
        toks: lex(src)?,
        pos: 0,
    };
    p.parse_block_until(None)
}

/// Parses a single expression (must consume all input).
///
/// # Errors
///
/// Returns [`JpieError::Invalid`] on syntax errors or trailing tokens.
pub fn parse_expr(src: &str) -> Result<Expr, JpieError> {
    let mut p = Parser {
        toks: lex(src)?,
        pos: 0,
    };
    let e = p.parse_expr()?;
    if p.peek().is_some() {
        return Err(err(format!(
            "trailing tokens after expression: {:?}",
            p.peek()
        )));
    }
    Ok(e)
}

/// Parses a whole class definition — the inverse of
/// [`crate::ClassHandle::class_source`]:
///
/// ```text
/// class Name [extends Superclass] {
///   field <type> <name>;
///   [distributed] <type> <name>(<type> <p>, ...) { <block> }
/// }
/// ```
///
/// Method bodies become interpreted blocks with parameter references
/// resolved; a body of `/* native */` (or any empty body) parses as an
/// empty block.
///
/// # Errors
///
/// Returns [`JpieError::Invalid`] on syntax errors or duplicate names.
///
/// # Examples
///
/// ```
/// let class = jpie::parse::parse_class(
///     "class Calc extends SOAPServer {\n\
///        field int calls;\n\
///        distributed int add(int a, int b) { return a + b; }\n\
///      }",
/// )?;
/// assert_eq!(class.name(), "Calc");
/// assert_eq!(class.superclass().as_deref(), Some("SOAPServer"));
/// assert_eq!(class.distributed_signatures().len(), 1);
/// # Ok::<(), jpie::JpieError>(())
/// ```
pub fn parse_class(src: &str) -> Result<crate::ClassHandle, JpieError> {
    let mut p = Parser {
        toks: lex(src)?,
        pos: 0,
    };
    if !p.at_ident("class") {
        return Err(err("expected `class`"));
    }
    p.pos += 1;
    let name = p.expect_ident()?;
    let superclass = if p.at_ident("extends") {
        p.pos += 1;
        Some(p.expect_ident()?)
    } else {
        None
    };
    let class = match superclass {
        Some(s) => crate::ClassHandle::with_superclass(&name, s),
        None => crate::ClassHandle::new(&name),
    };
    p.expect_punct("{")?;
    loop {
        if p.eat_punct("}") {
            break;
        }
        if p.peek().is_none() {
            return Err(err("expected '}' before end of input"));
        }
        if p.at_ident("field") {
            p.pos += 1;
            let ty = p.parse_type()?;
            let fname = p.expect_ident()?;
            p.expect_punct(";")?;
            class.add_field(&fname, ty)?;
            continue;
        }
        // Method: [distributed] <ret> <name>(<ty> <p>, ...) { body }
        let distributed = if p.at_ident("distributed") {
            p.pos += 1;
            true
        } else {
            false
        };
        let return_ty = p.parse_type()?;
        let mname = p.expect_ident()?;
        p.expect_punct("(")?;
        let mut builder = crate::MethodBuilder::new(&mname, return_ty).distributed(distributed);
        let mut param_names = Vec::new();
        if !p.eat_punct(")") {
            loop {
                let pty = p.parse_type()?;
                let pname = p.expect_ident()?;
                param_names.push(pname.clone());
                builder = builder.param(pname, pty);
                if p.eat_punct(")") {
                    break;
                }
                p.expect_punct(",")?;
            }
        }
        p.expect_punct("{")?;
        let mut body = p.parse_block_until(Some("}"))?;
        p.expect_punct("}")?;
        resolve_params(&mut body, &param_names);
        class.add_method(builder.body_block(body))?;
    }
    if p.peek().is_some() {
        return Err(err(format!("trailing tokens after class: {:?}", p.peek())));
    }
    Ok(class)
}

/// Rebinds bare identifiers that name parameters from locals to parameter
/// references, so the rename-consistency machinery covers parsed bodies.
pub fn resolve_params(block: &mut Block, param_names: &[String]) {
    walk_block_mut(block, &mut |e| {
        if let Expr::Local(name) = e {
            if param_names.iter().any(|p| p == name) {
                *e = Expr::Param(name.clone());
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Pretty-printer
// ---------------------------------------------------------------------------

/// Renders a block back to source (inverse of [`parse_block`] up to
/// formatting).
pub fn block_to_source(block: &Block) -> String {
    let mut out = String::new();
    write_block(block, 0, &mut out);
    out
}

/// Renders one expression to source.
pub fn expr_to_source(expr: &Expr) -> String {
    let mut out = String::new();
    write_expr(expr, 0, &mut out);
    out
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_block(block: &Block, level: usize, out: &mut String) {
    for stmt in block {
        indent(level, out);
        match stmt {
            Stmt::Let(name, e) => {
                out.push_str("let ");
                out.push_str(name);
                out.push_str(" = ");
                write_expr(e, 0, out);
                out.push_str(";\n");
            }
            Stmt::Assign(name, e) => {
                out.push_str(name);
                out.push_str(" = ");
                write_expr(e, 0, out);
                out.push_str(";\n");
            }
            Stmt::SetField(name, e) => {
                out.push_str("this.");
                out.push_str(name);
                out.push_str(" = ");
                write_expr(e, 0, out);
                out.push_str(";\n");
            }
            Stmt::If {
                cond,
                then,
                otherwise,
            } => {
                out.push_str("if (");
                write_expr(cond, 0, out);
                out.push_str(") {\n");
                write_block(then, level + 1, out);
                indent(level, out);
                out.push('}');
                if !otherwise.is_empty() {
                    out.push_str(" else {\n");
                    write_block(otherwise, level + 1, out);
                    indent(level, out);
                    out.push('}');
                }
                out.push('\n');
            }
            Stmt::While { cond, body } => {
                out.push_str("while (");
                write_expr(cond, 0, out);
                out.push_str(") {\n");
                write_block(body, level + 1, out);
                indent(level, out);
                out.push_str("}\n");
            }
            Stmt::Return(None) => out.push_str("return;\n"),
            Stmt::Return(Some(e)) => {
                out.push_str("return ");
                write_expr(e, 0, out);
                out.push_str(";\n");
            }
            Stmt::Throw(e) => {
                out.push_str("throw ");
                write_expr(e, 0, out);
                out.push_str(";\n");
            }
            Stmt::Expr(e) => {
                write_expr(e, 0, out);
                out.push_str(";\n");
            }
        }
    }
}

fn binop_prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div | BinOp::Rem => 5,
    }
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

fn write_expr(expr: &Expr, parent_prec: u8, out: &mut String) {
    match expr {
        Expr::Lit(v) => write_literal(v, out),
        Expr::Param(name) | Expr::Local(name) => out.push_str(name),
        Expr::FieldRef(name) => {
            out.push_str("this.");
            out.push_str(name);
        }
        Expr::SelfCall { method, args } => {
            out.push_str(method);
            out.push('(');
            for (i, (name, e)) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(name);
                out.push_str(": ");
                write_expr(e, 0, out);
            }
            out.push(')');
        }
        Expr::Binary { op, lhs, rhs } => {
            let prec = binop_prec(*op);
            let needs_parens = prec < parent_prec;
            if needs_parens {
                out.push('(');
            }
            // Comparisons do not chain in the grammar (`a < b < c` is a
            // syntax error), so a comparison operand that is itself a
            // comparison must be parenthesized: print both sides at
            // prec+1. Other operators are left-associative: only the
            // right side needs the bump.
            let is_cmp = matches!(
                op,
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
            );
            let lhs_prec = if is_cmp { prec + 1 } else { prec };
            write_expr(lhs, lhs_prec, out);
            out.push(' ');
            out.push_str(binop_str(*op));
            out.push(' ');
            write_expr(rhs, prec + 1, out);
            if needs_parens {
                out.push(')');
            }
        }
        Expr::Unary { op, expr } => {
            out.push(match op {
                UnOp::Neg => '-',
                UnOp::Not => '!',
            });
            write_expr(expr, 6, out);
        }
        Expr::Call { builtin, args } => {
            out.push_str(match builtin {
                Builtin::Len => "len",
                Builtin::Get => "get",
                Builtin::Push => "push",
                Builtin::ToStr => "to_string",
                Builtin::Contains => "contains",
                Builtin::Field => "field",
            });
            out.push('(');
            for (i, e) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(e, 0, out);
            }
            out.push(')');
        }
        Expr::MakeStruct { type_name, fields } => {
            out.push_str("new ");
            out.push_str(type_name);
            out.push_str(" {");
            for (i, (name, e)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push(' ');
                out.push_str(name);
                out.push_str(": ");
                write_expr(e, 0, out);
            }
            out.push_str(" }");
        }
        Expr::MakeSeq { elem, items } => {
            out.push_str("seq<");
            out.push_str(&type_source(elem));
            out.push_str(">[");
            for (i, e) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(e, 0, out);
            }
            out.push(']');
        }
    }
}

pub(crate) fn type_source(ty: &TypeDesc) -> String {
    match ty {
        TypeDesc::Void => "void".into(),
        TypeDesc::Bool => "boolean".into(),
        TypeDesc::Int => "int".into(),
        TypeDesc::Long => "long".into(),
        TypeDesc::Float => "float".into(),
        TypeDesc::Double => "double".into(),
        TypeDesc::Char => "char".into(),
        TypeDesc::Str => "string".into(),
        TypeDesc::Named(n) => n.clone(),
        TypeDesc::Seq(e) => format!("seq<{}>", type_source(e)),
    }
}

fn write_literal(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            if *i < 0 {
                out.push('(');
                out.push_str(&i.to_string());
                out.push(')');
            } else {
                out.push_str(&i.to_string());
            }
        }
        Value::Long(l) => {
            if *l < 0 {
                out.push('(');
                out.push_str(&l.to_string());
                out.push_str("L)");
            } else {
                out.push_str(&l.to_string());
                out.push('L');
            }
        }
        Value::Float(x) => {
            let text = if *x == x.trunc() {
                format!("{x:.1}")
            } else {
                format!("{x}")
            };
            if *x < 0.0 {
                out.push('(');
                out.push_str(&text);
                out.push_str("f)");
            } else {
                out.push_str(&text);
                out.push('f');
            }
        }
        Value::Double(x) => {
            let text = if *x == x.trunc() {
                format!("{x:.1}")
            } else {
                format!("{x}")
            };
            if *x < 0.0 {
                out.push('(');
                out.push_str(&text);
                out.push(')');
            } else {
                out.push_str(&text);
            }
        }
        Value::Char(c) => {
            out.push('\'');
            match c {
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\'' => out.push_str("\\'"),
                '\\' => out.push_str("\\\\"),
                other => out.push(*other),
            }
            out.push('\'');
        }
        Value::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    other => out.push(other),
                }
            }
            out.push('"');
        }
        Value::Struct(s) => {
            // Struct *values* print as constructor expressions.
            out.push_str("new ");
            out.push_str(&s.type_name);
            out.push_str(" {");
            for (i, (name, v)) in s.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push(' ');
                out.push_str(name);
                out.push_str(": ");
                write_literal(v, out);
            }
            out.push_str(" }");
        }
        Value::Seq(elem, items) => {
            out.push_str("seq<");
            out.push_str(&type_source(elem));
            out.push_str(">[");
            for (i, v) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_literal(v, out);
            }
            out.push(']');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> Block {
        let block = parse_block(src).expect("parse");
        let printed = block_to_source(&block);
        let reparsed = parse_block(&printed).unwrap_or_else(|e| {
            panic!("reparse of {printed:?} failed: {e}");
        });
        assert_eq!(reparsed, block, "printed form: {printed}");
        block
    }

    #[test]
    fn literals() {
        let b = roundtrip(
            "return 1; return 2L; return 1.5; return 2.5f; return \"hi\\n\"; return 'x'; \
             return true; return null;",
        );
        assert_eq!(b.len(), 8);
        assert_eq!(b[0], Stmt::Return(Some(Expr::Lit(Value::Int(1)))));
        assert_eq!(b[1], Stmt::Return(Some(Expr::Lit(Value::Long(2)))));
        assert_eq!(b[2], Stmt::Return(Some(Expr::Lit(Value::Double(1.5)))));
        assert_eq!(b[3], Stmt::Return(Some(Expr::Lit(Value::Float(2.5)))));
        assert_eq!(
            b[4],
            Stmt::Return(Some(Expr::Lit(Value::Str("hi\n".into()))))
        );
        assert_eq!(b[5], Stmt::Return(Some(Expr::Lit(Value::Char('x')))));
    }

    #[test]
    fn precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(expr_to_source(&e), "1 + 2 * 3");
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(expr_to_source(&e), "(1 + 2) * 3");
        let e = parse_expr("a < b && c >= d || !e").unwrap();
        assert_eq!(expr_to_source(&e), "a < b && c >= d || !e");
    }

    #[test]
    fn left_associativity_preserved() {
        let e = parse_expr("10 - 3 - 2").unwrap();
        // (10 - 3) - 2, printed without spurious parens but re-parsing the
        // print must give the same tree.
        let printed = expr_to_source(&e);
        assert_eq!(parse_expr(&printed).unwrap(), e);
        let e2 = parse_expr("10 - (3 - 2)").unwrap();
        assert_ne!(e, e2);
        assert_eq!(parse_expr(&expr_to_source(&e2)).unwrap(), e2);
    }

    #[test]
    fn statements() {
        let b = roundtrip(
            "let x = 1; x = x + 1; this.total = x; \
             if (x > 1) { return x; } else { throw \"low\"; } \
             while (x < 10) { x = x + 1; } return;",
        );
        assert!(matches!(b[0], Stmt::Let(..)));
        assert!(matches!(b[1], Stmt::Assign(..)));
        assert!(matches!(b[2], Stmt::SetField(..)));
        assert!(matches!(b[3], Stmt::If { .. }));
        assert!(matches!(b[4], Stmt::While { .. }));
        assert!(matches!(b[5], Stmt::Return(None)));
    }

    #[test]
    fn self_call_named_args() {
        let e = parse_expr("add(a: 1, b: f(x: 2))").unwrap();
        match &e {
            Expr::SelfCall { method, args } => {
                assert_eq!(method, "add");
                assert_eq!(args.len(), 2);
                assert!(matches!(&args[1].1, Expr::SelfCall { method, .. } if method == "f"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(expr_to_source(&e), "add(a: 1, b: f(x: 2))");
    }

    #[test]
    fn builtins_and_constructors() {
        let b = roundtrip(
            "let s = new Point { x: 1, y: 2 }; \
             let xs = seq<int>[1, 2, 3]; \
             let n = len(xs); \
             let first = get(xs, 0); \
             let more = push(xs, 4); \
             return to_string(field(s, \"x\")) + to_string(contains(\"ab\", \"a\"));",
        );
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn field_reads_and_writes() {
        let b = roundtrip("this.count = this.count + 1; return this.count;");
        assert!(matches!(&b[0], Stmt::SetField(name, _) if name == "count"));
        assert!(matches!(
            &b[1],
            Stmt::Return(Some(Expr::FieldRef(name))) if name == "count"
        ));
    }

    #[test]
    fn comments_ignored() {
        let b = parse_block("// header\nreturn 1; // trailing\n").unwrap();
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn resolve_params_rebinds() {
        let mut b = parse_block("return a + b + c;").unwrap();
        resolve_params(&mut b, &["a".into(), "b".into()]);
        let Stmt::Return(Some(e)) = &b[0] else {
            panic!()
        };
        let mut params = 0;
        let mut locals = 0;
        let mut e = e.clone();
        e.walk_mut(&mut |x| match x {
            Expr::Param(_) => params += 1,
            Expr::Local(_) => locals += 1,
            _ => {}
        });
        assert_eq!((params, locals), (2, 1));
    }

    #[test]
    fn nested_comparisons_parenthesized() {
        // `a < b < c` is a syntax error (comparisons don't chain), so the
        // printer must parenthesize nested comparisons on either side.
        assert!(parse_expr("a < b < c").is_err());
        for src in ["(a < b) == c", "a == (b < c)", "(a < b) == (c < d)"] {
            let e = parse_expr(src).unwrap();
            let printed = expr_to_source(&e);
            assert_eq!(parse_expr(&printed).unwrap(), e, "printed: {printed}");
        }
    }

    #[test]
    fn negative_literals_roundtrip() {
        roundtrip("return -1; return 0 - 5; let x = -2.5; let y = -3L;");
    }

    #[test]
    fn nested_seq_type() {
        let b = roundtrip("return seq<seq<int>>[seq<int>[1], seq<int>[]];");
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn errors() {
        for bad in [
            "let = 1;",
            "return 1",        // missing ;
            "if x { }",        // missing parens
            "while (true) x;", // missing braces
            "f(1, 2);",        // self-call requires named args
            "\"unterminated",
            "let x = 1 +;",
            "@#$",
            "seq<int>[1, 2",
            "new P { x 1 };",
        ] {
            assert!(parse_block(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parse_class_roundtrips_class_source() {
        let src = "class Bank extends SOAPServer {\n\
                     field double balance;\n\
                     field seq<string> log;\n\
                     distributed double deposit(double amount) {\n\
                       this.balance = this.balance + amount;\n\
                       return this.balance;\n\
                     }\n\
                     boolean is_rich() { return this.balance > 1000000.0; }\n\
                   }";
        let class = parse_class(src).unwrap();
        assert_eq!(class.name(), "Bank");
        assert_eq!(class.superclass().as_deref(), Some("SOAPServer"));
        assert_eq!(class.declared_fields().len(), 2);
        assert_eq!(class.signatures().len(), 2);
        assert_eq!(class.distributed_signatures().len(), 1);

        // It executes.
        let inst = class.instantiate().unwrap();
        assert_eq!(
            inst.invoke("deposit", &[Value::Double(10.5)]).unwrap(),
            Value::Double(10.5)
        );
        assert_eq!(inst.invoke("is_rich", &[]).unwrap(), Value::Bool(false));

        // class_source -> parse_class -> class_source is a fixed point.
        let rendered = class.class_source();
        let reparsed = parse_class(&rendered).unwrap();
        assert_eq!(reparsed.class_source(), rendered);
    }

    #[test]
    fn parse_class_handles_native_comment_and_plain_class() {
        let class = parse_class("class Tiny { void nop() { /* native */ } }").unwrap();
        assert!(class.superclass().is_none());
        let inst = class.instantiate().unwrap();
        // Empty parsed body on a void method: runs and returns null.
        assert_eq!(inst.invoke("nop", &[]).unwrap(), Value::Null);
    }

    #[test]
    fn parse_class_errors() {
        for bad in [
            "",
            "class",
            "class X",
            "class X {",
            "class X { field int; }",
            "class X { int f( { } }",
            "class X { int f() { return 1; } } trailing",
            "class X { int f() { return 1; } int f() { return 2; } }",
            "class X { /* unterminated",
        ] {
            assert!(parse_class(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parse_expr_rejects_trailing() {
        assert!(parse_expr("1 + 2; 3").is_err());
    }

    #[test]
    fn executes_after_parsing() {
        use crate::{ClassHandle, MethodBuilder};
        let class = ClassHandle::new("Scripted");
        class.add_field("total", TypeDesc::Int).unwrap();
        let mut body = parse_block(
            "let i = 0; \
             while (i < n) { this.total = this.total + step; i = i + 1; } \
             return this.total;",
        )
        .unwrap();
        resolve_params(&mut body, &["n".into(), "step".into()]);
        class
            .add_method(
                MethodBuilder::new("accumulate", TypeDesc::Int)
                    .param("n", TypeDesc::Int)
                    .param("step", TypeDesc::Int)
                    .body_block(body),
            )
            .unwrap();
        let inst = class.instantiate().unwrap();
        assert_eq!(
            inst.invoke("accumulate", &[Value::Int(4), Value::Int(5)])
                .unwrap(),
            Value::Int(20)
        );
    }
}
