//! Live instances of dynamic classes.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use obs::sync::Mutex;

use crate::class::{ClassHandle, DynamicMethod, MethodId, MethodTable};
use crate::error::JpieError;
use crate::interp::Interp;
use crate::value::Value;

/// The mutable field store of a live instance.
///
/// Native method bodies receive `&mut Fields`; interpreted bodies access it
/// through `this.field` expressions.
#[derive(Debug, Default)]
pub struct Fields {
    map: HashMap<String, Value>,
}

impl Fields {
    pub(crate) fn from_map(map: HashMap<String, Value>) -> Fields {
        Fields { map }
    }

    pub(crate) fn rename(&mut self, old: &str, new: &str) {
        if let Some(v) = self.map.remove(old) {
            self.map.insert(new.to_string(), v);
        }
    }

    /// Reads a field.
    ///
    /// # Errors
    ///
    /// Fails if the field is not declared on the class.
    pub fn get(&self, name: &str) -> Result<Value, JpieError> {
        self.map
            .get(name)
            .cloned()
            .ok_or_else(|| JpieError::NoSuchField(name.to_string()))
    }

    /// Writes a field.
    ///
    /// # Errors
    ///
    /// Fails if the field is not declared on the class.
    pub fn set(&mut self, name: &str, value: Value) -> Result<(), JpieError> {
        match self.map.get_mut(name) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(JpieError::NoSuchField(name.to_string())),
        }
    }

    /// Declared field names (unspecified order).
    pub fn names(&self) -> Vec<String> {
        self.map.keys().cloned().collect()
    }

    pub(crate) fn sync_declarations(&mut self, declared: &[(String, crate::TypeDesc)]) {
        // Add newly declared fields with defaults; drop removed ones.
        for (name, ty) in declared {
            self.map
                .entry(name.clone())
                .or_insert_with(|| ty.default_value());
        }
        self.map
            .retain(|name, _| declared.iter().any(|(n, _)| n == name));
    }
}

/// The live instance of a dynamic class.
///
/// Method lookup happens at *every* invocation, so signature and body
/// edits made through the [`ClassHandle`] take effect immediately — the
/// core JPie property the paper's live server development builds on.
///
/// Lookup is epoch-cached: the instance holds an `Arc`-shared immutable
/// snapshot of the method table keyed by [`ClassHandle::edit_epoch`].
/// While the class is unedited, every invocation reuses the same
/// snapshot (one relaxed atomic load, zero clones); any edit bumps the
/// epoch, and the very next call refetches the table through the class
/// lock — preserving the immediate-effect semantics above.
///
/// Only one instance of a class exists at a time (paper §5.4); dropping
/// the instance releases the slot.
pub struct Instance {
    class: ClassHandle,
    fields: Arc<Mutex<Fields>>,
    /// Epoch-keyed method-table snapshot (`None` until first use).
    table: Mutex<Option<(u64, Arc<MethodTable>)>>,
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Instance")
            .field("class", &self.class.name())
            .finish_non_exhaustive()
    }
}

impl Instance {
    pub(crate) fn with_store(class: ClassHandle, fields: Arc<Mutex<Fields>>) -> Instance {
        Instance {
            class,
            fields,
            table: Mutex::new(None),
        }
    }

    /// The class this is an instance of.
    pub fn class(&self) -> &ClassHandle {
        &self.class
    }

    /// Invokes the method currently named `name` with positional `args`.
    ///
    /// # Errors
    ///
    /// * [`JpieError::NoSuchMethod`] if no method has that name — the
    ///   local analogue of the RMI "Non existent Method" condition,
    /// * [`JpieError::ArgumentMismatch`] if the arity or argument types do
    ///   not fit the current signature,
    /// * any error raised by the body (exceptions, arithmetic errors, the
    ///   step limit).
    pub fn invoke(&self, name: &str, args: &[Value]) -> Result<Value, JpieError> {
        let (snapshot, idx) = self.snapshot_and_find(|m| m.signature.name == name, name)?;
        self.run(&snapshot, idx, args)
    }

    /// Invokes a method by stable id (survives renames).
    ///
    /// # Errors
    ///
    /// Same as [`Instance::invoke`], with [`JpieError::StaleMethodId`] when
    /// the id no longer exists.
    pub fn invoke_id(&self, id: MethodId, args: &[Value]) -> Result<Value, JpieError> {
        let (snapshot, idx) = self
            .snapshot_and_find(|m| m.id == id, &id.to_string())
            .map_err(|e| match e {
                JpieError::NoSuchMethod(m) => JpieError::StaleMethodId(m),
                other => other,
            })?;
        self.run(&snapshot, idx, args)
    }

    /// Invokes a *distributed* method — the entry point used by the RMI
    /// call handlers. Non-distributed methods are invisible here, exactly
    /// as they are absent from the published interface.
    ///
    /// # Errors
    ///
    /// Same as [`Instance::invoke`].
    pub fn invoke_distributed(&self, name: &str, args: &[Value]) -> Result<Value, JpieError> {
        let (snapshot, idx) = self.snapshot_and_find(
            |m| m.signature.distributed && m.signature.name == name,
            name,
        )?;
        self.run(&snapshot, idx, args)
    }

    /// Reads a field of the live instance.
    ///
    /// # Errors
    ///
    /// Fails if the field is not declared.
    pub fn field(&self, name: &str) -> Result<Value, JpieError> {
        self.current_table();
        self.fields.lock().get(name)
    }

    /// Writes a field of the live instance.
    ///
    /// # Errors
    ///
    /// Fails if the field is not declared.
    pub fn set_field(&self, name: &str, value: Value) -> Result<(), JpieError> {
        self.current_table();
        self.fields.lock().set(name, value)
    }

    /// Snapshot of all field values, sorted by name (the debugger's
    /// instance-state view).
    pub fn fields_snapshot(&self) -> Vec<(String, Value)> {
        self.current_table();
        let fields = self.fields.lock();
        let mut out: Vec<(String, Value)> = fields
            .names()
            .into_iter()
            .filter_map(|n| fields.get(&n).ok().map(|v| (n, v)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The current method-table snapshot: one relaxed epoch load on the
    /// fast path; a class-lock refetch (plus a field-declaration re-sync)
    /// only after an edit bumped the epoch. Returns the *same* `Arc` for
    /// every call between edits — the zero-clone steady state.
    fn current_table(&self) -> Arc<MethodTable> {
        let epoch = self.class.edit_epoch();
        let mut cache = self.table.lock();
        if let Some((cached_epoch, table)) = cache.as_ref() {
            if *cached_epoch == epoch {
                return table.clone();
            }
        }
        let (epoch, table) = self.class.method_table();
        // Field declarations may have changed with the edit; bring the
        // live store up to date before the next body runs (JPie's
        // immediate-effect rule for field adds/removes).
        self.fields.lock().sync_declarations(&table.fields);
        *cache = Some((epoch, table.clone()));
        table
    }

    /// Address of the current snapshot — exposed so tests can assert the
    /// steady state reuses one allocation across calls.
    #[doc(hidden)]
    pub fn method_table_addr(&self) -> usize {
        Arc::as_ptr(&self.current_table()) as *const () as usize
    }

    fn snapshot_and_find(
        &self,
        pred: impl Fn(&DynamicMethod) -> bool,
        name: &str,
    ) -> Result<(Arc<MethodTable>, usize), JpieError> {
        let table = self.current_table();
        let idx = table
            .methods
            .iter()
            .position(pred)
            .ok_or_else(|| JpieError::NoSuchMethod(name.to_string()))?;
        Ok((table, idx))
    }

    fn run(&self, snapshot: &MethodTable, idx: usize, args: &[Value]) -> Result<Value, JpieError> {
        let method = &snapshot.methods[idx];
        let sig = &method.signature;
        if args.len() != sig.params.len() {
            return Err(JpieError::ArgumentMismatch(format!(
                "{} expects {} argument(s), got {}",
                sig.name,
                sig.params.len(),
                args.len()
            )));
        }
        let mut widened = Vec::with_capacity(args.len());
        for (p, a) in sig.params.iter().zip(args) {
            let v = a.widen_to(&p.ty).ok_or_else(|| {
                JpieError::ArgumentMismatch(format!(
                    "{}.{}: expected {}, got {}",
                    sig.name,
                    p.name,
                    p.ty,
                    a.type_desc()
                ))
            })?;
            widened.push(v);
        }
        let span = obs::trace::Span::timed(invoke_ns_histogram().clone());
        let out = Interp::new(&snapshot.methods, &self.fields).invoke(method, &widened);
        span.finish();
        out
    }
}

/// Latency of dynamic-method invocations, process-wide
/// (`jpie_invoke_ns`). Resolved once; recording is a few relaxed atomics.
fn invoke_ns_histogram() -> &'static std::sync::Arc<obs::Histogram> {
    static HIST: std::sync::OnceLock<std::sync::Arc<obs::Histogram>> = std::sync::OnceLock::new();
    HIST.get_or_init(|| obs::registry().histogram("jpie_invoke_ns"))
}

impl Drop for Instance {
    fn drop(&mut self) {
        self.class.release_instance();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::MethodBuilder;
    use crate::expr::{Builtin, Expr, Stmt};
    use crate::value::{StructValue, TypeDesc};

    fn calc() -> ClassHandle {
        let class = ClassHandle::new("Calc");
        class
            .add_method(
                MethodBuilder::new("add", TypeDesc::Int)
                    .param("a", TypeDesc::Int)
                    .param("b", TypeDesc::Int)
                    .distributed(true)
                    .body_expr(Expr::param("a") + Expr::param("b")),
            )
            .unwrap();
        class
    }

    #[test]
    fn basic_invocation() {
        let class = calc();
        let inst = class.instantiate().unwrap();
        assert_eq!(
            inst.invoke("add", &[Value::Int(2), Value::Int(3)]).unwrap(),
            Value::Int(5)
        );
    }

    #[test]
    fn live_body_change_takes_effect_immediately() {
        let class = calc();
        let id = class.find_method("add").unwrap();
        let inst = class.instantiate().unwrap();
        assert_eq!(
            inst.invoke("add", &[Value::Int(2), Value::Int(3)]).unwrap(),
            Value::Int(5)
        );
        class
            .set_body_expr(id, Expr::param("a") * Expr::param("b"))
            .unwrap();
        assert_eq!(
            inst.invoke("add", &[Value::Int(2), Value::Int(3)]).unwrap(),
            Value::Int(6)
        );
    }

    #[test]
    fn steady_state_invoke_reuses_one_table_snapshot() {
        let class = calc();
        let inst = class.instantiate().unwrap();
        inst.invoke("add", &[Value::Int(1), Value::Int(2)]).unwrap();
        let addr = inst.method_table_addr();
        for _ in 0..100 {
            inst.invoke("add", &[Value::Int(1), Value::Int(2)]).unwrap();
            // Same Arc allocation every call: zero method-table clones.
            assert_eq!(inst.method_table_addr(), addr);
        }
        // An edit bumps the epoch and the very next call sees a fresh
        // snapshot with the new behaviour.
        let id = class.find_method("add").unwrap();
        class
            .set_body_expr(id, Expr::param("a") - Expr::param("b"))
            .unwrap();
        assert_eq!(
            inst.invoke("add", &[Value::Int(5), Value::Int(3)]).unwrap(),
            Value::Int(2)
        );
        assert_ne!(inst.method_table_addr(), addr);
    }

    #[test]
    fn live_rename_changes_lookup() {
        let class = calc();
        let id = class.find_method("add").unwrap();
        let inst = class.instantiate().unwrap();
        class.rename_method(id, "plus").unwrap();
        assert!(matches!(
            inst.invoke("add", &[Value::Int(1), Value::Int(1)]),
            Err(JpieError::NoSuchMethod(_))
        ));
        assert_eq!(
            inst.invoke("plus", &[Value::Int(1), Value::Int(1)])
                .unwrap(),
            Value::Int(2)
        );
        // Stable id still works.
        assert_eq!(
            inst.invoke_id(id, &[Value::Int(1), Value::Int(1)]).unwrap(),
            Value::Int(2)
        );
    }

    #[test]
    fn argument_checking() {
        let class = calc();
        let inst = class.instantiate().unwrap();
        assert!(matches!(
            inst.invoke("add", &[Value::Int(1)]),
            Err(JpieError::ArgumentMismatch(_))
        ));
        assert!(matches!(
            inst.invoke("add", &[Value::Str("x".into()), Value::Int(1)]),
            Err(JpieError::ArgumentMismatch(_))
        ));
    }

    #[test]
    fn widening_applies_to_arguments() {
        let class = ClassHandle::new("C");
        class
            .add_method(
                MethodBuilder::new("half", TypeDesc::Double)
                    .param("x", TypeDesc::Double)
                    .body_expr(Expr::param("x") / Expr::lit(2.0)),
            )
            .unwrap();
        let inst = class.instantiate().unwrap();
        assert_eq!(
            inst.invoke("half", &[Value::Int(7)]).unwrap(),
            Value::Double(3.5)
        );
    }

    #[test]
    fn invoke_distributed_hides_local_methods() {
        let class = calc();
        class
            .add_method(MethodBuilder::new("secret", TypeDesc::Int).body_expr(Expr::lit(42)))
            .unwrap();
        let inst = class.instantiate().unwrap();
        assert!(inst.invoke("secret", &[]).is_ok());
        assert!(matches!(
            inst.invoke_distributed("secret", &[]),
            Err(JpieError::NoSuchMethod(_))
        ));
    }

    #[test]
    fn fields_statements_and_loops() {
        let class = ClassHandle::new("Acc");
        class.add_field("total", TypeDesc::Int).unwrap();
        class
            .add_method(
                MethodBuilder::new("bump", TypeDesc::Int)
                    .param("n", TypeDesc::Int)
                    .body_block(vec![
                        Stmt::Let("i".into(), Expr::lit(0)),
                        Stmt::While {
                            cond: Expr::local("i").lt(Expr::param("n")),
                            body: vec![
                                Stmt::SetField("total".into(), Expr::field("total") + Expr::lit(1)),
                                Stmt::Assign("i".into(), Expr::local("i") + Expr::lit(1)),
                            ],
                        },
                        Stmt::Return(Some(Expr::field("total"))),
                    ]),
            )
            .unwrap();
        let inst = class.instantiate().unwrap();
        assert_eq!(
            inst.invoke("bump", &[Value::Int(3)]).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            inst.invoke("bump", &[Value::Int(2)]).unwrap(),
            Value::Int(5)
        );
        assert_eq!(inst.field("total").unwrap(), Value::Int(5));
    }

    #[test]
    fn field_added_live_is_visible() {
        let class = calc();
        let inst = class.instantiate().unwrap();
        assert!(inst.field("greeting").is_err());
        class.add_field("greeting", TypeDesc::Str).unwrap();
        assert_eq!(inst.field("greeting").unwrap(), Value::Str(String::new()));
        inst.set_field("greeting", Value::Str("hi".into())).unwrap();
        class.remove_field("greeting").unwrap();
        assert!(inst.field("greeting").is_err());
    }

    #[test]
    fn exceptions_propagate() {
        let class = ClassHandle::new("C");
        class
            .add_method(
                MethodBuilder::new("boom", TypeDesc::Void)
                    .body_block(vec![Stmt::Throw(Expr::lit("kaboom"))]),
            )
            .unwrap();
        let inst = class.instantiate().unwrap();
        assert_eq!(
            inst.invoke("boom", &[]),
            Err(JpieError::Exception("kaboom".into()))
        );
    }

    #[test]
    fn runaway_loop_hits_step_limit() {
        let class = ClassHandle::new("C");
        class
            .add_method(
                MethodBuilder::new("spin", TypeDesc::Void).body_block(vec![Stmt::While {
                    cond: Expr::lit(true),
                    body: vec![],
                }]),
            )
            .unwrap();
        let inst = class.instantiate().unwrap();
        assert_eq!(inst.invoke("spin", &[]), Err(JpieError::StepLimit));
    }

    #[test]
    fn division_by_zero() {
        let class = ClassHandle::new("C");
        class
            .add_method(
                MethodBuilder::new("div", TypeDesc::Int)
                    .param("a", TypeDesc::Int)
                    .param("b", TypeDesc::Int)
                    .body_expr(Expr::param("a") / Expr::param("b")),
            )
            .unwrap();
        let inst = class.instantiate().unwrap();
        assert!(matches!(
            inst.invoke("div", &[Value::Int(1), Value::Int(0)]),
            Err(JpieError::Arithmetic(_))
        ));
    }

    #[test]
    fn native_bodies_interoperate() {
        let class = ClassHandle::new("C");
        class.add_field("hits", TypeDesc::Int).unwrap();
        class
            .add_method(MethodBuilder::new("native_hit", TypeDesc::Int).body_native(
                |fields, _args| {
                    let Value::Int(n) = fields.get("hits")? else {
                        return Err(JpieError::TypeError("hits".into()));
                    };
                    fields.set("hits", Value::Int(n + 1))?;
                    fields.get("hits")
                },
            ))
            .unwrap();
        // An interpreted method calling the native one.
        class
            .add_method(MethodBuilder::new("twice", TypeDesc::Int).body_block(vec![
                Stmt::Expr(Expr::self_call("native_hit", vec![])),
                Stmt::Return(Some(Expr::self_call("native_hit", vec![]))),
            ]))
            .unwrap();
        let inst = class.instantiate().unwrap();
        assert_eq!(inst.invoke("twice", &[]).unwrap(), Value::Int(2));
    }

    #[test]
    fn builtins_work() {
        let class = ClassHandle::new("C");
        class
            .add_method(
                MethodBuilder::new("shout", TypeDesc::Str)
                    .param("s", TypeDesc::Str)
                    .body_expr(
                        Expr::param("s")
                            + Expr::lit("! (")
                            + Expr::Call {
                                builtin: Builtin::ToStr,
                                args: vec![Expr::Call {
                                    builtin: Builtin::Len,
                                    args: vec![Expr::param("s")],
                                }],
                            }
                            + Expr::lit(")"),
                    ),
            )
            .unwrap();
        let inst = class.instantiate().unwrap();
        assert_eq!(
            inst.invoke("shout", &[Value::Str("hey".into())]).unwrap(),
            Value::Str("hey! (3)".into())
        );
    }

    #[test]
    fn struct_and_seq_expressions() {
        let class = ClassHandle::new("C");
        class
            .add_method(
                MethodBuilder::new("mk", TypeDesc::Named("Point".into())).body_expr(
                    Expr::MakeStruct {
                        type_name: "Point".into(),
                        fields: vec![("x".into(), Expr::lit(1)), ("y".into(), Expr::lit(2))],
                    },
                ),
            )
            .unwrap();
        class
            .add_method(
                MethodBuilder::new("xs", TypeDesc::Seq(Box::new(TypeDesc::Int))).body_expr(
                    Expr::MakeSeq {
                        elem: TypeDesc::Int,
                        items: vec![Expr::lit(1), Expr::lit(2), Expr::lit(3)],
                    },
                ),
            )
            .unwrap();
        let inst = class.instantiate().unwrap();
        assert_eq!(
            inst.invoke("mk", &[]).unwrap(),
            Value::Struct(
                StructValue::new("Point")
                    .with("x", Value::Int(1))
                    .with("y", Value::Int(2))
            )
        );
        assert_eq!(
            inst.invoke("xs", &[]).unwrap(),
            Value::Seq(
                TypeDesc::Int,
                vec![Value::Int(1), Value::Int(2), Value::Int(3)]
            )
        );
    }

    #[test]
    fn void_method_returns_null() {
        let class = ClassHandle::new("C");
        class
            .add_method(MethodBuilder::new("nop", TypeDesc::Void).body_block(vec![]))
            .unwrap();
        let inst = class.instantiate().unwrap();
        assert_eq!(inst.invoke("nop", &[]).unwrap(), Value::Null);
    }

    #[test]
    fn non_void_fallthrough_is_error() {
        let class = ClassHandle::new("C");
        class
            .add_method(MethodBuilder::new("bad", TypeDesc::Int).body_block(vec![]))
            .unwrap();
        let inst = class.instantiate().unwrap();
        assert!(matches!(
            inst.invoke("bad", &[]),
            Err(JpieError::TypeError(_))
        ));
    }

    #[test]
    fn empty_body_raises() {
        let class = ClassHandle::new("C");
        class
            .add_method(MethodBuilder::new("todo", TypeDesc::Void))
            .unwrap();
        let inst = class.instantiate().unwrap();
        assert!(matches!(
            inst.invoke("todo", &[]),
            Err(JpieError::Exception(_))
        ));
    }
}
