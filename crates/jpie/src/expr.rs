//! The interpreted expression/statement language used for live method
//! bodies.
//!
//! JPie represents method bodies as graphical programming constructs that
//! can be edited while the program runs. Here the equivalent is a small
//! AST: because bodies are *data*, SDE servers can be modified live —
//! the property every experiment in the paper depends on.
//!
//! Call sites of sibling methods use **named arguments**
//! ([`Expr::SelfCall`] carries `(parameter name, expression)` pairs), which
//! is how this runtime preserves JPie's *consistency of declaration and
//! use*: reordering a parameter list never breaks a call site, and renames
//! rewrite the stored names (see [`crate::ClassHandle::rename_method`] and
//! [`crate::ClassHandle::rename_param`]).

use crate::value::{TypeDesc, Value};

/// Binary operators.
///
/// `Add` on two strings concatenates, mirroring Java's `+`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (numeric addition or string concatenation)
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Numeric negation.
    Neg,
    /// Boolean negation.
    Not,
}

/// Built-in functions available to interpreted bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// `len(string | seq) -> int`
    Len,
    /// `get(seq, int) -> element`
    Get,
    /// `push(seq, element) -> seq` (returns the extended sequence)
    Push,
    /// `to_string(any) -> string`
    ToStr,
    /// `contains(string, string) -> boolean`
    Contains,
    /// `field(struct, "name") -> value` (second argument must be a string
    /// literal)
    Field,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Lit(Value),
    /// Reference to a method parameter, by name.
    Param(String),
    /// Reference to an instance field, by name.
    FieldRef(String),
    /// Reference to a `let`-bound local, by name.
    Local(String),
    /// Invocation of a sibling method on the same instance, with **named**
    /// arguments.
    SelfCall {
        /// The callee's current name.
        method: String,
        /// `(parameter name, argument)` pairs; order is irrelevant.
        args: Vec<(String, Expr)>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Built-in function call.
    Call {
        /// Which built-in.
        builtin: Builtin,
        /// Arguments, positional.
        args: Vec<Expr>,
    },
    /// Constructs a struct value.
    MakeStruct {
        /// Type name of the struct.
        type_name: String,
        /// Field initializers.
        fields: Vec<(String, Expr)>,
    },
    /// Constructs a sequence of the given element type.
    MakeSeq {
        /// Element type.
        elem: TypeDesc,
        /// Element expressions.
        items: Vec<Expr>,
    },
}

impl Expr {
    /// Literal shorthand.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// Parameter reference shorthand.
    pub fn param(name: impl Into<String>) -> Expr {
        Expr::Param(name.into())
    }

    /// Field reference shorthand.
    pub fn field(name: impl Into<String>) -> Expr {
        Expr::FieldRef(name.into())
    }

    /// Local reference shorthand.
    pub fn local(name: impl Into<String>) -> Expr {
        Expr::Local(name.into())
    }

    /// Self-call shorthand.
    pub fn self_call(method: impl Into<String>, args: Vec<(&str, Expr)>) -> Expr {
        Expr::SelfCall {
            method: method.into(),
            args: args.into_iter().map(|(n, e)| (n.to_string(), e)).collect(),
        }
    }

    /// Comparison helper: `self == rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Eq, rhs)
    }

    /// Comparison helper: `self != rhs`.
    pub fn ne(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ne, rhs)
    }

    /// Comparison helper: `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Lt, rhs)
    }

    /// Comparison helper: `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Le, rhs)
    }

    /// Comparison helper: `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Gt, rhs)
    }

    /// Comparison helper: `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ge, rhs)
    }

    /// Logical and (short-circuit).
    pub fn and(self, rhs: Expr) -> Expr {
        self.bin(BinOp::And, rhs)
    }

    /// Logical or (short-circuit).
    pub fn or(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Or, rhs)
    }

    /// Boolean negation.
    #[allow(clippy::should_implement_trait)] // builder method, not ops::Not
    pub fn not(self) -> Expr {
        Expr::Unary {
            op: UnOp::Not,
            expr: Box::new(self),
        }
    }

    fn bin(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(self),
            rhs: Box::new(rhs),
        }
    }

    /// Rewrites every self-call of `old` to `new` (declaration/use
    /// consistency for method renames). Returns the number of call sites
    /// updated.
    pub(crate) fn rename_method_uses(&mut self, old: &str, new: &str) -> usize {
        let mut n = 0;
        self.walk_mut(&mut |e| {
            if let Expr::SelfCall { method, .. } = e {
                if method == old {
                    *method = new.to_string();
                    n += 1;
                }
            }
        });
        n
    }

    /// Rewrites named-argument keys of calls to `method` from `old` to
    /// `new` (declaration/use consistency for parameter renames).
    pub(crate) fn rename_param_uses(&mut self, method: &str, old: &str, new: &str) -> usize {
        let mut n = 0;
        self.walk_mut(&mut |e| {
            if let Expr::SelfCall { method: m, args } = e {
                if m == method {
                    for (name, _) in args.iter_mut() {
                        if name == old {
                            *name = new.to_string();
                            n += 1;
                        }
                    }
                }
            }
        });
        n
    }

    /// Adds a default argument for a newly added parameter to every call
    /// of `method`.
    pub(crate) fn add_param_uses(&mut self, method: &str, param: &str, default: &Value) -> usize {
        let mut n = 0;
        self.walk_mut(&mut |e| {
            if let Expr::SelfCall { method: m, args } = e {
                if m == method && !args.iter().any(|(p, _)| p == param) {
                    args.push((param.to_string(), Expr::Lit(default.clone())));
                    n += 1;
                }
            }
        });
        n
    }

    /// Removes the argument for a deleted parameter from every call of
    /// `method`.
    pub(crate) fn remove_param_uses(&mut self, method: &str, param: &str) -> usize {
        let mut n = 0;
        self.walk_mut(&mut |e| {
            if let Expr::SelfCall { method: m, args } = e {
                if m == method {
                    let before = args.len();
                    args.retain(|(p, _)| p != param);
                    n += before - args.len();
                }
            }
        });
        n
    }

    /// Applies `f` to this expression and all sub-expressions.
    pub(crate) fn walk_mut(&mut self, f: &mut dyn FnMut(&mut Expr)) {
        f(self);
        match self {
            Expr::Lit(_) | Expr::Param(_) | Expr::FieldRef(_) | Expr::Local(_) => {}
            Expr::SelfCall { args, .. } => {
                for (_, a) in args {
                    a.walk_mut(f);
                }
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk_mut(f);
                rhs.walk_mut(f);
            }
            Expr::Unary { expr, .. } => expr.walk_mut(f),
            Expr::Call { args, .. } => {
                for a in args {
                    a.walk_mut(f);
                }
            }
            Expr::MakeStruct { fields, .. } => {
                for (_, e) in fields {
                    e.walk_mut(f);
                }
            }
            Expr::MakeSeq { items, .. } => {
                for e in items {
                    e.walk_mut(f);
                }
            }
        }
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Add, rhs)
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Sub, rhs)
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Mul, rhs)
    }
}

impl std::ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Div, rhs)
    }
}

impl std::ops::Rem for Expr {
    type Output = Expr;
    fn rem(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Rem, rhs)
    }
}

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Unary {
            op: UnOp::Neg,
            expr: Box::new(self),
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let name = expr;` — introduces a local.
    Let(String, Expr),
    /// `name = expr;` — assigns an existing local.
    Assign(String, Expr),
    /// `this.name = expr;` — assigns an instance field.
    SetField(String, Expr),
    /// `if cond { then } else { otherwise }`
    If {
        /// Condition (must evaluate to a boolean).
        cond: Expr,
        /// Then branch.
        then: Block,
        /// Else branch.
        otherwise: Block,
    },
    /// `while cond { body }`
    While {
        /// Condition (must evaluate to a boolean).
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `return expr;` / `return;`
    Return(Option<Expr>),
    /// `throw "message";` — raises an exception that the RMI layer wraps
    /// in a SOAP Fault / CORBA exception.
    Throw(Expr),
    /// Evaluate for effect.
    Expr(Expr),
}

/// A sequence of statements.
pub type Block = Vec<Stmt>;

/// Applies `f` to every expression in a block (used by the consistency
/// rewrites).
pub(crate) fn walk_block_mut(block: &mut Block, f: &mut dyn FnMut(&mut Expr)) {
    for stmt in block {
        match stmt {
            Stmt::Let(_, e) | Stmt::Assign(_, e) | Stmt::SetField(_, e) | Stmt::Throw(e) => {
                e.walk_mut(f)
            }
            Stmt::If {
                cond,
                then,
                otherwise,
            } => {
                cond.walk_mut(f);
                walk_block_mut(then, f);
                walk_block_mut(otherwise, f);
            }
            Stmt::While { cond, body } => {
                cond.walk_mut(f);
                walk_block_mut(body, f);
            }
            Stmt::Return(Some(e)) => e.walk_mut(f),
            Stmt::Return(None) => {}
            Stmt::Expr(e) => e.walk_mut(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_builders() {
        let e = Expr::param("a") + Expr::lit(1);
        assert!(matches!(e, Expr::Binary { op: BinOp::Add, .. }));
        let e = -Expr::param("a");
        assert!(matches!(e, Expr::Unary { op: UnOp::Neg, .. }));
        let e = Expr::param("a").lt(Expr::lit(10)).and(Expr::lit(true));
        assert!(matches!(e, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn rename_method_rewrites_nested_calls() {
        let mut e = Expr::self_call("f", vec![("x", Expr::self_call("f", vec![]))]);
        let n = e.rename_method_uses("f", "g");
        assert_eq!(n, 2);
        match &e {
            Expr::SelfCall { method, args } => {
                assert_eq!(method, "g");
                assert!(matches!(&args[0].1, Expr::SelfCall { method, .. } if method == "g"));
            }
            _ => panic!("shape changed"),
        }
    }

    #[test]
    fn rename_param_only_touches_target_method() {
        let mut e = Expr::self_call("f", vec![("x", Expr::lit(1))]);
        assert_eq!(e.rename_param_uses("g", "x", "y"), 0);
        assert_eq!(e.rename_param_uses("f", "x", "y"), 1);
        assert!(matches!(&e, Expr::SelfCall { args, .. } if args[0].0 == "y"));
    }

    #[test]
    fn add_and_remove_param_uses() {
        let mut e = Expr::self_call("f", vec![("a", Expr::lit(1))]);
        assert_eq!(e.add_param_uses("f", "b", &Value::Int(0)), 1);
        // Adding again is a no-op (idempotent).
        assert_eq!(e.add_param_uses("f", "b", &Value::Int(0)), 0);
        assert_eq!(e.remove_param_uses("f", "a"), 1);
        assert!(matches!(&e, Expr::SelfCall { args, .. } if args.len() == 1 && args[0].0 == "b"));
    }

    #[test]
    fn walk_block_reaches_all_positions() {
        let mut block: Block = vec![
            Stmt::Let("x".into(), Expr::self_call("f", vec![])),
            Stmt::If {
                cond: Expr::self_call("f", vec![]),
                then: vec![Stmt::Return(Some(Expr::self_call("f", vec![])))],
                otherwise: vec![Stmt::While {
                    cond: Expr::lit(false),
                    body: vec![Stmt::Expr(Expr::self_call("f", vec![]))],
                }],
            },
            Stmt::Throw(Expr::self_call("f", vec![])),
        ];
        let mut count = 0;
        walk_block_mut(&mut block, &mut |e| {
            if matches!(e, Expr::SelfCall { .. }) {
                count += 1;
            }
        });
        assert_eq!(count, 5);
    }
}
