//! Evaluator for interpreted method bodies.
//!
//! Invocation snapshots the class's method table (an `Arc`-cheap clone)
//! so an execution in flight is internally consistent even while the class
//! is being edited live; the *next* call observes the edits, which is the
//! "changes take effect immediately upon existing instances" semantics the
//! paper relies on.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use obs::metrics::Gauge;
use obs::sync::Mutex;

use crate::class::{DynamicMethod, MethodBody, MethodSignature};
use crate::error::JpieError;
use crate::expr::{BinOp, Block, Builtin, Expr, Stmt, UnOp};
use crate::instance::Fields;
use crate::value::{StructValue, TypeDesc, Value};

/// Upper bound on interpreter steps per top-level invocation; a live edit
/// can easily introduce an accidental infinite loop, and the server must
/// survive it.
const STEP_LIMIT: u64 = 1_000_000;

/// Upper bound on self-call depth. The interpreter recurses on the native
/// stack, so unbounded recursion in a live body (e.g. a method calling
/// itself without a base case) would overflow the process stack instead
/// of raising a catchable error. The limit is conservative because call
/// handlers run on default-sized (2 MiB) threads and debug-build frames
/// are large.
const DEPTH_LIMIT: u32 = 64;

/// High-water mark of interpreter self-call depth, process-wide
/// (`jpie_eval_depth_max`). Resolved once; the hot path is one relaxed
/// compare-and-swap loop.
fn eval_depth_gauge() -> &'static Arc<Gauge> {
    static GAUGE: OnceLock<Arc<Gauge>> = OnceLock::new();
    GAUGE.get_or_init(|| obs::registry().gauge("jpie_eval_depth_max"))
}

pub(crate) struct Interp<'a> {
    methods: &'a [DynamicMethod],
    fields: &'a Mutex<Fields>,
    steps: u64,
    depth: u32,
}

enum Flow {
    Normal,
    Return(Value),
}

impl<'a> Interp<'a> {
    pub(crate) fn new(methods: &'a [DynamicMethod], fields: &'a Mutex<Fields>) -> Interp<'a> {
        Interp {
            methods,
            fields,
            steps: 0,
            depth: 0,
        }
    }

    /// Invokes `method` with positional `args` (already arity/type checked
    /// and widened by the caller).
    pub(crate) fn invoke(
        &mut self,
        method: &DynamicMethod,
        args: &[Value],
    ) -> Result<Value, JpieError> {
        self.depth += 1;
        if self.depth > DEPTH_LIMIT {
            self.depth -= 1;
            return Err(JpieError::Exception(format!(
                "recursion depth limit ({DEPTH_LIMIT}) exceeded in {}",
                method.signature.name
            )));
        }
        eval_depth_gauge().set_max(i64::from(self.depth));
        let out = self.invoke_inner(method, args);
        self.depth -= 1;
        out
    }

    fn invoke_inner(&mut self, method: &DynamicMethod, args: &[Value]) -> Result<Value, JpieError> {
        let mut scope: HashMap<String, Value> = HashMap::new();
        for (p, v) in method.signature.params.iter().zip(args) {
            scope.insert(p.name.clone(), v.clone());
        }
        match &method.body {
            MethodBody::Empty => Err(JpieError::Exception(format!(
                "method {} has no body",
                method.signature.name
            ))),
            MethodBody::Native(f) => {
                let mut fields = self.fields.lock();
                f(&mut fields, args)
            }
            MethodBody::Interpreted(block) => match self.eval_block(block, &mut scope)? {
                Flow::Return(v) => coerce_return(v, &method.signature),
                Flow::Normal => {
                    if method.signature.return_ty == TypeDesc::Void {
                        Ok(Value::Null)
                    } else {
                        Err(JpieError::TypeError(format!(
                            "method {} fell off the end without returning {}",
                            method.signature.name, method.signature.return_ty
                        )))
                    }
                }
            },
        }
    }

    fn tick(&mut self) -> Result<(), JpieError> {
        self.steps += 1;
        if self.steps > STEP_LIMIT {
            Err(JpieError::StepLimit)
        } else {
            Ok(())
        }
    }

    fn eval_block(
        &mut self,
        block: &Block,
        scope: &mut HashMap<String, Value>,
    ) -> Result<Flow, JpieError> {
        for stmt in block {
            self.tick()?;
            match stmt {
                Stmt::Let(name, e) => {
                    let v = self.eval(e, scope)?;
                    scope.insert(name.clone(), v);
                }
                Stmt::Assign(name, e) => {
                    let v = self.eval(e, scope)?;
                    if !scope.contains_key(name) {
                        return Err(JpieError::TypeError(format!(
                            "assignment to undeclared local {name:?}"
                        )));
                    }
                    scope.insert(name.clone(), v);
                }
                Stmt::SetField(name, e) => {
                    let v = self.eval(e, scope)?;
                    self.fields.lock().set(name, v)?;
                }
                Stmt::If {
                    cond,
                    then,
                    otherwise,
                } => {
                    let branch = if self.eval(cond, scope)?.as_bool()? {
                        then
                    } else {
                        otherwise
                    };
                    if let Flow::Return(v) = self.eval_block(branch, scope)? {
                        return Ok(Flow::Return(v));
                    }
                }
                Stmt::While { cond, body } => {
                    while self.eval(cond, scope)?.as_bool()? {
                        self.tick()?;
                        if let Flow::Return(v) = self.eval_block(body, scope)? {
                            return Ok(Flow::Return(v));
                        }
                    }
                }
                Stmt::Return(e) => {
                    let v = match e {
                        Some(e) => self.eval(e, scope)?,
                        None => Value::Null,
                    };
                    return Ok(Flow::Return(v));
                }
                Stmt::Throw(e) => {
                    let v = self.eval(e, scope)?;
                    return Err(JpieError::Exception(v.to_string()));
                }
                Stmt::Expr(e) => {
                    self.eval(e, scope)?;
                }
            }
        }
        Ok(Flow::Normal)
    }

    fn eval(
        &mut self,
        expr: &Expr,
        scope: &mut HashMap<String, Value>,
    ) -> Result<Value, JpieError> {
        self.tick()?;
        match expr {
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Param(name) | Expr::Local(name) => scope
                .get(name)
                .cloned()
                .ok_or_else(|| JpieError::TypeError(format!("unbound name {name:?}"))),
            Expr::FieldRef(name) => self.fields.lock().get(name),
            Expr::SelfCall { method, args } => {
                let callee = self
                    .methods
                    .iter()
                    .find(|m| m.signature.name == *method)
                    .ok_or_else(|| JpieError::NoSuchMethod(method.clone()))?
                    .clone();
                let mut positional = Vec::with_capacity(callee.signature.params.len());
                for p in &callee.signature.params {
                    let arg = args
                        .iter()
                        .find(|(n, _)| n == &p.name)
                        .map(|(_, e)| e)
                        .ok_or_else(|| {
                            JpieError::ArgumentMismatch(format!(
                                "call to {} is missing argument {:?}",
                                method, p.name
                            ))
                        })?;
                    let v = self.eval(arg, scope)?;
                    let v = v.widen_to(&p.ty).ok_or_else(|| {
                        JpieError::ArgumentMismatch(format!(
                            "argument {:?} of {}: expected {}, got {}",
                            p.name,
                            method,
                            p.ty,
                            v.type_desc()
                        ))
                    })?;
                    positional.push(v);
                }
                self.invoke(&callee, &positional)
            }
            Expr::Binary { op, lhs, rhs } => {
                // Short-circuit logical operators.
                match op {
                    BinOp::And => {
                        return if !self.eval(lhs, scope)?.as_bool()? {
                            Ok(Value::Bool(false))
                        } else {
                            Ok(Value::Bool(self.eval(rhs, scope)?.as_bool()?))
                        }
                    }
                    BinOp::Or => {
                        return if self.eval(lhs, scope)?.as_bool()? {
                            Ok(Value::Bool(true))
                        } else {
                            Ok(Value::Bool(self.eval(rhs, scope)?.as_bool()?))
                        }
                    }
                    _ => {}
                }
                let l = self.eval(lhs, scope)?;
                let r = self.eval(rhs, scope)?;
                eval_binary(*op, l, r)
            }
            Expr::Unary { op, expr } => {
                let v = self.eval(expr, scope)?;
                match op {
                    UnOp::Not => Ok(Value::Bool(!v.as_bool()?)),
                    UnOp::Neg => match v {
                        Value::Int(i) => i
                            .checked_neg()
                            .map(Value::Int)
                            .ok_or_else(|| JpieError::Arithmetic("int overflow".into())),
                        Value::Long(l) => l
                            .checked_neg()
                            .map(Value::Long)
                            .ok_or_else(|| JpieError::Arithmetic("long overflow".into())),
                        Value::Float(x) => Ok(Value::Float(-x)),
                        Value::Double(x) => Ok(Value::Double(-x)),
                        other => Err(JpieError::TypeError(format!(
                            "cannot negate {}",
                            other.type_desc()
                        ))),
                    },
                }
            }
            Expr::Call { builtin, args } => {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| self.eval(a, scope))
                    .collect::<Result<_, _>>()?;
                eval_builtin(*builtin, args, vals)
            }
            Expr::MakeStruct { type_name, fields } => {
                let mut s = StructValue::new(type_name.clone());
                for (n, e) in fields {
                    let v = self.eval(e, scope)?;
                    s.fields.push((n.clone(), v));
                }
                Ok(Value::Struct(s))
            }
            Expr::MakeSeq { elem, items } => {
                let mut vals = Vec::with_capacity(items.len());
                for e in items {
                    let v = self.eval(e, scope)?;
                    let v = v.widen_to(elem).ok_or_else(|| {
                        JpieError::TypeError(format!(
                            "sequence of {} cannot hold {}",
                            elem,
                            v.type_desc()
                        ))
                    })?;
                    vals.push(v);
                }
                Ok(Value::Seq(elem.clone(), vals))
            }
        }
    }
}

fn coerce_return(v: Value, sig: &MethodSignature) -> Result<Value, JpieError> {
    if sig.return_ty == TypeDesc::Void {
        return Ok(Value::Null);
    }
    v.widen_to(&sig.return_ty).ok_or_else(|| {
        JpieError::TypeError(format!(
            "method {} returned {}, expected {}",
            sig.name,
            v.type_desc(),
            sig.return_ty
        ))
    })
}

/// Numeric tower used by arithmetic: both operands are promoted to the
/// wider of the two.
enum Num {
    Int(i32),
    Long(i64),
    Float(f32),
    Double(f64),
}

fn promote(l: Value, r: Value) -> Option<(Num, Num)> {
    use Value::*;
    let rank = |v: &Value| match v {
        Int(_) => Some(0),
        Long(_) => Some(1),
        Float(_) => Some(2),
        Double(_) => Some(3),
        _ => None,
    };
    let target = rank(&l)?.max(rank(&r)?);
    let conv = |v: Value| -> Num {
        match (v, target) {
            (Int(i), 0) => Num::Int(i),
            (Int(i), 1) => Num::Long(i64::from(i)),
            (Int(i), 2) => Num::Float(i as f32),
            (Int(i), 3) => Num::Double(f64::from(i)),
            (Long(x), 1) => Num::Long(x),
            (Long(x), 2) => Num::Float(x as f32),
            (Long(x), 3) => Num::Double(x as f64),
            (Float(x), 2) => Num::Float(x),
            (Float(x), 3) => Num::Double(f64::from(x)),
            (Double(x), 3) => Num::Double(x),
            _ => unreachable!("rank computed above"),
        }
    };
    Some((conv(l), conv(r)))
}

fn eval_binary(op: BinOp, l: Value, r: Value) -> Result<Value, JpieError> {
    use BinOp::*;
    // String concatenation: Java's `+` semantics when either side is a
    // string.
    if op == Add {
        if let Value::Str(ls) = &l {
            return Ok(Value::Str(format!("{ls}{r}")));
        }
        if let Value::Str(rs) = &r {
            return Ok(Value::Str(format!("{l}{rs}")));
        }
    }
    match op {
        Eq => return Ok(Value::Bool(l == r)),
        Ne => return Ok(Value::Bool(l != r)),
        _ => {}
    }
    // Ordering on strings and chars.
    if matches!(op, Lt | Le | Gt | Ge) {
        match (&l, &r) {
            (Value::Str(a), Value::Str(b)) => return Ok(Value::Bool(cmp_ord(op, a.cmp(b)))),
            (Value::Char(a), Value::Char(b)) => return Ok(Value::Bool(cmp_ord(op, a.cmp(b)))),
            _ => {}
        }
    }
    let type_err = || {
        JpieError::TypeError(format!(
            "operator {:?} not applicable to {} and {}",
            op,
            l.type_desc(),
            r.type_desc()
        ))
    };
    let (ln, rn) = promote(l.clone(), r.clone()).ok_or_else(type_err)?;
    match (ln, rn) {
        (Num::Int(a), Num::Int(b)) => int_op(op, i64::from(a), i64::from(b)).map(|v| match v {
            Value::Long(x) => Value::Int(x as i32),
            other => other,
        }),
        (Num::Long(a), Num::Long(b)) => int_op(op, a, b),
        (Num::Float(a), Num::Float(b)) => {
            float_op(op, f64::from(a), f64::from(b)).map(|v| match v {
                Value::Double(x) => Value::Float(x as f32),
                other => other,
            })
        }
        (Num::Double(a), Num::Double(b)) => float_op(op, a, b),
        _ => Err(type_err()),
    }
}

fn cmp_ord(op: BinOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        BinOp::Lt => ord == Less,
        BinOp::Le => ord != Greater,
        BinOp::Gt => ord == Greater,
        BinOp::Ge => ord != Less,
        _ => unreachable!("comparison operator"),
    }
}

fn int_op(op: BinOp, a: i64, b: i64) -> Result<Value, JpieError> {
    use BinOp::*;
    let overflow = || JpieError::Arithmetic("integer overflow".into());
    match op {
        Add => a.checked_add(b).map(Value::Long).ok_or_else(overflow),
        Sub => a.checked_sub(b).map(Value::Long).ok_or_else(overflow),
        Mul => a.checked_mul(b).map(Value::Long).ok_or_else(overflow),
        Div => {
            if b == 0 {
                Err(JpieError::Arithmetic("division by zero".into()))
            } else {
                a.checked_div(b).map(Value::Long).ok_or_else(overflow)
            }
        }
        Rem => {
            if b == 0 {
                Err(JpieError::Arithmetic("division by zero".into()))
            } else {
                a.checked_rem(b).map(Value::Long).ok_or_else(overflow)
            }
        }
        Lt => Ok(Value::Bool(a < b)),
        Le => Ok(Value::Bool(a <= b)),
        Gt => Ok(Value::Bool(a > b)),
        Ge => Ok(Value::Bool(a >= b)),
        Eq | Ne | And | Or => unreachable!("handled earlier"),
    }
}

fn float_op(op: BinOp, a: f64, b: f64) -> Result<Value, JpieError> {
    use BinOp::*;
    match op {
        Add => Ok(Value::Double(a + b)),
        Sub => Ok(Value::Double(a - b)),
        Mul => Ok(Value::Double(a * b)),
        Div => Ok(Value::Double(a / b)),
        Rem => Ok(Value::Double(a % b)),
        Lt => Ok(Value::Bool(a < b)),
        Le => Ok(Value::Bool(a <= b)),
        Gt => Ok(Value::Bool(a > b)),
        Ge => Ok(Value::Bool(a >= b)),
        Eq | Ne | And | Or => unreachable!("handled earlier"),
    }
}

fn eval_builtin(
    builtin: Builtin,
    arg_exprs: &[Expr],
    vals: Vec<Value>,
) -> Result<Value, JpieError> {
    let arity_err = |want: usize| {
        JpieError::ArgumentMismatch(format!("builtin {builtin:?} expects {want} argument(s)"))
    };
    match builtin {
        Builtin::Len => {
            let [v] = &vals[..] else {
                return Err(arity_err(1));
            };
            match v {
                Value::Str(s) => Ok(Value::Int(s.chars().count() as i32)),
                Value::Seq(_, items) => Ok(Value::Int(items.len() as i32)),
                other => Err(JpieError::TypeError(format!(
                    "len() of {}",
                    other.type_desc()
                ))),
            }
        }
        Builtin::Get => {
            let [seq, idx] = &vals[..] else {
                return Err(arity_err(2));
            };
            let (Value::Seq(_, items), Value::Int(i)) = (seq, idx) else {
                return Err(JpieError::TypeError("get(seq, int)".into()));
            };
            items
                .get(*i as usize)
                .cloned()
                .ok_or_else(|| JpieError::Arithmetic(format!("index {i} out of bounds")))
        }
        Builtin::Push => {
            let mut it = vals.into_iter();
            let (Some(seq), Some(item), None) = (it.next(), it.next(), it.next()) else {
                return Err(arity_err(2));
            };
            let Value::Seq(elem, mut items) = seq else {
                return Err(JpieError::TypeError("push(seq, element)".into()));
            };
            let item = item.widen_to(&elem).ok_or_else(|| {
                JpieError::TypeError(format!("sequence of {elem} cannot hold pushed value"))
            })?;
            items.push(item);
            Ok(Value::Seq(elem, items))
        }
        Builtin::ToStr => {
            let [v] = &vals[..] else {
                return Err(arity_err(1));
            };
            Ok(Value::Str(v.to_string()))
        }
        Builtin::Contains => {
            let [h, n] = &vals[..] else {
                return Err(arity_err(2));
            };
            let (Value::Str(h), Value::Str(n)) = (h, n) else {
                return Err(JpieError::TypeError("contains(string, string)".into()));
            };
            Ok(Value::Bool(h.contains(n.as_str())))
        }
        Builtin::Field => {
            let [v, _] = &vals[..] else {
                return Err(arity_err(2));
            };
            let Some(Expr::Lit(Value::Str(name))) = arg_exprs.get(1) else {
                return Err(JpieError::TypeError(
                    "field(struct, name) requires a literal field name".into(),
                ));
            };
            let Value::Struct(s) = v else {
                return Err(JpieError::TypeError(format!(
                    "field() of {}",
                    v.type_desc()
                )));
            };
            s.field(name)
                .cloned()
                .ok_or_else(|| JpieError::NoSuchField(format!("{}.{}", s.type_name, name)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bin(op: BinOp, l: Value, r: Value) -> Result<Value, JpieError> {
        eval_binary(op, l, r)
    }

    #[test]
    fn numeric_promotion_follows_java() {
        assert_eq!(
            bin(BinOp::Add, Value::Int(1), Value::Long(2)).unwrap(),
            Value::Long(3)
        );
        assert_eq!(
            bin(BinOp::Add, Value::Int(1), Value::Double(0.5)).unwrap(),
            Value::Double(1.5)
        );
        assert_eq!(
            bin(BinOp::Mul, Value::Float(2.0), Value::Double(0.5)).unwrap(),
            Value::Double(1.0)
        );
        assert_eq!(
            bin(BinOp::Sub, Value::Long(10), Value::Float(0.5)).unwrap(),
            Value::Float(9.5)
        );
        // Same-width stays same-width.
        assert_eq!(
            bin(BinOp::Add, Value::Int(1), Value::Int(2)).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            bin(BinOp::Div, Value::Float(1.0), Value::Float(4.0)).unwrap(),
            Value::Float(0.25)
        );
    }

    #[test]
    fn string_concat_both_sides() {
        assert_eq!(
            bin(BinOp::Add, Value::Str("n=".into()), Value::Int(5)).unwrap(),
            Value::Str("n=5".into())
        );
        assert_eq!(
            bin(BinOp::Add, Value::Bool(true), Value::Str("!".into())).unwrap(),
            Value::Str("true!".into())
        );
        assert_eq!(
            bin(BinOp::Add, Value::Str("a".into()), Value::Str("b".into())).unwrap(),
            Value::Str("ab".into())
        );
    }

    #[test]
    fn equality_on_any_values() {
        use crate::value::StructValue;
        let s1 = Value::Struct(StructValue::new("P").with("x", Value::Int(1)));
        let s2 = Value::Struct(StructValue::new("P").with("x", Value::Int(1)));
        let s3 = Value::Struct(StructValue::new("P").with("x", Value::Int(2)));
        assert_eq!(bin(BinOp::Eq, s1.clone(), s2).unwrap(), Value::Bool(true));
        assert_eq!(bin(BinOp::Ne, s1, s3).unwrap(), Value::Bool(true));
        // Cross-type equality is false, not an error.
        assert_eq!(
            bin(BinOp::Eq, Value::Int(1), Value::Str("1".into())).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn string_and_char_ordering() {
        assert_eq!(
            bin(
                BinOp::Lt,
                Value::Str("abc".into()),
                Value::Str("abd".into())
            )
            .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            bin(BinOp::Ge, Value::Char('z'), Value::Char('a')).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            bin(
                BinOp::Le,
                Value::Str("same".into()),
                Value::Str("same".into())
            )
            .unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn long_overflow_checked() {
        assert!(matches!(
            bin(BinOp::Add, Value::Long(i64::MAX), Value::Long(1)),
            Err(JpieError::Arithmetic(_))
        ));
        assert!(matches!(
            bin(BinOp::Mul, Value::Long(i64::MAX / 2), Value::Long(3)),
            Err(JpieError::Arithmetic(_))
        ));
    }

    #[test]
    fn int_wraps_like_java() {
        // i32 + i32 computed in i64 then truncated — Java's wrapping int
        // semantics.
        assert_eq!(
            bin(BinOp::Add, Value::Int(i32::MAX), Value::Int(1)).unwrap(),
            Value::Int(i32::MIN)
        );
    }

    #[test]
    fn float_division_and_rem() {
        assert_eq!(
            bin(BinOp::Div, Value::Double(1.0), Value::Double(0.0)).unwrap(),
            Value::Double(f64::INFINITY)
        );
        assert_eq!(
            bin(BinOp::Rem, Value::Double(7.5), Value::Double(2.0)).unwrap(),
            Value::Double(1.5)
        );
    }

    #[test]
    fn integer_division_by_zero_rejected() {
        assert!(matches!(
            bin(BinOp::Div, Value::Int(1), Value::Int(0)),
            Err(JpieError::Arithmetic(_))
        ));
        assert!(matches!(
            bin(BinOp::Rem, Value::Long(1), Value::Long(0)),
            Err(JpieError::Arithmetic(_))
        ));
    }

    #[test]
    fn type_errors_on_mixed_operands() {
        assert!(matches!(
            bin(BinOp::Mul, Value::Str("x".into()), Value::Int(2)),
            Err(JpieError::TypeError(_))
        ));
        assert!(matches!(
            bin(BinOp::Lt, Value::Bool(true), Value::Bool(false)),
            Err(JpieError::TypeError(_))
        ));
        assert!(matches!(
            bin(BinOp::Add, Value::Bool(true), Value::Bool(false)),
            Err(JpieError::TypeError(_))
        ));
    }

    #[test]
    fn recursion_is_bounded_and_recoverable() {
        use crate::class::{ClassHandle, MethodBuilder};
        use crate::expr::Expr;
        use crate::value::TypeDesc;
        let class = ClassHandle::new("Rec");
        // Bounded recursion works...
        class
            .add_method(
                MethodBuilder::new("count_down", TypeDesc::Int)
                    .param("n", TypeDesc::Int)
                    .body_source("if (n <= 0) { return 0; } return 1 + count_down(n: n - 1);")
                    .unwrap(),
            )
            .unwrap();
        // ...a base-case-free live edit must not crash the process.
        class
            .add_method(
                MethodBuilder::new("forever", TypeDesc::Int)
                    .body_expr(Expr::self_call("forever", vec![])),
            )
            .unwrap();
        let inst = class.instantiate().unwrap();
        assert_eq!(
            inst.invoke("count_down", &[Value::Int(50)]).unwrap(),
            Value::Int(50)
        );
        let err = inst.invoke("forever", &[]).unwrap_err();
        assert!(
            matches!(&err, JpieError::Exception(m) if m.contains("recursion depth")),
            "{err:?}"
        );
        // The instance is still healthy afterwards.
        assert_eq!(
            inst.invoke("count_down", &[Value::Int(3)]).unwrap(),
            Value::Int(3)
        );
    }

    #[test]
    fn short_circuit_skips_rhs() {
        // `false && boom()` / `true || boom()` must not call boom().
        use crate::class::{ClassHandle, MethodBuilder};
        use crate::expr::{Expr, Stmt};
        use crate::value::TypeDesc;
        let class = ClassHandle::new("SC");
        class
            .add_method(
                MethodBuilder::new("boom", TypeDesc::Bool)
                    .body_block(vec![Stmt::Throw(Expr::lit("should not run"))]),
            )
            .unwrap();
        class
            .add_method(
                MethodBuilder::new("and_sc", TypeDesc::Bool)
                    .body_expr(Expr::lit(false).and(Expr::self_call("boom", vec![]))),
            )
            .unwrap();
        class
            .add_method(
                MethodBuilder::new("or_sc", TypeDesc::Bool)
                    .body_expr(Expr::lit(true).or(Expr::self_call("boom", vec![]))),
            )
            .unwrap();
        let inst = class.instantiate().unwrap();
        assert_eq!(inst.invoke("and_sc", &[]).unwrap(), Value::Bool(false));
        assert_eq!(inst.invoke("or_sc", &[]).unwrap(), Value::Bool(true));
    }
}
