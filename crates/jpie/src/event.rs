//! Change events fired by dynamic classes.
//!
//! The paper's DL Publishers "listen to changes in the corresponding
//! dynamic class by monitoring the JPie undo/redo stack" (§5.6). Here every
//! mutation of a [`crate::ClassHandle`] — including undo and redo — emits a
//! [`ClassEvent`] on each subscriber channel.

use crate::class::MethodId;

/// What changed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A method was added.
    MethodAdded(MethodId),
    /// A method was removed.
    MethodRemoved(MethodId),
    /// A method's signature changed (rename, parameter or return-type
    /// change).
    SignatureChanged(MethodId),
    /// The `distributed` modifier was toggled.
    DistributedChanged(MethodId),
    /// A method body changed (does not affect the published interface).
    BodyChanged(MethodId),
    /// Instance fields were added or removed.
    FieldsChanged,
    /// An edit was undone.
    Undone,
    /// An edit was redone.
    Redone,
}

/// A change notification from a dynamic class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassEvent {
    /// Name of the class that changed.
    pub class: String,
    /// What changed.
    pub kind: EventKind,
    /// The class's interface version *after* this change. Advances exactly
    /// when the set of distributed method signatures changes.
    pub interface_version: u64,
    /// True when this change altered the distributed interface (and hence
    /// requires republication of the WSDL/IDL document).
    pub distributed_change: bool,
}
