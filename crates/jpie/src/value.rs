//! Runtime values and type descriptors.
//!
//! The type universe is the one the paper's IDL mappings support (§2.2):
//! the Java primitives `boolean`, `int`, `long`, `float`, `double`, `char`,
//! `String`, plus user-defined structured types and sequences (WSDL
//! "complex types", CORBA `struct`/sequence).

use std::fmt;

use crate::error::JpieError;

/// Description of a value type, as it appears in method signatures and in
/// generated WSDL / CORBA-IDL documents.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TypeDesc {
    /// No value (method return only).
    Void,
    /// `boolean`
    Bool,
    /// 32-bit signed integer (`int`).
    Int,
    /// 64-bit signed integer (`long`).
    Long,
    /// 32-bit IEEE float (`float`).
    Float,
    /// 64-bit IEEE float (`double`).
    Double,
    /// A single Unicode character (`char`).
    Char,
    /// `String`
    Str,
    /// A user-defined structured type, by name.
    Named(String),
    /// A homogeneous sequence of the element type.
    Seq(Box<TypeDesc>),
}

impl TypeDesc {
    /// Default value of this type (used when a new parameter is added to a
    /// method and existing call sites need an argument — JPie's
    /// declaration/use consistency).
    ///
    /// # Panics
    ///
    /// Panics for [`TypeDesc::Void`], which has no values.
    pub fn default_value(&self) -> Value {
        match self {
            TypeDesc::Void => panic!("void has no values"),
            TypeDesc::Bool => Value::Bool(false),
            TypeDesc::Int => Value::Int(0),
            TypeDesc::Long => Value::Long(0),
            TypeDesc::Float => Value::Float(0.0),
            TypeDesc::Double => Value::Double(0.0),
            TypeDesc::Char => Value::Char('\0'),
            TypeDesc::Str => Value::Str(String::new()),
            TypeDesc::Named(name) => Value::Struct(StructValue::new(name.clone())),
            TypeDesc::Seq(elem) => Value::Seq((**elem).clone(), Vec::new()),
        }
    }

    /// Whether `value` inhabits this type.
    pub fn admits(&self, value: &Value) -> bool {
        match (self, value) {
            (TypeDesc::Bool, Value::Bool(_)) => true,
            (TypeDesc::Int, Value::Int(_)) => true,
            (TypeDesc::Long, Value::Long(_)) => true,
            (TypeDesc::Float, Value::Float(_)) => true,
            (TypeDesc::Double, Value::Double(_)) => true,
            (TypeDesc::Char, Value::Char(_)) => true,
            (TypeDesc::Str, Value::Str(_)) => true,
            (TypeDesc::Named(n), Value::Struct(s)) => s.type_name == *n,
            (TypeDesc::Seq(elem), Value::Seq(et, items)) => {
                **elem == *et && items.iter().all(|v| elem.admits(v))
            }
            _ => false,
        }
    }

    /// A short, stable name used in diagnostics and interface documents.
    pub fn name(&self) -> String {
        match self {
            TypeDesc::Void => "void".into(),
            TypeDesc::Bool => "boolean".into(),
            TypeDesc::Int => "int".into(),
            TypeDesc::Long => "long".into(),
            TypeDesc::Float => "float".into(),
            TypeDesc::Double => "double".into(),
            TypeDesc::Char => "char".into(),
            TypeDesc::Str => "string".into(),
            TypeDesc::Named(n) => n.clone(),
            TypeDesc::Seq(e) => format!("{}[]", e.name()),
        }
    }
}

impl fmt::Display for TypeDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// A structured (user-defined) value: a type name and named fields.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StructValue {
    /// The user-defined type name.
    pub type_name: String,
    /// Field name/value pairs, in declaration order.
    pub fields: Vec<(String, Value)>,
}

impl StructValue {
    /// Creates an empty struct value of the given type.
    pub fn new(type_name: impl Into<String>) -> Self {
        StructValue {
            type_name: type_name.into(),
            fields: Vec::new(),
        }
    }

    /// Adds a field (builder-style).
    pub fn with(mut self, name: impl Into<String>, value: Value) -> Self {
        self.fields.push((name.into(), value));
        self
    }

    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absence of a value (result of `void` methods).
    Null,
    /// `boolean`
    Bool(bool),
    /// `int`
    Int(i32),
    /// `long`
    Long(i64),
    /// `float`
    Float(f32),
    /// `double`
    Double(f64),
    /// `char`
    Char(char),
    /// `String`
    Str(String),
    /// A user-defined structured value.
    Struct(StructValue),
    /// A homogeneous sequence tagged with its element type (so empty
    /// sequences still marshal with a concrete element type).
    Seq(TypeDesc, Vec<Value>),
}

impl Value {
    /// The [`TypeDesc`] this value inhabits.
    pub fn type_desc(&self) -> TypeDesc {
        match self {
            Value::Null => TypeDesc::Void,
            Value::Bool(_) => TypeDesc::Bool,
            Value::Int(_) => TypeDesc::Int,
            Value::Long(_) => TypeDesc::Long,
            Value::Float(_) => TypeDesc::Float,
            Value::Double(_) => TypeDesc::Double,
            Value::Char(_) => TypeDesc::Char,
            Value::Str(_) => TypeDesc::Str,
            Value::Struct(s) => TypeDesc::Named(s.type_name.clone()),
            Value::Seq(elem, _) => TypeDesc::Seq(Box::new(elem.clone())),
        }
    }

    /// Truthiness, for interpreted `if`/`while` conditions.
    ///
    /// # Errors
    ///
    /// Returns a type error for non-boolean values.
    pub fn as_bool(&self) -> Result<bool, JpieError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(JpieError::TypeError(format!(
                "expected boolean, got {}",
                other.type_desc()
            ))),
        }
    }

    /// Numeric widening used by arguments: an `Int` may flow into a `Long`
    /// or `Double` parameter, a `Float` into a `Double`, mirroring Java's
    /// widening conversions. Returns `None` when no lossless conversion
    /// exists.
    pub fn widen_to(&self, target: &TypeDesc) -> Option<Value> {
        if target.admits(self) {
            return Some(self.clone());
        }
        match (self, target) {
            (Value::Int(i), TypeDesc::Long) => Some(Value::Long(i64::from(*i))),
            (Value::Int(i), TypeDesc::Double) => Some(Value::Double(f64::from(*i))),
            (Value::Int(i), TypeDesc::Float) => Some(Value::Float(*i as f32)),
            (Value::Long(l), TypeDesc::Double) => Some(Value::Double(*l as f64)),
            (Value::Float(x), TypeDesc::Double) => Some(Value::Double(f64::from(*x))),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Long(l) => write!(f, "{l}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Double(x) => write!(f, "{x}"),
            Value::Char(c) => write!(f, "{c}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Struct(s) => {
                write!(f, "{}{{", s.type_name)?;
                for (i, (n, v)) in s.fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}: {v}")?;
                }
                write!(f, "}}")
            }
            Value::Seq(_, items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i)
    }
}
impl From<i64> for Value {
    fn from(l: i64) -> Self {
        Value::Long(l)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Double(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_values_admit() {
        for ty in [
            TypeDesc::Bool,
            TypeDesc::Int,
            TypeDesc::Long,
            TypeDesc::Float,
            TypeDesc::Double,
            TypeDesc::Char,
            TypeDesc::Str,
            TypeDesc::Named("Point".into()),
            TypeDesc::Seq(Box::new(TypeDesc::Int)),
        ] {
            let v = ty.default_value();
            assert!(ty.admits(&v), "{ty} should admit its default {v:?}");
            assert_eq!(v.type_desc(), ty);
        }
    }

    #[test]
    #[should_panic(expected = "void has no values")]
    fn void_has_no_default() {
        let _ = TypeDesc::Void.default_value();
    }

    #[test]
    fn admits_checks_struct_name_and_seq_elements() {
        let pt = TypeDesc::Named("Point".into());
        assert!(pt.admits(&Value::Struct(StructValue::new("Point"))));
        assert!(!pt.admits(&Value::Struct(StructValue::new("Line"))));

        let ints = TypeDesc::Seq(Box::new(TypeDesc::Int));
        assert!(ints.admits(&Value::Seq(TypeDesc::Int, vec![Value::Int(1)])));
        assert!(!ints.admits(&Value::Seq(TypeDesc::Str, vec![])));
    }

    #[test]
    fn widening_conversions() {
        assert_eq!(
            Value::Int(7).widen_to(&TypeDesc::Long),
            Some(Value::Long(7))
        );
        assert_eq!(
            Value::Int(7).widen_to(&TypeDesc::Double),
            Some(Value::Double(7.0))
        );
        assert_eq!(
            Value::Float(1.5).widen_to(&TypeDesc::Double),
            Some(Value::Double(1.5))
        );
        assert_eq!(Value::Str("x".into()).widen_to(&TypeDesc::Int), None);
        assert_eq!(Value::Long(1).widen_to(&TypeDesc::Int), None);
    }

    #[test]
    fn type_names() {
        assert_eq!(TypeDesc::Seq(Box::new(TypeDesc::Str)).name(), "string[]");
        assert_eq!(TypeDesc::Named("Msg".into()).to_string(), "Msg");
    }

    #[test]
    fn struct_field_lookup() {
        let s = StructValue::new("Point")
            .with("x", Value::Int(1))
            .with("y", Value::Int(2));
        assert_eq!(s.field("y"), Some(&Value::Int(2)));
        assert!(s.field("z").is_none());
    }

    #[test]
    fn value_display() {
        let s = Value::Struct(StructValue::new("P").with("x", Value::Int(1)));
        assert_eq!(s.to_string(), "P{x: 1}");
        assert_eq!(
            Value::Seq(TypeDesc::Int, vec![Value::Int(1), Value::Int(2)]).to_string(),
            "[1, 2]"
        );
    }

    #[test]
    fn as_bool_rejects_non_bool() {
        assert!(Value::Int(1).as_bool().is_err());
        assert!(Value::Bool(true).as_bool().unwrap());
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3i64), Value::Long(3));
        assert_eq!(Value::from(1.5f64), Value::Double(1.5));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
    }
}
