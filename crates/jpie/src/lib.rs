//! # jpie — a dynamic-class live-programming runtime
//!
//! This crate reproduces, in Rust, the aspects of **JPie** (Goldman,
//! *"An interactive environment for beginning Java programmers"*, Sci.
//! Comput. Program. 2004) that the paper's SDE/CDE middleware builds on:
//!
//! * **Dynamic classes** ([`ClassHandle`]) whose *signature and
//!   implementation can be modified at run time, with changes taking effect
//!   immediately upon existing instances of the class*. Method bodies are
//!   values of a small interpreted language ([`expr`]) or native closures,
//!   so they can be edited while the program runs.
//! * **Consistency of declaration and use**: renaming a method or
//!   reordering its parameter list automatically updates every call site
//!   (call arguments are bound to stable parameter identities, not
//!   positions — see [`expr::Expr::SelfCall`]).
//! * The **`distributed` modifier** (paper §4/§5.5) marking the methods
//!   that belong to the published server interface, and an **interface
//!   version** counter that advances exactly when the distributed interface
//!   changes.
//! * The **undo/redo stack** ([`ClassHandle::undo`]/[`ClassHandle::redo`])
//!   that the paper's DL Publishers monitor for changes (§5.6), surfaced
//!   here as [`ClassEvent`]s on subscriber channels.
//! * The **JPie debugger** ([`JpieDebugger`]) that catches exceptions from
//!   remote calls, shows them to the user, and supports the *try again*
//!   re-execution used in §6.
//!
//! # Examples
//!
//! Build a live class, call it, then change the method body while the
//! instance exists:
//!
//! ```
//! use jpie::{ClassHandle, MethodBuilder, TypeDesc, Value};
//! use jpie::expr::Expr;
//!
//! # fn main() -> Result<(), jpie::JpieError> {
//! let class = ClassHandle::new("Counter");
//! let add = class.add_method(
//!     MethodBuilder::new("add", TypeDesc::Int)
//!         .param("a", TypeDesc::Int)
//!         .param("b", TypeDesc::Int)
//!         .distributed(true)
//!         .body_expr(Expr::param("a") + Expr::param("b")),
//! )?;
//! let instance = class.instantiate()?;
//! assert_eq!(instance.invoke("add", &[Value::Int(2), Value::Int(3)])?, Value::Int(5));
//!
//! // Live change: make it subtract instead — takes effect immediately.
//! class.set_body_expr(add, Expr::param("a") - Expr::param("b"))?;
//! assert_eq!(instance.invoke("add", &[Value::Int(2), Value::Int(3)])?, Value::Int(-1));
//! # Ok(())
//! # }
//! ```

mod class;
mod debugger;
mod edit;
mod error;
mod event;
pub mod expr;
mod instance;
mod interp;
pub mod parse;
mod registry;
mod value;

pub use class::{
    ClassHandle, MethodBuilder, MethodId, MethodSignature, Param, ParamId, SignatureView,
};
pub use debugger::{DebuggerEntry, JpieDebugger, TryAgain};
pub use error::JpieError;
pub use event::{ClassEvent, EventKind};
pub use instance::Instance;
pub use registry::{ClassLoaded, ClassRegistry};
pub use value::{StructValue, TypeDesc, Value};
