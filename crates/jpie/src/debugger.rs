//! The JPie debugger surface used by CDE.
//!
//! In the paper (§6, Fig 9), when a "Non existent Method" exception reaches
//! the client's dynamic class, *"the JPie debugger detects the exception
//! and displays it to the user"*, and the user may use the **try again**
//! feature to re-execute the failed call after fixing the interface. This
//! module models exactly that surface: a log of caught exceptions, each
//! paired with a re-execution thunk.

use std::fmt;
use std::sync::Arc;

use obs::sync::Mutex;

use crate::error::JpieError;
use crate::value::Value;

/// A re-executable call captured with a debugger entry — the paper's
/// "try again" feature.
pub type TryAgain = Arc<dyn Fn() -> Result<Value, JpieError> + Send + Sync>;

/// One caught exception shown to the developer.
#[derive(Clone)]
pub struct DebuggerEntry {
    /// The method whose invocation failed.
    pub method: String,
    /// The exception message displayed to the user.
    pub message: String,
    /// Re-executes the original call ("try again").
    pub retry: TryAgain,
}

impl fmt::Debug for DebuggerEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DebuggerEntry")
            .field("method", &self.method)
            .field("message", &self.message)
            .finish_non_exhaustive()
    }
}

/// The debugger: collects exceptions raised by (remote) calls and lets
/// the developer re-execute them.
///
/// # Examples
///
/// ```
/// use jpie::{JpieDebugger, Value};
/// use std::sync::Arc;
///
/// let debugger = JpieDebugger::new();
/// debugger.report("add", "Non existent Method", Arc::new(|| Ok(Value::Int(3))));
/// assert_eq!(debugger.entries().len(), 1);
/// // After the developer fixes the server, try again:
/// assert_eq!(debugger.try_again(0).unwrap(), Value::Int(3));
/// ```
#[derive(Debug, Default, Clone)]
pub struct JpieDebugger {
    entries: Arc<Mutex<Vec<DebuggerEntry>>>,
}

impl JpieDebugger {
    /// Creates an empty debugger.
    pub fn new() -> JpieDebugger {
        JpieDebugger::default()
    }

    /// Records a caught exception with its re-execution thunk; returns the
    /// entry index.
    pub fn report(&self, method: &str, message: &str, retry: TryAgain) -> usize {
        let mut entries = self.entries.lock();
        entries.push(DebuggerEntry {
            method: method.to_string(),
            message: message.to_string(),
            retry,
        });
        entries.len() - 1
    }

    /// Snapshot of all recorded entries, oldest first.
    pub fn entries(&self) -> Vec<DebuggerEntry> {
        self.entries.lock().clone()
    }

    /// The most recent entry, if any.
    pub fn latest(&self) -> Option<DebuggerEntry> {
        self.entries.lock().last().cloned()
    }

    /// Re-executes the call recorded at `index` (the paper's *try again*).
    ///
    /// # Errors
    ///
    /// Returns [`JpieError::Invalid`] for an out-of-range index, otherwise
    /// whatever the re-executed call produces.
    pub fn try_again(&self, index: usize) -> Result<Value, JpieError> {
        let retry = {
            let entries = self.entries.lock();
            entries
                .get(index)
                .map(|e| e.retry.clone())
                .ok_or_else(|| JpieError::Invalid(format!("no debugger entry {index}")))?
        };
        retry()
    }

    /// Clears the log.
    pub fn clear(&self) {
        self.entries.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn report_and_list() {
        let d = JpieDebugger::new();
        assert!(d.latest().is_none());
        d.report("m", "boom", Arc::new(|| Ok(Value::Null)));
        d.report("n", "bang", Arc::new(|| Ok(Value::Null)));
        let entries = d.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].method, "m");
        assert_eq!(d.latest().unwrap().message, "bang");
    }

    #[test]
    fn try_again_reexecutes() {
        let d = JpieDebugger::new();
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        let idx = d.report(
            "m",
            "transient",
            Arc::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
                Ok(Value::Int(9))
            }),
        );
        assert_eq!(d.try_again(idx).unwrap(), Value::Int(9));
        assert_eq!(d.try_again(idx).unwrap(), Value::Int(9));
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn try_again_out_of_range() {
        let d = JpieDebugger::new();
        assert!(d.try_again(3).is_err());
    }

    #[test]
    fn clear_empties() {
        let d = JpieDebugger::new();
        d.report("m", "x", Arc::new(|| Ok(Value::Null)));
        d.clear();
        assert!(d.entries().is_empty());
    }
}
