//! Class loading and the gateway-superclass mechanism.
//!
//! In the paper, server classes are created by *extending* a provided
//! gateway class (`SOAPServer` / `CORBAServer`, §4), and "when the new
//! subclass ... is being loaded into JPie, the SDE subsystem detects this"
//! (§5.1.1). This module supplies both halves: dynamic classes may declare
//! a superclass name, and a [`ClassRegistry`] broadcasts a load event for
//! every registered class so middleware (the SDE Manager) can react.

use std::sync::Arc;

use obs::sync::Mutex;
use std::sync::mpsc::{channel, Receiver, Sender};

use crate::class::ClassHandle;
use crate::error::JpieError;

/// A class-load notification.
#[derive(Debug, Clone)]
pub struct ClassLoaded {
    /// The newly loaded class.
    pub class: ClassHandle,
    /// Its declared superclass, if any (e.g. `"SOAPServer"`).
    pub superclass: Option<String>,
}

/// The environment's class registry: registering a class is the paper's
/// "loading a class into JPie" event.
///
/// # Examples
///
/// ```
/// use jpie::{ClassHandle, ClassRegistry};
///
/// let registry = ClassRegistry::new();
/// let loads = registry.subscribe();
/// let class = ClassHandle::with_superclass("MyService", "SOAPServer");
/// registry.register(class).unwrap();
/// let event = loads.try_recv().unwrap();
/// assert_eq!(event.superclass.as_deref(), Some("SOAPServer"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ClassRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    classes: Vec<ClassHandle>,
    listeners: Vec<Sender<ClassLoaded>>,
}

impl ClassRegistry {
    /// Creates an empty registry.
    pub fn new() -> ClassRegistry {
        ClassRegistry::default()
    }

    /// Subscribes to class-load events.
    pub fn subscribe(&self) -> Receiver<ClassLoaded> {
        let (tx, rx) = channel();
        self.inner.lock().listeners.push(tx);
        rx
    }

    /// Registers (loads) a class, notifying every subscriber.
    ///
    /// # Errors
    ///
    /// Fails if a class with the same name is already registered.
    pub fn register(&self, class: ClassHandle) -> Result<(), JpieError> {
        let mut inner = self.inner.lock();
        if inner.classes.iter().any(|c| c.name() == class.name()) {
            return Err(JpieError::Invalid(format!(
                "class {:?} is already loaded",
                class.name()
            )));
        }
        let event = ClassLoaded {
            superclass: class.superclass(),
            class: class.clone(),
        };
        inner.classes.push(class);
        inner.listeners.retain(|tx| tx.send(event.clone()).is_ok());
        Ok(())
    }

    /// Looks up a loaded class by name.
    pub fn find(&self, name: &str) -> Option<ClassHandle> {
        self.inner
            .lock()
            .classes
            .iter()
            .find(|c| c.name() == name)
            .cloned()
    }

    /// Names of all loaded classes.
    pub fn names(&self) -> Vec<String> {
        self.inner.lock().classes.iter().map(|c| c.name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_find() {
        let registry = ClassRegistry::new();
        registry.register(ClassHandle::new("A")).unwrap();
        assert!(registry.find("A").is_some());
        assert!(registry.find("B").is_none());
        assert_eq!(registry.names(), vec!["A".to_string()]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let registry = ClassRegistry::new();
        registry.register(ClassHandle::new("A")).unwrap();
        assert!(registry.register(ClassHandle::new("A")).is_err());
    }

    #[test]
    fn subscribers_see_loads_with_superclass() {
        let registry = ClassRegistry::new();
        let rx = registry.subscribe();
        registry
            .register(ClassHandle::with_superclass("Svc", "CORBAServer"))
            .unwrap();
        let event = rx.try_recv().unwrap();
        assert_eq!(event.class.name(), "Svc");
        assert_eq!(event.superclass.as_deref(), Some("CORBAServer"));

        registry.register(ClassHandle::new("Plain")).unwrap();
        assert_eq!(rx.try_recv().unwrap().superclass, None);
    }

    #[test]
    fn late_subscriber_misses_earlier_loads() {
        let registry = ClassRegistry::new();
        registry.register(ClassHandle::new("Early")).unwrap();
        let rx = registry.subscribe();
        assert!(rx.try_recv().is_err());
    }
}
