use std::error::Error;
use std::fmt;

/// Error raised by the dynamic-class runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JpieError {
    /// No method with this name (and compatible arguments) exists. This is
    /// the local analogue of the paper's "Non existent Method" condition.
    NoSuchMethod(String),
    /// A method id that is no longer (or never was) part of the class.
    StaleMethodId(String),
    /// No field with this name/id.
    NoSuchField(String),
    /// Argument count or type does not match the current signature.
    ArgumentMismatch(String),
    /// A type error inside an interpreted body.
    TypeError(String),
    /// Arithmetic failure (division by zero, overflow).
    Arithmetic(String),
    /// An exception explicitly thrown by the method body — carried back to
    /// the RMI layer, which wraps it in a SOAP Fault / CORBA exception.
    Exception(String),
    /// A user-visible invariant was violated (duplicate method, duplicate
    /// parameter, invalid identifier, ...).
    Invalid(String),
    /// The class already has a live instance (paper §5.4: a single instance
    /// of each server class exists at any time).
    AlreadyInstantiated(String),
    /// Undo (or redo) was requested with an empty stack.
    NothingToUndo,
    /// Evaluation exceeded the step budget (runaway loop in a live body).
    StepLimit,
}

impl fmt::Display for JpieError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JpieError::NoSuchMethod(m) => write!(f, "no such method: {m}"),
            JpieError::StaleMethodId(m) => write!(f, "stale method id: {m}"),
            JpieError::NoSuchField(n) => write!(f, "no such field: {n}"),
            JpieError::ArgumentMismatch(m) => write!(f, "argument mismatch: {m}"),
            JpieError::TypeError(m) => write!(f, "type error: {m}"),
            JpieError::Arithmetic(m) => write!(f, "arithmetic error: {m}"),
            JpieError::Exception(m) => write!(f, "exception: {m}"),
            JpieError::Invalid(m) => write!(f, "invalid operation: {m}"),
            JpieError::AlreadyInstantiated(c) => {
                write!(f, "class {c} already has a live instance")
            }
            JpieError::NothingToUndo => write!(f, "nothing to undo or redo"),
            JpieError::StepLimit => write!(f, "evaluation step limit exceeded"),
        }
    }
}

impl Error for JpieError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        let cases: Vec<(JpieError, &str)> = vec![
            (JpieError::NoSuchMethod("m".into()), "no such method"),
            (JpieError::StaleMethodId("m".into()), "stale method id"),
            (JpieError::NoSuchField("f".into()), "no such field"),
            (JpieError::ArgumentMismatch("x".into()), "argument mismatch"),
            (JpieError::TypeError("x".into()), "type error"),
            (JpieError::Arithmetic("x".into()), "arithmetic"),
            (JpieError::Exception("x".into()), "exception"),
            (JpieError::Invalid("x".into()), "invalid"),
            (JpieError::AlreadyInstantiated("C".into()), "live instance"),
            (JpieError::NothingToUndo, "nothing to undo"),
            (JpieError::StepLimit, "step limit"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn error_traits() {
        fn assert_traits<T: Send + Sync + Error + 'static>() {}
        assert_traits::<JpieError>();
    }
}
